//! # P4DB — The Case for In-Network OLTP (Rust reproduction)
//!
//! This facade crate re-exports the whole workspace behind a single
//! dependency, which is what the examples under `examples/` and the
//! integration tests under `tests/` use.
//!
//! The crates, from substrate to system:
//!
//! * [`common`] — ids, values, errors, workload randomness, statistics.
//! * [`net`] — in-process message fabric with the paper's ½-RTT latency model.
//! * [`switch`] — the PISA/Tofino pipeline simulator: register stages,
//!   one-packet-one-transaction execution, recirculation, pipeline locks.
//! * [`layout`] — the declustered storage model: access graph, max-cut,
//!   direction-aware stage assignment.
//! * [`storage`] — host node storage: tables, row locks (NO_WAIT / WAIT_DIE),
//!   secondary indexes, write-ahead log and recovery.
//! * [`txn`] — the distributed transaction engine: hot/cold/warm
//!   classification, switch transaction construction, 2PC integration,
//!   the LM-Switch and Chiller-style baselines.
//! * [`workloads`] — YCSB, SmallBank and TPC-C generators.
//! * [`core`] — the cluster runner, worker loops, experiment driver and
//!   metrics used by the benchmark harness.
//! * [`chaos`] — seeded fault injection (message drops/delays/reorders,
//!   node and switch crashes with WAL-driven recovery) plus the
//!   cluster-wide invariant checker.

pub use p4db_chaos as chaos;
pub use p4db_common as common;
pub use p4db_core as core;
pub use p4db_layout as layout;
pub use p4db_net as net;
pub use p4db_storage as storage;
pub use p4db_switch as switch;
pub use p4db_txn as txn;
pub use p4db_workloads as workloads;

// The client-facing API at the crate root: build a cluster, open sessions,
// submit typed transactions. See README.md § "Using P4DB as a library".
pub use p4db_common::{CcScheme, Error, NodeId, Result, SwitchId, SystemMode, TableId, TupleId};
pub use p4db_core::{
    BreakerConfig, Cluster, ClusterBuilder, ClusterConfig, Pending, ResolverReport, Session, SupervisorReport,
};
pub use p4db_txn::{OpKind, Placement, Txn, TxnOutcome, TxnRequest};
pub use p4db_workloads::{PartitionMap, Workload};

/// Compiles the README's code blocks as doctests so the documented client
/// API can never drift from the code.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
