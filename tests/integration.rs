//! Cross-crate integration tests: full clusters (nodes + switch + engine +
//! workloads) exercised end to end in the zero-latency test profile.

use p4db::common::stats::TxnClass;
use p4db::common::{AbortReason, CcScheme, Error, NodeId, SystemMode, TupleId};
use p4db::core::{Cluster, ClusterConfig};
use p4db::storage::recover_switch_state;
use p4db::workloads::smallbank::{CHECKING, INITIAL_BALANCE, SAVINGS};
use p4db::workloads::{SmallBank, SmallBankConfig, Tpcc, TpccConfig, Workload, Ycsb, YcsbConfig, YcsbMix};
use p4db::Txn;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn ycsb() -> Arc<dyn Workload> {
    Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 2_000, ..YcsbConfig::new(YcsbMix::A) }))
}

fn smallbank() -> Arc<dyn Workload> {
    Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }))
}

fn tpcc() -> Arc<dyn Workload> {
    Arc::new(Tpcc::new(TpccConfig { items_loaded: 500, ..TpccConfig::new(4) }))
}

#[test]
fn all_workloads_commit_in_all_modes() {
    for workload in [ycsb(), smallbank(), tpcc()] {
        for mode in [SystemMode::NoSwitch, SystemMode::LmSwitch, SystemMode::P4db] {
            let cluster = Cluster::build(ClusterConfig::test_profile(mode, CcScheme::NoWait), Arc::clone(&workload));
            let stats = cluster.run_for(Duration::from_millis(200));
            // The test machine may have a single core shared by all
            // concurrently running test clusters, so the bar is deliberately
            // low: the system must make progress in every mode.
            assert!(
                stats.merged.committed_total() > 10,
                "{} in {:?} committed only {}",
                cluster.workload_name(),
                mode,
                stats.merged.committed_total()
            );
        }
    }
}

#[test]
fn p4db_executes_hot_transactions_on_the_switch_and_keeps_hosts_consistent() {
    // Use the full-size (Tofino-like) switch geometry so the declustered
    // layout has the pipeline depth the paper assumes; latencies stay zero.
    let mut config = ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait);
    config.switch = p4db::switch::SwitchConfig::tofino_defaults();
    let cluster = Cluster::build(config, ycsb());
    let stats = cluster.run_for(Duration::from_millis(200));
    assert!(stats.merged.committed_hot > 0, "hot transactions must run on the switch");
    let sw = cluster.switch_stats();
    assert!(sw.txns_executed >= stats.merged.committed_hot);
    assert!(sw.single_pass_fraction() > 0.5, "most YCSB hot transactions should be single-pass");
}

#[test]
fn wait_die_also_makes_progress_under_contention() {
    let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::NoSwitch, CcScheme::WaitDie), ycsb());
    let stats = cluster.run_for(Duration::from_millis(200));
    assert!(stats.merged.committed_total() > 50);
}

#[test]
fn tpcc_produces_warm_transactions_in_p4db_mode() {
    let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), tpcc());
    let stats = cluster.run_for(Duration::from_millis(300));
    assert!(stats.merged.committed_warm > 0, "TPC-C must produce warm transactions");
    assert!(cluster.switch_stats().multicasts > 0 || stats.merged.committed_warm > 0);
}

#[test]
fn tpcc_money_is_conserved_between_customers_and_ytd_counters() {
    // Every Payment adds `amount` to warehouse + district YTD and subtracts
    // it from a customer balance; NewOrder does not touch balances. So the
    // total warehouse YTD must equal the total amount deducted from
    // customers, whichever path (switch or host) executed the update.
    use p4db::workloads::tpcc::{keys, CUSTOMER, CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, WAREHOUSE};
    let workload = tpcc();
    let cluster =
        Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), Arc::clone(&workload));
    let _ = cluster.run_for(Duration::from_millis(300));

    let mut ytd_total: i128 = 0;
    for w in 0..4u64 {
        let tuple = TupleId::new(WAREHOUSE, keys::warehouse(w));
        // Hot tuples live on the switch in P4DB mode.
        ytd_total += cluster.switch_value(tuple).unwrap_or(0) as i64 as i128;
    }
    let mut customer_delta: i128 = 0;
    for node in cluster.shared().nodes.iter() {
        let table = node.table(CUSTOMER).unwrap();
        table.for_each(|_, row| {
            let balance = row.read().switch_word() as i64 as i128;
            customer_delta += 1_000 - balance; // initial balance is 1 000
        });
    }
    // Each warehouse's initial YTD is 0 and every Payment moves the same
    // amount into YTD (warehouse) as it removes from a customer.
    assert_eq!(ytd_total, customer_delta, "warehouse YTD must equal total customer deductions");
    let _ = (DISTRICTS_PER_WAREHOUSE, CUSTOMERS_PER_DISTRICT);
}

#[test]
fn switch_state_recovers_from_node_logs_after_a_crash() {
    let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), smallbank());
    let _ = cluster.run_for(Duration::from_millis(200));

    let live: HashMap<TupleId, u64> =
        cluster.shared().hot_index.load().iter().map(|(t, _)| (t, cluster.switch_value(t).unwrap())).collect();

    let initial = cluster.offload_snapshot();
    let logs: Vec<&p4db::storage::Wal> = cluster.shared().nodes.iter().map(|n| n.wal()).collect();
    let outcome = recover_switch_state(initial, &logs);
    assert_eq!(outcome.inconsistencies, 0);
    for (tuple, value) in live {
        let recovered = outcome.values.get(&tuple).copied().unwrap_or(initial[&tuple]);
        assert_eq!(recovered, value, "recovered value of {tuple} diverges");
    }
}

#[test]
fn lm_switch_keeps_data_on_the_hosts() {
    let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::LmSwitch, CcScheme::NoWait), ycsb());
    let stats = cluster.run_for(Duration::from_millis(150));
    assert!(stats.merged.committed_total() > 0);
    assert_eq!(cluster.switch_stats().txns_executed, 0, "LM-Switch must not execute data-plane transactions");
    assert!(cluster.switch_stats().lm_requests > 0, "LM-Switch must process lock requests");
}

/// SmallBank customer ids for the session tests: customers_per_node = 2 000,
/// hot customers 0..5 per node; savings/checking of hot customers live on the
/// switch in P4DB mode.
fn smallbank_cluster() -> Cluster {
    Cluster::builder(smallbank()).test_profile().mode(SystemMode::P4db).cc(CcScheme::NoWait).build()
}

#[test]
fn operand_from_forwards_results_on_the_host_path_through_a_session() {
    let cluster = smallbank_cluster();
    let mut session = cluster.session(NodeId(0)).unwrap();

    // Amalgamate over two *cold* customers on different nodes: drain c1's
    // savings and credit the read amount to c2's checking — entirely on the
    // host path, distributed, with the operand forwarded from operation 0.
    let (c1, c2) = (100u64, 2_100u64);
    let txn = Txn::new()
        .read(TupleId::new(SAVINGS, c1))
        .write(TupleId::new(SAVINGS, c1), 0)
        .add(TupleId::new(CHECKING, c2), 0)
        .operand_from(0);
    let outcome = session.execute(&txn).unwrap();
    assert_eq!(outcome.class, TxnClass::Cold);
    // Per-op results in operation order: the read value, the written value,
    // the credited balance.
    assert_eq!(outcome.results, vec![INITIAL_BALANCE, 0, 2 * INITIAL_BALANCE]);
    let node1 = &cluster.shared().nodes[1];
    assert_eq!(node1.table(CHECKING).unwrap().read(c2).unwrap().switch_word(), 2 * INITIAL_BALANCE);
    assert_eq!(cluster.shared().nodes[0].table(SAVINGS).unwrap().read(c1).unwrap().switch_word(), 0);
}

#[test]
fn operand_from_forwards_results_on_the_switch_path_through_a_session() {
    let cluster = smallbank_cluster();
    let mut session = cluster.session(NodeId(0)).unwrap();

    // The same amalgamate over two *hot* customers: all three operations are
    // offloaded, so the dependency is resolved inside the switch pipeline.
    let (c1, c2) = (1u64, 2u64);
    let txn = Txn::new()
        .read(TupleId::new(SAVINGS, c1))
        .write(TupleId::new(SAVINGS, c1), 0)
        .add(TupleId::new(CHECKING, c2), 0)
        .operand_from(0);
    let outcome = session.execute(&txn).unwrap();
    assert_eq!(outcome.class, TxnClass::Hot);
    assert!(outcome.gid.is_some());
    assert_eq!(outcome.results, vec![INITIAL_BALANCE, 0, 2 * INITIAL_BALANCE]);
    assert_eq!(cluster.switch_value(TupleId::new(SAVINGS, c1)), Some(0));
    assert_eq!(cluster.switch_value(TupleId::new(CHECKING, c2)), Some(2 * INITIAL_BALANCE));
}

#[test]
fn cond_sub_aborts_on_the_host_but_is_a_constrained_no_apply_on_the_switch() {
    let cluster = smallbank_cluster();
    let mut session = cluster.session(NodeId(0)).unwrap();
    session.set_max_attempts(1); // a constraint violation is deterministic — don't retry

    // Host path: overdrawing a cold account aborts the transaction.
    let cold = TupleId::new(CHECKING, 200);
    let err = session.execute(&Txn::new().cond_sub(cold, INITIAL_BALANCE + 1)).unwrap_err();
    assert_eq!(err.abort_reason(), Some(AbortReason::ConstraintViolation));
    assert_eq!(cluster.shared().nodes[0].table(CHECKING).unwrap().read(200).unwrap().switch_word(), INITIAL_BALANCE);

    // Switch path: the same overdraft on a hot account commits as a
    // constrained write that simply does not apply (§5.1 — the switch never
    // aborts).
    let hot = TupleId::new(CHECKING, 3);
    let outcome = session.execute(&Txn::new().cond_sub(hot, INITIAL_BALANCE + 1)).unwrap();
    assert_eq!(outcome.class, TxnClass::Hot);
    assert_eq!(outcome.results, vec![INITIAL_BALANCE], "the balance is reported unchanged");
    assert_eq!(cluster.switch_value(hot), Some(INITIAL_BALANCE));

    // The session's merged statistics saw exactly one constraint abort.
    assert_eq!(session.stats().aborts_constraint, 1);
    assert_eq!(session.stats().committed_total(), 1);
}

#[test]
fn warm_transactions_keep_per_op_results_in_operation_order() {
    let cluster = smallbank_cluster();
    let mut session = cluster.session(NodeId(0)).unwrap();

    // hot / cold / hot interleaving: results must come back in op order even
    // though the engine executes the cold part first and scatters the switch
    // results afterwards.
    let txn =
        Txn::new().read(TupleId::new(CHECKING, 4)).add(TupleId::new(SAVINGS, 300), 5).read(TupleId::new(SAVINGS, 4));
    let outcome = session.execute(&txn).unwrap();
    assert_eq!(outcome.class, TxnClass::Warm);
    assert_eq!(outcome.results, vec![INITIAL_BALANCE, INITIAL_BALANCE + 5, INITIAL_BALANCE]);
}

#[test]
fn sessions_reject_cross_temperature_operand_dependencies() {
    let cluster = smallbank_cluster();
    let mut session = cluster.session(NodeId(0)).unwrap();
    // Operand produced on the host, consumed on the switch: structured error,
    // not an executor panic.
    let txn = Txn::new().read(TupleId::new(SAVINGS, 100)).add(TupleId::new(CHECKING, 1), 0).operand_from(0);
    assert!(matches!(session.execute(&txn), Err(Error::InvalidTxn(_))));
}

#[test]
fn capacity_overflow_degrades_gracefully() {
    // Hot set larger than the switch: the prefix is offloaded, the rest runs
    // on the host, and the system still commits.
    let workload: Arc<dyn Workload> = Arc::new(Ycsb::new(YcsbConfig {
        keys_per_node: 4_000,
        hot_keys_per_node: 1_000,
        ..YcsbConfig::new(YcsbMix::A)
    }));
    let mut config = ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait);
    config.switch = p4db::switch::SwitchConfig::tiny(); // 512 cells total
    let cluster = Cluster::build(config, workload);
    assert!(cluster.offloaded_tuples() > 0);
    assert!(cluster.offloaded_tuples() < cluster.hot_set_size());
    let stats = cluster.run_for(Duration::from_millis(200));
    assert!(stats.merged.committed_total() > 10);
    // With only part of the hot set on the switch, transactions over the hot
    // keys become warm (or hot if all their keys happen to be offloaded) —
    // the switch is still involved, throughput degrades gracefully.
    assert!(stats.merged.committed_hot + stats.merged.committed_warm > 0);
    assert!(stats.merged.committed_cold + stats.merged.committed_warm > 0);
}
