//! Property-based tests on the core invariants of the system: the switch ALU
//! and pass planner, the pipeline locks, the declustered layout, the host
//! lock table and the recovery replay.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use a small deterministic case-generation harness driven by the
//! workspace's own [`FastRng`]: each property runs against a few hundred
//! pseudo-random cases derived from a fixed seed, and a failure message
//! reports the case seed so the exact case can be replayed.

use p4db::common::rand_util::FastRng;
use p4db::common::{CcScheme, GlobalTxnId, NodeId, SwitchId, TableId, TupleId, TxnId, Value, WorkerId};
use p4db::layout::{max_cut, single_pass_fraction, AccessGraph, LayoutPlanner, LayoutStrategy, TraceAccess, TxnTrace};
use p4db::net::{decode_frame_prefix, encode_frame, EndpointId, Envelope};
use p4db::storage::{
    decode_segment_prefix, encode_segment, recover_switch_state, LockMode, LockTable, LogRecord, LoggedSwitchOp, Wal,
};
use p4db::switch::{apply_op, plan_passes, Instruction, OpCode, RegisterSlot};
use std::collections::HashMap;

/// Number of pseudo-random cases generated per property.
const CASES: u64 = 300;

/// Runs `property` once per case with an rng seeded from the case index, so
/// every case is independent and reproducible: re-running a reported seed
/// replays exactly the failing case.
fn check(name: &str, property: impl Fn(&mut FastRng)) {
    for case in 0..CASES {
        let seed = 0x5EED_0000_0000 ^ (case + 1);
        let mut rng = FastRng::new(seed);
        // The panic payload propagates unchanged; the seed line below is
        // printed *after* the panic message, just before re-raising it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property {name:?} failed for case seed {seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

fn rand_opcode(rng: &mut FastRng) -> OpCode {
    match rng.gen_range(6) {
        0 => OpCode::Read,
        1 => OpCode::Write,
        2 => OpCode::Add,
        3 => OpCode::FetchAdd,
        4 => OpCode::CondSub,
        _ => OpCode::WriteIfGreater,
    }
}

fn rand_slot(rng: &mut FastRng) -> RegisterSlot {
    RegisterSlot::new(rng.gen_range(10) as u8, rng.gen_range(4) as u8, rng.gen_range(64) as u32)
}

/// The switch ALU never corrupts a register: reads leave it unchanged and
/// CondSub never drives a non-negative balance negative.
#[test]
fn alu_invariants() {
    check("alu_invariants", |rng| {
        let cell = rng.next_u64();
        let op = rand_opcode(rng);
        let operand = rng.next_u64();
        let (new, result) = apply_op(cell, op, operand);
        match op {
            OpCode::Read => {
                assert_eq!(new, cell);
                assert_eq!(result.value, cell);
            }
            OpCode::Write => assert_eq!(new, operand),
            OpCode::Add => assert_eq!(new, cell.wrapping_add(operand)),
            OpCode::FetchAdd => {
                assert_eq!(result.value, cell);
                assert_eq!(new, cell.wrapping_add(operand));
            }
            OpCode::CondSub => {
                if (cell as i64) >= 0 {
                    assert!((new as i64) >= 0, "CondSub must never overdraft");
                }
                if !result.applied {
                    assert_eq!(new, cell);
                }
            }
            OpCode::WriteIfGreater => {
                assert!(new >= cell || new == operand);
            }
        }
    });
}

/// The pass planner always produces passes that (a) cover every instruction
/// exactly once, in order, (b) never decrease the stage within a pass and
/// (c) never touch the same register array twice within a pass — the Tofino
/// memory-model constraints of §2.3 / Table 1.
#[test]
fn pass_planner_respects_tofino_constraints() {
    check("pass_planner_respects_tofino_constraints", |rng| {
        let n = rng.gen_range(20) as usize;
        let instructions: Vec<Instruction> = (0..n).map(|_| Instruction::read(rand_slot(rng))).collect();
        let passes = plan_passes(&instructions);
        // Coverage in order.
        let mut covered = Vec::new();
        for pass in &passes {
            assert!(!pass.is_empty());
            covered.extend(pass.clone());
        }
        assert_eq!(covered, (0..instructions.len()).collect::<Vec<_>>());
        // Per-pass constraints.
        for pass in &passes {
            let mut last_stage = -1i32;
            let mut touched = Vec::new();
            for idx in pass.clone() {
                let slot = instructions[idx].slot;
                assert!(slot.stage as i32 >= last_stage, "stage order violated");
                assert!(!touched.contains(&(slot.stage, slot.array)), "register array reused in a pass");
                last_stage = slot.stage as i32;
                touched.push((slot.stage, slot.array));
            }
        }
    });
}

/// Any layout produced by any strategy respects the per-array capacity and
/// places every hot tuple exactly once.
#[test]
fn layouts_respect_capacity() {
    check("layouts_respect_capacity", |rng| {
        let n = 1 + rng.gen_range(199) as usize;
        let seed = rng.next_u64();
        let tuples: Vec<TupleId> = (0..n as u64).map(|k| TupleId::new(TableId(0), k)).collect();
        let traces: Vec<TxnTrace> = (0..64)
            .map(|_| TxnTrace::new((0..4).map(|_| TraceAccess::read(tuples[rng.pick(tuples.len())])).collect()))
            .collect();
        let strategy = match rng.gen_range(4) {
            0 => LayoutStrategy::Declustered,
            1 => LayoutStrategy::Random { seed },
            2 => LayoutStrategy::Worst,
            _ => LayoutStrategy::Hashed,
        };
        let planner = LayoutPlanner::new(5, 2, 32); // 10 arrays x 32 = 320 >= 200
        let layout = planner.plan(&tuples, &traces, strategy);
        assert_eq!(layout.len(), n);
        for (_, count) in layout.occupancy() {
            assert!(count <= 32, "array over capacity: {count}");
        }
        // The single-pass fraction is a fraction.
        let frac = single_pass_fraction(&layout, &traces);
        assert!((0.0..=1.0).contains(&frac));
    });
}

/// The host lock table never grants incompatible locks simultaneously,
/// regardless of the request sequence, and releasing everything leaves it
/// empty.
#[test]
fn lock_table_compatibility() {
    check("lock_table_compatibility", |rng| {
        let table = LockTable::new();
        let n_ops = 1 + rng.gen_range(59);
        // Track which (txn, tuple, exclusive) grants are outstanding.
        let mut granted: Vec<(TxnId, TupleId, bool)> = Vec::new();
        for _ in 0..n_ops {
            let txn_seq = rng.gen_range(6) as u32;
            let key = rng.gen_range(4);
            let exclusive = rng.gen_bool(0.5);
            let txn = TxnId::compose(txn_seq, NodeId(0), WorkerId(txn_seq as u16));
            let tuple = TupleId::new(TableId(0), key);
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            if table.acquire(txn, tuple, mode, CcScheme::NoWait).is_ok() {
                // Compatibility: no other txn may hold an exclusive lock, and
                // if we got exclusive, nobody else may hold anything.
                for (other_txn, other_tuple, other_ex) in &granted {
                    if *other_tuple == tuple && *other_txn != txn {
                        assert!(!(*other_ex || exclusive), "incompatible grant: {exclusive} vs existing {other_ex}");
                    }
                }
                granted.retain(|(t, tu, _)| !(*t == txn && *tu == tuple));
                granted.push((txn, tuple, exclusive));
            }
        }
        for (txn, tuple, _) in &granted {
            table.release(*txn, *tuple);
        }
        assert_eq!(table.locked_count(), 0);
    });
}

/// Builds a WAL with a pseudo-random mix of all record types, so truncation
/// sweeps cover every encoding shape.
fn random_wal(rng: &mut FastRng) -> Wal {
    let wal = Wal::new();
    let records = 2 + rng.gen_range(8);
    for s in 0..records {
        let txn = TxnId::compose(s as u32, NodeId(0), WorkerId(0));
        let tuple = TupleId::new(TableId(rng.gen_range(3) as u16), rng.gen_range(1_000));
        match rng.gen_range(5) {
            0 => {
                wal.append(LogRecord::ColdWrite {
                    txn,
                    tuple,
                    before: Value::from_fields(&[rng.next_u64() % 1_000, 7]),
                    after: Value::from_fields(&[rng.next_u64() % 1_000, 7]),
                });
            }
            1 => {
                let ops = (0..1 + rng.gen_range(3))
                    .map(|i| LoggedSwitchOp {
                        tuple: TupleId::new(tuple.table, tuple.key + i),
                        op: OpCode::Add,
                        operand: rng.gen_range(50),
                        operand_from: (i > 0 && rng.gen_bool(0.3)).then_some(0),
                    })
                    .collect();
                wal.append(LogRecord::SwitchIntent { txn, ops });
            }
            2 => {
                wal.append(LogRecord::SwitchResult {
                    txn,
                    gid: GlobalTxnId(rng.gen_range(100)),
                    results: vec![(tuple, rng.next_u64() % 500)],
                });
            }
            3 => {
                wal.append(LogRecord::Commit { txn });
            }
            _ => {
                wal.append(LogRecord::Abort { txn });
            }
        }
    }
    wal
}

/// Truncating a serialised log at *every* byte offset recovers exactly the
/// records whose lines are fully intact before the cut — never fewer, never
/// a corrupted extra one. This is the crash-mid-flush contract
/// `deserialize_prefix` gives recovery.
#[test]
fn wal_truncation_at_every_offset_recovers_exactly_the_intact_prefix() {
    check("wal_truncation_at_every_offset_recovers_exactly_the_intact_prefix", |rng| {
        let wal = random_wal(rng);
        let records = wal.records();
        let data = wal.serialize();

        // (start, content_end) of every line; the line's '\n' sits at
        // content_end, so the line parses once `cut >= content_end`.
        let mut lines = Vec::new();
        let mut start = 0usize;
        for (i, b) in data.bytes().enumerate() {
            if b == b'\n' {
                lines.push((start, i));
                start = i + 1;
            }
        }
        // lines[0] is the header; record r is lines[r + 1].
        for cut in 0..=data.len() {
            let torn = &data[..cut];
            // A pure truncation always tears the *final* line, so this is the
            // torn-tail arm of the contract — never interior corruption.
            let (prefix, error) =
                Wal::deserialize_prefix(torn).expect("a truncation is a torn tail, not interior corruption");
            let intact = lines.iter().skip(1).filter(|&&(_, content_end)| cut >= content_end).count();
            let expected: Vec<LogRecord> = records[..intact].to_vec();
            assert_eq!(
                prefix.records(),
                expected,
                "cut at byte {cut}/{} recovered {} records, expected {intact}",
                data.len(),
                prefix.records().len(),
            );
            // An error is reported iff the cut strictly tears a line's
            // content (cutting at a line boundary or right before a newline
            // leaves only fully-parseable text).
            let torn_mid_line = lines.iter().any(|&(start, content_end)| start < cut && cut < content_end);
            assert_eq!(error.is_none(), !torn_mid_line, "cut at byte {cut}: error={error:?}");
        }
    });
}

/// The frame-batch wire codec round-trips at **every** split point: encoding
/// a batch of k envelopes and truncating the bytes at any boundary decodes
/// exactly the intact envelope prefix — never fewer, never a corrupted extra
/// one — with an error reported iff the cut tears a record or the header.
/// This is the mirror of the WAL truncation property for the fabric's frame
/// batching.
#[test]
fn frame_codec_truncation_at_every_offset_recovers_exactly_the_intact_prefix() {
    check("frame_codec_truncation_at_every_offset_recovers_exactly_the_intact_prefix", |rng| {
        let k = 1 + rng.gen_range(6) as usize;
        let envelopes: Vec<Envelope<Vec<u8>>> = (0..k)
            .map(|_| {
                let src = match rng.gen_range(3) {
                    0 => EndpointId::Node(NodeId(rng.gen_range(4) as u16)),
                    1 => EndpointId::Worker(NodeId(rng.gen_range(4) as u16), WorkerId(rng.gen_range(8) as u16)),
                    _ => EndpointId::Switch(SwitchId(0)),
                };
                let payload: Vec<u8> = (0..rng.gen_range(24)).map(|_| rng.next_u64() as u8).collect();
                Envelope::new(src, EndpointId::Switch(SwitchId(0)), payload)
            })
            .collect();
        let bytes = encode_frame(&envelopes);
        // Record boundaries: boundary[i] = encoded length of the first i
        // envelopes (boundary[0] covers just the header).
        let boundaries: Vec<usize> = (0..=k).map(|i| encode_frame(&envelopes[..i]).len()).collect();
        for cut in 0..=bytes.len() {
            let (prefix, error) = decode_frame_prefix(&bytes[..cut]);
            let intact = boundaries.iter().skip(1).filter(|&&end| cut >= end).count();
            assert_eq!(prefix, envelopes[..intact].to_vec(), "cut at byte {cut}/{}", bytes.len());
            // An error iff the cut strictly tears the header or a record.
            let expect_error = cut != 0 && boundaries.iter().all(|&end| cut != end);
            assert_eq!(error.is_some(), expect_error, "cut at byte {cut}: {error:?}");
        }
    });
}

/// `Wal::append_group` preserves the torn-tail contract: a log written in
/// groups serialises byte-identically to the same records appended singly,
/// and truncating it at every offset still recovers exactly the intact
/// record prefix.
#[test]
fn wal_append_group_torn_tail_recovers_exactly_the_intact_prefix() {
    check("wal_append_group_torn_tail_recovers_exactly_the_intact_prefix", |rng| {
        let singles = random_wal(rng);
        let records = singles.records();
        let grouped = Wal::new();
        // Re-append the same records in random-sized groups.
        let mut rest = records.as_slice();
        while !rest.is_empty() {
            let take = (1 + rng.gen_range(4) as usize).min(rest.len());
            grouped.append_group(rest[..take].to_vec());
            rest = &rest[take..];
        }
        let data = grouped.serialize();
        assert_eq!(data, singles.serialize(), "group-written log must serialise identically");

        // Truncation sweep over line-content boundaries (the full every-byte
        // sweep runs in the singles-based property above; the group property
        // asserts the same contract holds for group-written logs).
        let mut lines = Vec::new();
        let mut start = 0usize;
        for (i, b) in data.bytes().enumerate() {
            if b == b'\n' {
                lines.push((start, i));
                start = i + 1;
            }
        }
        for cut in 0..=data.len() {
            let torn = &data[..cut];
            let (prefix, error) =
                Wal::deserialize_prefix(torn).expect("a truncation is a torn tail, not interior corruption");
            let intact = lines.iter().skip(1).filter(|&&(_, content_end)| cut >= content_end).count();
            assert_eq!(prefix.records(), records[..intact].to_vec(), "cut at byte {cut}/{}", data.len());
            let torn_mid_line = lines.iter().any(|&(line_start, content_end)| line_start < cut && cut < content_end);
            assert_eq!(error.is_none(), !torn_mid_line, "cut at byte {cut}: error={error:?}");
        }
    });
}

/// The binary segment codec holds the same every-byte-offset truncation
/// contract as the text WAL: cutting a segment at *any* byte recovers
/// exactly the records whose frames are fully intact before the cut — never
/// fewer, never a corrupted extra one — with a torn-tail note iff the cut
/// strictly tears the header or a record frame.
#[test]
fn segment_truncation_at_every_offset_recovers_exactly_the_intact_prefix() {
    check("segment_truncation_at_every_offset_recovers_exactly_the_intact_prefix", |rng| {
        let wal = random_wal(rng);
        let records = wal.records();
        let base = rng.gen_range(1000);
        let bytes = encode_segment(base, &records);
        // boundary[i] = encoded length of the first i records (boundary[0]
        // covers just the header).
        let boundaries: Vec<usize> = (0..=records.len()).map(|i| encode_segment(base, &records[..i]).len()).collect();
        for cut in 0..=bytes.len() {
            let prefix =
                decode_segment_prefix(&bytes[..cut]).expect("a truncation is a torn tail, not interior corruption");
            let intact = boundaries.iter().skip(1).filter(|&&end| cut >= end).count();
            assert_eq!(prefix.records, records[..intact].to_vec(), "cut at byte {cut}/{}", bytes.len());
            // The base LSN survives iff the 13-byte header is intact.
            assert_eq!(prefix.base_lsn.is_some(), cut >= boundaries[0], "cut at byte {cut}");
            // A tear is reported iff the cut lands strictly inside the
            // header or a record frame.
            let at_boundary = boundaries.contains(&cut);
            assert_eq!(prefix.torn.is_none(), at_boundary, "cut at byte {cut}: torn={:?}", prefix.torn);
        }

        // Interior corruption — a bit flip in any non-final record with
        // intact frames after it — must be a hard error, never a silent
        // truncation. (Flipping inside the *final* record is the torn tail
        // the sweep above already covers.)
        if records.len() >= 2 {
            let mut corrupt = bytes.clone();
            // A byte inside the first record's frame, past the header.
            let offset = boundaries[0] + rng.gen_range((boundaries[1] - boundaries[0]) as u64) as usize;
            corrupt[offset] ^= 0x01;
            match decode_segment_prefix(&corrupt) {
                Err(err) => assert!(
                    err.message.contains("interior corruption") || err.message.contains("record"),
                    "unexpected error shape: {err}"
                ),
                // A flip in a length field can masquerade as a longer/shorter
                // frame; the checksum of the *following* bytes then fails
                // either as interior corruption (Err) or — when the bogus
                // length reaches past the buffer end — as a tear. Both are
                // detected; what must never happen is a clean decode of
                // different records.
                Ok(prefix) => {
                    assert!(
                        prefix.torn.is_some() || prefix.records != records,
                        "a corrupted segment decoded cleanly to the original records with no tear note"
                    );
                    assert!(
                        records.starts_with(&prefix.records) || prefix.torn.is_some(),
                        "corruption silently rewrote decoded records"
                    );
                }
            }
        }
    });
}

/// Same seed + same conflict graph ⇒ byte-identical max-cut partitioning and
/// declustered layout, across repeated runs with freshly built graphs
/// (exercising `HashMap` iteration-order independence).
#[test]
fn maxcut_and_declustered_layout_are_deterministic_per_seed() {
    check("maxcut_and_declustered_layout_are_deterministic_per_seed", |rng| {
        let n_tuples = 4 + rng.gen_range(60);
        let traces: Vec<TxnTrace> = (0..48)
            .map(|_| {
                TxnTrace::new(
                    (0..2 + rng.gen_range(3))
                        .map(|i| {
                            let t = TupleId::new(TableId(0), rng.gen_range(n_tuples));
                            if i > 0 && rng.gen_bool(0.25) {
                                TraceAccess::dependent_write(t)
                            } else {
                                TraceAccess::read(t)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let seed = rng.next_u64();

        // Fresh graphs per run: HashMap iteration order differs, results
        // must not.
        let first = max_cut(&AccessGraph::from_traces(&traces), 4, n_tuples as usize, seed);
        let second = max_cut(&AccessGraph::from_traces(&traces), 4, n_tuples as usize, seed);
        assert_eq!(first.partition_of, second.partition_of, "max-cut diverged for seed {seed:#x}");
        assert_eq!(first.cut_weight, second.cut_weight);

        let tuples: Vec<TupleId> = (0..n_tuples).map(|k| TupleId::new(TableId(0), k)).collect();
        let planner = LayoutPlanner::new(5, 2, 64);
        let mut layouts = Vec::new();
        for _ in 0..2 {
            let layout = planner.plan(&tuples, &traces, LayoutStrategy::Declustered);
            let mut placed: Vec<_> = layout.iter().collect();
            placed.sort_by_key(|(t, _)| (t.table.0, t.key));
            layouts.push(placed);
        }
        assert_eq!(layouts[0], layouts[1], "declustered layout diverged");
    });
}

/// Switch recovery replays completed transactions to exactly the state the
/// switch had, for arbitrary interleavings of Add operations across two node
/// logs.
#[test]
fn recovery_replay_matches_live_execution() {
    check("recovery_replay_matches_live_execution", |rng| {
        let n_txns = 1 + rng.gen_range(39) as usize;
        let deltas: Vec<(u64, u64, bool)> =
            (0..n_txns).map(|_| (rng.gen_range(4), 1 + rng.gen_range(99), rng.gen_bool(0.5))).collect();
        let tuple = |k: u64| TupleId::new(TableId(0), k);
        let initial: HashMap<TupleId, u64> = (0..4u64).map(|k| (tuple(k), 1_000)).collect();
        let node0 = Wal::new();
        let node1 = Wal::new();
        // "Live" switch execution: apply in order, assigning dense GIDs, and
        // log each transaction to one of the two node logs.
        let mut live = initial.clone();
        for (gid, (key, delta, on_node0)) in deltas.iter().enumerate() {
            let t = tuple(*key);
            let new = live[&t] + delta;
            live.insert(t, new);
            let wal = if *on_node0 { &node0 } else { &node1 };
            let txn = TxnId::compose(gid as u32, NodeId(!*on_node0 as u16), WorkerId(0));
            let ops = vec![LoggedSwitchOp { tuple: t, op: OpCode::Add, operand: *delta, operand_from: None }];
            wal.append(LogRecord::SwitchIntent { txn, ops });
            wal.append(LogRecord::SwitchResult { txn, gid: GlobalTxnId(gid as u64), results: vec![(t, new)] });
        }
        let outcome = recover_switch_state(&initial, &[&node0, &node1]);
        assert_eq!(outcome.inconsistencies, 0);
        for (t, v) in live {
            assert_eq!(outcome.values.get(&t).copied().unwrap_or(initial[&t]), v);
        }
    });
}
