//! Property-based tests (proptest) on the core invariants of the system:
//! the switch ALU and pass planner, the pipeline locks, the declustered
//! layout, the host lock table and the recovery replay.

use p4db::common::rand_util::FastRng;
use p4db::common::{CcScheme, GlobalTxnId, NodeId, TableId, TupleId, TxnId, WorkerId};
use p4db::layout::{single_pass_fraction, LayoutPlanner, LayoutStrategy, TraceAccess, TxnTrace};
use p4db::storage::{recover_switch_state, LockMode, LockTable, LogRecord, LoggedSwitchOp, Wal};
use p4db::switch::{apply_op, plan_passes, Instruction, OpCode, RegisterSlot};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_opcode() -> impl Strategy<Value = OpCode> {
    prop_oneof![
        Just(OpCode::Read),
        Just(OpCode::Write),
        Just(OpCode::Add),
        Just(OpCode::FetchAdd),
        Just(OpCode::CondSub),
        Just(OpCode::WriteIfGreater),
    ]
}

fn arb_slot() -> impl Strategy<Value = RegisterSlot> {
    (0u8..10, 0u8..4, 0u32..64).prop_map(|(s, a, i)| RegisterSlot::new(s, a, i))
}

proptest! {
    /// The switch ALU never corrupts a register: reads leave it unchanged and
    /// CondSub never drives a non-negative balance negative.
    #[test]
    fn alu_invariants(cell in any::<u64>(), op in arb_opcode(), operand in any::<u64>()) {
        let (new, result) = apply_op(cell, op, operand);
        match op {
            OpCode::Read => {
                prop_assert_eq!(new, cell);
                prop_assert_eq!(result.value, cell);
            }
            OpCode::Write => prop_assert_eq!(new, operand),
            OpCode::Add => prop_assert_eq!(new, cell.wrapping_add(operand)),
            OpCode::FetchAdd => {
                prop_assert_eq!(result.value, cell);
                prop_assert_eq!(new, cell.wrapping_add(operand));
            }
            OpCode::CondSub => {
                if (cell as i64) >= 0 {
                    prop_assert!((new as i64) >= 0, "CondSub must never overdraft");
                }
                if !result.applied {
                    prop_assert_eq!(new, cell);
                }
            }
            OpCode::WriteIfGreater => {
                prop_assert!(new >= cell || new == operand);
            }
        }
    }

    /// The pass planner always produces passes that (a) cover every
    /// instruction exactly once, in order, (b) never decrease the stage
    /// within a pass and (c) never touch the same register array twice within
    /// a pass — the Tofino memory-model constraints of §2.3 / Table 1.
    #[test]
    fn pass_planner_respects_tofino_constraints(slots in proptest::collection::vec(arb_slot(), 0..20)) {
        let instructions: Vec<Instruction> = slots.iter().map(|&s| Instruction::read(s)).collect();
        let passes = plan_passes(&instructions);
        // Coverage in order.
        let mut covered = Vec::new();
        for pass in &passes {
            prop_assert!(!pass.is_empty());
            covered.extend(pass.clone());
        }
        prop_assert_eq!(covered, (0..instructions.len()).collect::<Vec<_>>());
        // Per-pass constraints.
        for pass in &passes {
            let mut last_stage = -1i32;
            let mut touched = Vec::new();
            for idx in pass.clone() {
                let slot = instructions[idx].slot;
                prop_assert!(slot.stage as i32 >= last_stage, "stage order violated");
                prop_assert!(!touched.contains(&(slot.stage, slot.array)), "register array reused in a pass");
                last_stage = slot.stage as i32;
                touched.push((slot.stage, slot.array));
            }
        }
    }

    /// Any layout produced by any strategy respects the per-array capacity
    /// and places every hot tuple exactly once.
    #[test]
    fn layouts_respect_capacity(n in 1usize..200, seed in any::<u64>(), strategy_idx in 0usize..4) {
        let tuples: Vec<TupleId> = (0..n as u64).map(|k| TupleId::new(TableId(0), k)).collect();
        let mut rng = FastRng::new(seed);
        let traces: Vec<TxnTrace> = (0..64)
            .map(|_| {
                TxnTrace::new(
                    (0..4)
                        .map(|_| TraceAccess::read(tuples[rng.pick(tuples.len())]))
                        .collect(),
                )
            })
            .collect();
        let strategy = match strategy_idx {
            0 => LayoutStrategy::Declustered,
            1 => LayoutStrategy::Random { seed },
            2 => LayoutStrategy::Worst,
            _ => LayoutStrategy::Hashed,
        };
        let planner = LayoutPlanner::new(5, 2, 32); // 10 arrays x 32 = 320 >= 200
        let layout = planner.plan(&tuples, &traces, strategy);
        prop_assert_eq!(layout.len(), n);
        for (_, count) in layout.occupancy() {
            prop_assert!(count <= 32, "array over capacity: {}", count);
        }
        // The declustered layout should never be *worse* than 0 single-pass.
        let frac = single_pass_fraction(&layout, &traces);
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    /// The host lock table never grants incompatible locks simultaneously,
    /// regardless of the request sequence, and releasing everything leaves it
    /// empty.
    #[test]
    fn lock_table_compatibility(ops in proptest::collection::vec((0u32..6, 0u64..4, any::<bool>()), 1..60)) {
        let table = LockTable::new();
        // Track which (txn, tuple, exclusive) grants are outstanding.
        let mut granted: Vec<(TxnId, TupleId, bool)> = Vec::new();
        for (txn_seq, key, exclusive) in ops {
            let txn = TxnId::compose(txn_seq, NodeId(0), WorkerId(txn_seq as u16));
            let tuple = TupleId::new(TableId(0), key);
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            if table.acquire(txn, tuple, mode, CcScheme::NoWait).is_ok() {
                // Compatibility: no other txn may hold an exclusive lock, and
                // if we got exclusive, nobody else may hold anything.
                for (other_txn, other_tuple, other_ex) in &granted {
                    if *other_tuple == tuple && *other_txn != txn {
                        prop_assert!(!(*other_ex || exclusive),
                            "incompatible grant: {exclusive} vs existing {other_ex}");
                    }
                }
                granted.retain(|(t, tu, _)| !(*t == txn && *tu == tuple));
                granted.push((txn, tuple, exclusive));
            }
        }
        for (txn, tuple, _) in &granted {
            table.release(*txn, *tuple);
        }
        prop_assert_eq!(table.locked_count(), 0);
    }

    /// Switch recovery replays completed transactions to exactly the state
    /// the switch had, for arbitrary interleavings of Add operations across
    /// two node logs.
    #[test]
    fn recovery_replay_matches_live_execution(
        deltas in proptest::collection::vec((0u64..4, 1u64..100, any::<bool>()), 1..40)
    ) {
        let tuple = |k: u64| TupleId::new(TableId(0), k);
        let initial: HashMap<TupleId, u64> = (0..4u64).map(|k| (tuple(k), 1_000)).collect();
        let node0 = Wal::new();
        let node1 = Wal::new();
        // "Live" switch execution: apply in order, assigning dense GIDs, and
        // log each transaction to one of the two node logs.
        let mut live = initial.clone();
        for (gid, (key, delta, on_node0)) in deltas.iter().enumerate() {
            let t = tuple(*key);
            let new = live[&t] + delta;
            live.insert(t, new);
            let wal = if *on_node0 { &node0 } else { &node1 };
            let txn = TxnId::compose(gid as u32, NodeId(!*on_node0 as u16), WorkerId(0));
            let ops = vec![LoggedSwitchOp { tuple: t, op: OpCode::Add, operand: *delta, operand_from: None }];
            wal.append(LogRecord::SwitchIntent { txn, ops });
            wal.append(LogRecord::SwitchResult { txn, gid: GlobalTxnId(gid as u64), results: vec![(t, new)] });
        }
        let outcome = recover_switch_state(&initial, &[&node0, &node1]);
        prop_assert_eq!(outcome.inconsistencies, 0);
        for (t, v) in live {
            prop_assert_eq!(outcome.values.get(&t).copied().unwrap_or(initial[&t]), v);
        }
    }
}
