//! Chaos suite: seeded fault-injection sweeps with cluster-wide invariant
//! checking (see `p4db::chaos`).
//!
//! Each run drives one workload through waves of generated transactions
//! while the fabric drops, delays and reorders messages from a seeded plan;
//! afterwards the committed history (node WALs + the switch's data-plane
//! audit log) is replayed against a shadow store and checked for
//! serializability equivalence, exactly-once switch-intent application, cold
//! durability and workload-level conservation. A failure prints the seed and
//! a one-command repro line (`smoke_reproduce_from_env`).
//!
//! The `smoke_*` tests are the fixed-seed fast subset that `ci.sh` runs as
//! its chaos gate.

use p4db::chaos::{
    resend_logged_intent, run_chaos, ChaosOptions, ChaosReport, ChaosWorkload, SemanticChecks, Violation,
};
use p4db::common::NodeId;
use p4db::workloads::{SmallBank, SmallBankConfig, Workload};
use p4db::{Cluster, TupleId};
use std::sync::Arc;
use std::time::Duration;

/// Seeds per workload for the faulty sweep: 3 × 11 = 33 distinct seeded
/// scenarios with faults enabled.
const SWEEP_SEEDS: std::ops::Range<u64> = 1..12;

fn assert_clean(report: &ChaosReport) {
    assert!(report.is_clean(), "{}", report.failure_summary());
    assert!(report.committed > 0, "seed {} committed nothing", report.seed);
}

fn sweep(workload: ChaosWorkload) {
    for seed in SWEEP_SEEDS {
        let report = run_chaos(&ChaosOptions::new(workload, seed)).expect("chaos run failed to execute");
        assert_clean(&report);
    }
}

#[test]
fn chaos_sweep_ycsb_with_faults() {
    sweep(ChaosWorkload::Ycsb);
}

#[test]
fn chaos_sweep_smallbank_with_faults() {
    sweep(ChaosWorkload::SmallBank);
}

#[test]
fn chaos_sweep_tpcc_with_faults() {
    sweep(ChaosWorkload::Tpcc);
}

#[test]
fn chaos_control_arm_without_faults_is_silent() {
    for workload in [ChaosWorkload::Ycsb, ChaosWorkload::SmallBank, ChaosWorkload::Tpcc] {
        for seed in 1..3 {
            let report = run_chaos(&ChaosOptions::new(workload, seed).faults_off()).unwrap();
            assert_clean(&report);
            assert!(report.fault_events.is_empty(), "no faults were configured");
            assert_eq!(report.in_doubt, 0, "without faults nothing can be in doubt");
        }
    }
}

#[test]
fn chaos_node_crash_with_wal_restart() {
    for workload in [ChaosWorkload::SmallBank, ChaosWorkload::Ycsb] {
        for seed in 1..4 {
            let mut options = ChaosOptions::new(workload, seed);
            // Single-partition traffic: node recovery is unambiguous.
            options.distributed_prob = 0.0;
            options.crash_node = Some(NodeId(0));
            let report = run_chaos(&options).unwrap();
            assert_clean(&report);
            let recovery = report.node_recovery.as_ref().expect("node crash must have happened");
            assert!(recovery.restored_tuples > 0, "seed {seed}: recovery restored nothing");
        }
    }
}

#[test]
fn chaos_switch_crash_with_recovery() {
    for seed in 1..4 {
        let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, seed);
        options.crash_switch = true;
        let report = run_chaos(&options).unwrap();
        assert_clean(&report);
        let recovery = report.switch_recovery.as_ref().expect("switch crash must have happened");
        assert!(!recovery.reoffloaded);
        assert!(recovery.restored_tuples > 0);
    }
}

#[test]
fn chaos_switch_crash_with_reoffload() {
    for (workload, seed) in [(ChaosWorkload::SmallBank, 5), (ChaosWorkload::SmallBank, 6), (ChaosWorkload::Tpcc, 5)] {
        let mut options = ChaosOptions::new(workload, seed);
        options.crash_switch = true;
        options.reoffload = true;
        let report = run_chaos(&options).unwrap();
        assert_clean(&report);
        assert!(report.switch_recovery.as_ref().unwrap().reoffloaded);
    }
}

/// Two-switch topology under message faults: drops, delays and reorders now
/// hit two independent switch endpoints, and the per-switch invariant
/// checking (each switch's epoch log filtered to the tuples it owns) must
/// stay clean — including for cross-switch transactions whose intents appear
/// in more than one switch's view.
#[test]
fn chaos_two_switch_sweep_with_faults() {
    for workload in [ChaosWorkload::SmallBank, ChaosWorkload::Ycsb] {
        for seed in 1..6 {
            let mut options = ChaosOptions::new(workload, seed);
            options.switches = 2;
            let report = run_chaos(&options).unwrap();
            assert_clean(&report);
        }
    }
}

/// Two-switch crash drill: `crash_switch` crashes and recovers *each* switch
/// independently (per-switch epoch, per-switch WAL suffix replay filtered to
/// owned tuples), and the merged recovery report plus the per-switch
/// invariant checks must come back clean.
#[test]
fn chaos_two_switch_crash_with_recovery() {
    for seed in 1..4 {
        let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, seed);
        options.switches = 2;
        options.crash_switch = true;
        let report = run_chaos(&options).unwrap();
        assert_clean(&report);
        let recovery = report.switch_recovery.as_ref().expect("switch crashes must have happened");
        assert!(!recovery.reoffloaded);
        assert!(recovery.restored_tuples > 0);
    }
}

#[test]
fn chaos_lm_switch_mode_survives_message_faults() {
    let mut options = ChaosOptions::new(ChaosWorkload::Ycsb, 9);
    options.mode = p4db::SystemMode::LmSwitch;
    // Lost lock grants leak switch-side locks (a liveness degradation, not a
    // safety violation); keep the retry budget small so the run terminates.
    options.max_attempts = 5;
    let report = run_chaos(&options).unwrap();
    assert_clean(&report);
}

/// The negative test: a deliberately re-transmitted (double-applied) switch
/// intent must be caught by the exactly-once checker.
#[test]
fn double_apply_is_caught_by_the_checker() {
    let workload: Arc<dyn Workload> =
        Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
    let cluster = Cluster::builder(workload).test_profile().build();

    // Commit a few hot transactions so intents + results are logged.
    let mut session = cluster.session(NodeId(0)).unwrap();
    let hot = TupleId::new(p4db::workloads::smallbank::CHECKING, 1);
    let mut victim = None;
    for i in 0..5 {
        let outcome = session.execute(&p4db::txn::Txn::new().add(hot, 1 + i)).unwrap();
        assert!(outcome.gid.is_some());
        victim = Some(outcome);
    }
    assert!(cluster.quiesce_switch(Duration::from_secs(5)));
    let clean = p4db::chaos::check(&cluster, SemanticChecks::None);
    assert!(clean.is_clean(), "pre-injection state must be clean: {:?}", clean.violations);

    // Find the victim's TxnId in the WAL (the last logged intent).
    let txn = cluster.shared().nodes[0]
        .wal()
        .records()
        .iter()
        .rev()
        .find_map(|r| match r {
            p4db::storage::LogRecord::SwitchIntent { txn, .. } => Some(*txn),
            _ => None,
        })
        .expect("hot transactions must have logged intents");
    let _ = victim;

    // The "retransmission bug": the same intent executes a second time.
    resend_logged_intent(&cluster, txn).unwrap();
    assert!(cluster.quiesce_switch(Duration::from_secs(5)));

    let report = p4db::chaos::check(&cluster, SemanticChecks::None);
    assert!(!report.is_clean(), "the checker must catch a double-apply");
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::DoubleExecution { times: 2, .. })),
        "expected a DoubleExecution violation, got {:?}",
        report.violations
    );
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::SwitchDivergence { .. })),
        "the double-applied delta must surface as a register divergence, got {:?}",
        report.violations
    );
}

/// Failure reports carry the seed and a runnable repro command that encodes
/// the whole scenario, not just the seed.
#[test]
fn failure_reports_name_seed_and_repro_command() {
    let mut options = ChaosOptions::new(ChaosWorkload::Ycsb, 77);
    options.crash_switch = true;
    options.reoffload = true;
    options.distributed_prob = 0.0;
    let report = run_chaos(&options).unwrap();
    for fragment in
        ["CHAOS_SEED=77", "CHAOS_WORKLOAD=ycsb", "CHAOS_CRASH_SWITCH=1", "CHAOS_REOFFLOAD=1", "CHAOS_DIST=0"]
    {
        assert!(report.repro.contains(fragment), "repro {:?} misses {fragment}", report.repro);
    }
    assert!(report.repro.contains("smoke_reproduce_from_env"));
    // failure_summary always renders, clean or not.
    assert!(report.failure_summary().contains("seed=77"));
}

// --- Fixed-seed smoke subset (the ci.sh chaos gate) -----------------------

/// One fast fixed-seed faulty run per workload: exercises drop/delay/reorder,
/// the in-doubt commit path and the full invariant checker on every PR.
#[test]
fn smoke_fixed_seed_fault_paths() {
    for workload in [ChaosWorkload::Ycsb, ChaosWorkload::SmallBank, ChaosWorkload::Tpcc] {
        let mut options = ChaosOptions::new(workload, 7);
        options.waves = 1;
        options.txns_per_wave = 80;
        let report = run_chaos(&options).unwrap();
        assert_clean(&report);
    }
}

/// Fast fixed-seed crash smoke: node crash + switch crash with re-offload.
#[test]
fn smoke_fixed_seed_crash_paths() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 7);
    options.distributed_prob = 0.0;
    options.txns_per_wave = 80;
    options.crash_node = Some(NodeId(1));
    options.crash_switch = true;
    options.reoffload = true;
    let report = run_chaos(&options).unwrap();
    assert_clean(&report);
    assert!(report.node_recovery.is_some());
    assert!(report.switch_recovery.is_some());
}

/// Fast fixed-seed two-switch gate: independent per-switch crash/recovery
/// with re-offload on a partitioned hot set, with faults enabled, must
/// report zero invariant violations — the acceptance scenario of the
/// multi-switch topology work.
#[test]
fn smoke_two_switch_crash_recovery() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 7);
    options.switches = 2;
    options.txns_per_wave = 80;
    options.crash_switch = true;
    options.reoffload = true;
    let report = run_chaos(&options).unwrap();
    assert_clean(&report);
    let recovery = report.switch_recovery.as_ref().expect("switch crashes must have happened");
    assert!(recovery.reoffloaded);
    assert!(recovery.restored_tuples > 0);
}

/// The self-healing acceptance drill: a switch is blackholed mid-run (it
/// silently swallows every packet) and **no manual recovery is ever
/// called** — the circuit breaker must trip, the supervisor must stand up
/// degraded mode (hot traffic demoted to the host 2PL path), heartbeat
/// probes must walk the breaker back through half-open once the outage
/// clears, the in-doubt resolver must settle every parked entry, and the
/// switch must be re-admitted — all while every wave keeps committing.
#[test]
fn smoke_switch_outage_liveness() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 7);
    options.waves = 3;
    options.supervised = true;
    // Blackhole only — no probabilistic message faults — so the drill is the
    // pure outage→floor→recovery story: activates after 60 requests
    // ("mid-run"), heals itself after swallowing 40 messages (a transient
    // outage: the probes themselves burn it down).
    let mut plan = p4db::common::faults::FaultPlan::quiet(7);
    plan.blackhole = Some(p4db::common::faults::BlackholeFault { switch: 0, after_messages: 60, heal_after_drops: 40 });
    options.faults = Some(plan);

    let report = run_chaos(&options).unwrap();
    assert_clean(&report);

    // Liveness: committed throughput never hits zero in any wave, outage or
    // not — the breaker's degraded floor, not a stall.
    assert_eq!(report.wave_committed.len(), 3);
    for (wave, &c) in report.wave_committed.iter().enumerate() {
        assert!(c > 0, "wave {wave} committed nothing during the outage: {report:?}");
    }

    let sup = report.supervisor.as_ref().expect("supervised run must carry a supervisor report");
    assert!(sup.trips_seen >= 1, "the blackhole must trip the breaker: {sup:?}");
    assert!(sup.degraded.contains(&p4db::SwitchId(0)), "switch 0 must have been degraded: {sup:?}");
    assert!(sup.recovered.contains(&p4db::SwitchId(0)), "switch 0 must have been re-admitted: {sup:?}");
    assert!(sup.probes_answered > 0, "recovery must come from answered probes: {sup:?}");
    assert!(!sup.deadline_forced, "recovery must not need the deadline escape hatch: {sup:?}");

    // The swallowed replies became in-doubt commits, all of them settled.
    assert!(report.in_doubt > 0, "a blackholed switch must strand in-doubt commits");
    assert!(report.in_doubt_per_switch[0] > 0);
    let resolved = report.invariants.resolved_committed + report.invariants.resolved_retried;
    assert!(resolved > 0, "the resolver must have settled the parked entries: {:?}", report.invariants);
    assert_eq!(report.invariants.unresolved, 0, "no entry may stay unresolved: {:?}", report.invariants);
}

/// Reproduces one scenario, driven by the `CHAOS_*` environment variables a
/// failing run prints (`ChaosOptions::repro_env` round-trips through
/// `ChaosOptions::from_env`, so crashes, re-offloads, mode and sizing are
/// reproduced too — not just the seed). Without the env vars it runs the
/// default smoke seed.
#[test]
fn smoke_reproduce_from_env() {
    let options = ChaosOptions::from_env();
    let report = run_chaos(&options).unwrap();
    println!(
        "chaos seed {} on {}: {} committed, {} aborted, {} in doubt, {} faults injected, {} violations",
        report.seed,
        report.workload,
        report.committed,
        report.aborted,
        report.in_doubt,
        report.faults_injected,
        report.invariants.violations.len()
    );
    assert_clean(&report);
}
