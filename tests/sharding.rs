//! Differential sharding suite: the shared-nothing node hot path (sharded
//! row store, admission-time row-handle resolution, grouped lock release)
//! must be *invariant-equivalent* to the pre-sharding engine — same
//! serializability, exactly-once and conservation verdicts from
//! `p4db_chaos::invariants::check` for the same seeded workload, with and
//! without message faults.
//!
//! `single_latch = true` rebuilds the seed engine exactly (one latch + one
//! SipHash map per table, per-op lock/lookup/release), so every
//! `single_latch` arm below is the known-good pre-sharding behaviour; the
//! sharded arm runs the same seed on the new engine.

use p4db::chaos::{run_chaos, ChaosOptions, ChaosReport, ChaosWorkload};
use p4db::storage::{NodeStorage, RowHandle, Table};
use p4db::workloads::{SmallBank, SmallBankConfig, Workload, Ycsb, YcsbConfig, YcsbMix};
use p4db::{Cluster, NodeId, TableId};
use std::sync::Arc;
use std::time::Duration;

/// Seeds per workload for the differential sweep (12 seeds, matching the
/// chaos suite's faulty sweep).
const SEEDS: std::ops::Range<u64> = 1..13;

/// Runs one seeded scenario on one engine arm: one traffic wave, full
/// invariant checking; `faults` selects the faults-on or faults-off arm.
fn run(workload: ChaosWorkload, seed: u64, single_latch: bool, faults: bool) -> ChaosReport {
    let mut options = ChaosOptions::new(workload, seed);
    options.single_latch = single_latch;
    options.waves = 1;
    options.txns_per_wave = 60;
    if !faults {
        options.faults = None;
    }
    run_chaos(&options).expect("chaos run failed to execute")
}

/// The differential assertion: both engine arms of a seed must reach the
/// *same* invariant verdict — and since `single_latch` is the known-good
/// pre-sharding engine, that verdict must be clean.
fn assert_equivalent(workload: ChaosWorkload, seed: u64, faults: bool, seed_arm: &ChaosReport, sharded: &ChaosReport) {
    assert_eq!(
        seed_arm.invariants.is_clean(),
        sharded.invariants.is_clean(),
        "{workload:?} seed {seed} faults={faults}: verdicts diverge between single-latch and sharded\nsingle-latch: \
         {:?}\nsharded: {}",
        seed_arm.invariants.violations,
        sharded.failure_summary(),
    );
    assert!(seed_arm.invariants.is_clean(), "{workload:?} seed {seed} single-latch: {}", seed_arm.failure_summary());
    assert!(sharded.invariants.is_clean(), "{workload:?} seed {seed} sharded: {}", sharded.failure_summary());
    assert!(seed_arm.committed > 0 && sharded.committed > 0, "{workload:?} seed {seed}: empty run");
    if !faults {
        // Same closed-loop drivers, same seed, no faults: both arms attempt
        // the same transactions — sharding must not lose or invent work.
        assert_eq!(
            seed_arm.committed + seed_arm.aborted,
            sharded.committed + sharded.aborted,
            "{workload:?} seed {seed}: attempted-transaction counts diverge"
        );
    }
}

/// Fault-free differential sweep over every seed; faulty runs for a third of
/// them (drops/delays/reorders make timing nondeterministic, so the faulty
/// arms assert verdict equality, not transaction-count equality).
fn differential_sweep(workload: ChaosWorkload) {
    for seed in SEEDS {
        let faults = seed % 3 == 0;
        let seed_arm = run(workload, seed, true, faults);
        let sharded = run(workload, seed, false, faults);
        assert_equivalent(workload, seed, faults, &seed_arm, &sharded);
    }
}

#[test]
fn differential_sweep_ycsb() {
    differential_sweep(ChaosWorkload::Ycsb);
}

#[test]
fn differential_sweep_smallbank() {
    differential_sweep(ChaosWorkload::SmallBank);
}

#[test]
fn differential_sweep_tpcc() {
    differential_sweep(ChaosWorkload::Tpcc);
}

/// The repro line of a single-latch scenario round-trips the knob, so a
/// failing differential seed is reproducible with one command.
#[test]
fn single_latch_repro_env_names_the_knob() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 3);
    options.single_latch = true;
    assert!(options.repro_env().contains("CHAOS_SINGLE_LATCH=1"), "{}", options.repro_env());
}

/// A full cluster built single-latch serves the same session traffic as a
/// sharded one (smoke over the cluster-level knob rather than the chaos
/// harness).
#[test]
fn single_latch_cluster_commits_like_a_sharded_one() {
    let workload: Arc<dyn Workload> =
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 2_000, ..YcsbConfig::new(YcsbMix::A) }));
    for single_latch in [true, false] {
        let cluster = Cluster::builder(Arc::clone(&workload)).test_profile().single_latch(single_latch).build();
        let stats = cluster.run_for(Duration::from_millis(150));
        assert!(
            stats.merged.committed_total() > 50,
            "single_latch={single_latch} committed only {}",
            stats.merged.committed_total()
        );
    }
}

/// Property test (FastRng case harness): row handles resolved before an
/// insert-heavy churn keep reading and writing *their* row — map growth,
/// rehashing, unrelated removals and even removal of the handled row itself
/// never invalidate a handle.
#[test]
fn property_row_handles_survive_insert_heavy_churn() {
    use p4db::common::rand_util::FastRng;
    for case in 0u64..24 {
        let mut rng = FastRng::new(0x5EED_CA5E ^ case);
        let shards = [1usize, 2, 64][(case % 3) as usize];
        let table = Table::with_shards(TableId(0), shards);
        // A modest initial population, then pin handles to some of it.
        let initial = 64 + rng.gen_range(192);
        table.bulk_load((0..initial).map(|k| (k, p4db::common::Value::scalar(k))));
        let pinned: Vec<(u64, RowHandle)> =
            (0..32).map(|_| rng.gen_range(initial)).map(|k| (k, table.get(k).expect("loaded"))).collect();

        // Churn: thousands of fresh inserts (forcing shard-map growth and
        // rehashes), interleaved with removals — sometimes of pinned keys.
        let mut removed = std::collections::HashSet::new();
        for i in 0..4_000u64 {
            table.insert(initial + i, p4db::common::Value::scalar(i));
            if i % 97 == 0 {
                let victim = rng.gen_range(initial);
                if table.remove(victim) {
                    removed.insert(victim);
                }
            }
        }

        // Every pinned handle still reads its original row's value and
        // remains writable, reachable through the table or not.
        for (key, handle) in &pinned {
            let expected = if removed.contains(key) {
                // Unreachable via the table, but the handle is unaffected.
                assert!(table.get(*key).is_none(), "case {case}: removed key {key} still resolvable");
                *key
            } else {
                let live = table.get(*key).expect("still present");
                assert!(Arc::ptr_eq(&live, handle), "case {case}: handle for key {key} was displaced");
                *key
            };
            assert_eq!(handle.read().switch_word(), expected, "case {case}: handle for key {key} reads a foreign row");
            handle.write(p4db::common::Value::scalar(expected + 1));
            assert_eq!(handle.read().switch_word(), expected + 1);
            handle.write(p4db::common::Value::scalar(expected));
        }
        assert_eq!(table.len() as u64, initial + 4_000 - removed.len() as u64, "case {case}: row count drifted");
    }
}

/// Concurrent variant: readers hold handles while writer threads churn the
/// same table; all handle reads stay consistent with what was written
/// through them.
#[test]
fn property_row_handles_stay_valid_under_concurrent_churn() {
    let storage = Arc::new(NodeStorage::new(NodeId(0), [TableId(0)]));
    let table = storage.table(TableId(0)).unwrap();
    table.bulk_load((0..256u64).map(|k| (k, p4db::common::Value::scalar(1_000 + k))));
    let handles: Vec<(u64, RowHandle)> = (0..256u64).map(|k| (k, table.get(k).unwrap())).collect();

    let churners: Vec<_> = (0..4)
        .map(|t| {
            let storage = Arc::clone(&storage);
            std::thread::spawn(move || {
                let table = storage.table(TableId(0)).unwrap();
                for i in 0..5_000u64 {
                    let key = 1_000 + t * 10_000 + i;
                    table.insert(key, p4db::common::Value::scalar(key));
                    if i % 11 == 0 {
                        table.remove(key.saturating_sub(5));
                    }
                }
            })
        })
        .collect();

    // While the churn runs, every pinned handle keeps returning its row.
    for _ in 0..50 {
        for (key, handle) in &handles {
            assert_eq!(handle.read().switch_word(), 1_000 + key);
        }
    }
    for th in churners {
        th.join().unwrap();
    }
    for (key, handle) in &handles {
        assert_eq!(handle.read().switch_word(), 1_000 + key);
        assert!(table.get(*key).is_some(), "pre-churn keys must survive");
    }
}

/// The cumulative lock-wait statistic surfaces real WAIT_DIE waiting
/// through the cluster path (satellite: backoff + node stats).
#[test]
fn lock_wait_time_is_recorded_under_wait_die_contention() {
    use p4db::{CcScheme, SystemMode};
    let workload: Arc<dyn Workload> = Arc::new(SmallBank::new(SmallBankConfig {
        customers_per_node: 200,
        hot_customers_per_node: 4,
        ..SmallBankConfig::default()
    }));
    // NoSwitch keeps the hot accounts on the host lock tables, so WAIT_DIE
    // actually contends on them.
    let cluster =
        Cluster::builder(workload).test_profile().workers(4).mode(SystemMode::NoSwitch).cc(CcScheme::WaitDie).build();
    let _ = cluster.run_for(Duration::from_millis(250));
    let waits: u64 = cluster.shared().nodes.iter().map(|n| n.locks().wait_stats().waits).sum();
    let waited: u64 = cluster.shared().nodes.iter().map(|n| n.locks().wait_stats().total_wait_ns).sum();
    assert!(waits > 0, "a contended WAIT_DIE run must record waits");
    assert!(waited > 0, "recorded waits must accumulate wait time");
}
