//! Durability differential suite: segmented-binary vs text WAL arms, fuzzy
//! checkpoints racing live traffic, and crash-during-checkpoint fallback.
//!
//! Every scenario runs twice — once round-tripping the WALs through the
//! segmented binary codec (the default) and once through the line-oriented
//! text codec kept as the compatibility arm — and the two runs must produce
//! the same invariant verdict: clean, zero violations, node recovered, and
//! (for the torn-checkpoint drill) recovery fell back to the previous
//! complete generation. The `smoke_recovery_*` tests are the fixed-seed fast
//! subset that `ci.sh` runs as its recovery gate.

use p4db::chaos::{check, run_chaos, ChaosOptions, ChaosReport, ChaosWorkload, SemanticChecks};
use p4db::common::NodeId;
use p4db::storage::WalCodec;
use p4db::workloads::{SmallBank, SmallBankConfig, Workload};
use p4db::Cluster;
use std::sync::Arc;
use std::time::Duration;

/// Seeds per workload for the differential sweep (each seed runs both codec
/// arms, with faults enabled).
const SWEEP_SEEDS: std::ops::Range<u64> = 1..13;

/// The invariant verdict of one run, reduced to what must be codec-invariant.
/// (The runs themselves are not history-identical — threads race — so the
/// equivalence is over verdicts, not over states.)
#[derive(Debug, PartialEq)]
struct Verdict {
    clean: bool,
    violations: usize,
    crashed_node_recovered: bool,
    /// Torn-checkpoint drill only: recovery used the expected complete
    /// generation, skipping the torn one.
    fell_back: bool,
}

fn verdict(report: &ChaosReport) -> Verdict {
    Verdict {
        clean: report.is_clean(),
        violations: report.invariants.violations.len(),
        crashed_node_recovered: report.node_recovery.is_some(),
        fell_back: report.expected_checkpoint.is_some()
            && report.node_recovery.as_ref().is_some_and(|r| r.from_checkpoint == report.expected_checkpoint),
    }
}

/// One durability scenario: node crash with fuzzy checkpointing racing the
/// traffic waves; every third seed additionally tears the newest checkpoint
/// generation mid-write (the crash-during-checkpoint drill).
fn durability_options(workload: ChaosWorkload, seed: u64, text_wal: bool) -> ChaosOptions {
    let mut options = ChaosOptions::new(workload, seed);
    // Single-partition traffic: node recovery is unambiguous.
    options.distributed_prob = 0.0;
    options.crash_node = Some(NodeId(0));
    options.checkpoint_interval = Some(40);
    options.torn_checkpoint = seed.is_multiple_of(3);
    options.text_wal = text_wal;
    options
}

fn assert_clean(report: &ChaosReport) {
    assert!(report.is_clean(), "{}", report.failure_summary());
    assert!(report.committed > 0, "seed {} committed nothing", report.seed);
}

fn differential_sweep(workload: ChaosWorkload) {
    for seed in SWEEP_SEEDS {
        let binary = run_chaos(&durability_options(workload, seed, false)).expect("binary-arm run failed");
        let text = run_chaos(&durability_options(workload, seed, true)).expect("text-arm run failed");
        assert_clean(&binary);
        assert_clean(&text);
        assert_eq!(
            verdict(&binary),
            verdict(&text),
            "seed {seed}: the codec arms disagree\nbinary: {}\ntext: {}",
            binary.failure_summary(),
            text.failure_summary()
        );
        if seed.is_multiple_of(3) {
            for (arm, report) in [("binary", &binary), ("text", &text)] {
                assert!(
                    verdict(report).fell_back,
                    "seed {seed} ({arm}): torn-checkpoint drill did not fall back: {}",
                    report.failure_summary()
                );
            }
        }
    }
}

#[test]
fn durability_sweep_ycsb_binary_vs_text() {
    differential_sweep(ChaosWorkload::Ycsb);
}

#[test]
fn durability_sweep_smallbank_binary_vs_text() {
    differential_sweep(ChaosWorkload::SmallBank);
}

#[test]
fn durability_sweep_tpcc_binary_vs_text() {
    differential_sweep(ChaosWorkload::Tpcc);
}

// --- Fixed-seed smoke subset (the ci.sh recovery gate) ---------------------

fn smallbank_semantics() -> SemanticChecks {
    SemanticChecks::SmallBank {
        initial_balance: p4db::workloads::smallbank::INITIAL_BALANCE,
        max_amount: SmallBankConfig::default().max_amount,
    }
}

/// The recovery gate: on the same cluster, a genesis-replay restart and a
/// checkpoint+tail restart must both reconstruct the live state exactly, and
/// `p4db::chaos::invariants::check` must return the same (clean) verdict
/// after each — including its checkpoint+tail durability sub-check once a
/// complete generation exists. Runs both codec arms.
#[test]
fn smoke_recovery_checkpoint_tail_matches_genesis_verdict() {
    let workload: Arc<dyn Workload> =
        Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
    for codec in [WalCodec::Binary, WalCodec::Text] {
        let cluster = Cluster::builder(Arc::clone(&workload))
            .test_profile()
            .distributed_prob(0.0)
            .wal_codec(codec)
            .wal_segment_records(64)
            .build();
        let _ = cluster.run_for(Duration::from_millis(150));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));

        // Genesis-replay restart: no checkpoint exists yet.
        let genesis = cluster.crash_and_recover_node(NodeId(0)).unwrap();
        assert!(genesis.from_checkpoint.is_none(), "{codec:?}: nothing to checkpoint from yet");
        assert_eq!(genesis.tail_records, genesis.wal_records, "genesis replay reads the whole log");
        assert!(genesis.divergences.is_empty(), "{codec:?}: {:?}", genesis.divergences);
        assert_eq!(genesis.ambiguous, 0);
        let genesis_verdict = check(&cluster, smallbank_semantics());
        assert!(genesis_verdict.is_clean(), "{codec:?}: {:?}", genesis_verdict.violations);
        assert_eq!(genesis_verdict.checkpointed_nodes, 0);

        // Checkpoint, run more traffic, then a checkpoint+tail restart.
        let generation = cluster.checkpoint_node(NodeId(0)).unwrap();
        let _ = cluster.run_for(Duration::from_millis(100));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        let ckpt = cluster.crash_and_recover_node(NodeId(0)).unwrap();
        assert_eq!(ckpt.from_checkpoint, Some(generation), "{codec:?}: recovery must use the checkpoint");
        assert!(ckpt.checkpoint_rows > 0);
        assert!(ckpt.tail_records < ckpt.wal_records, "{codec:?}: the tail must be a strict suffix");
        assert!(ckpt.divergences.is_empty(), "{codec:?}: {:?}", ckpt.divergences);
        assert_eq!(ckpt.ambiguous, 0);
        assert!(ckpt.codec_error.is_none(), "{codec:?}: {:?}", ckpt.codec_error);

        // Same verdict under the invariant checker, now with its
        // checkpoint+tail sub-check active.
        let ckpt_verdict = check(&cluster, smallbank_semantics());
        assert!(ckpt_verdict.is_clean(), "{codec:?}: {:?}", ckpt_verdict.violations);
        assert_eq!(ckpt_verdict.is_clean(), genesis_verdict.is_clean(), "restart paths must agree");
        assert_eq!(ckpt_verdict.checkpointed_nodes, 1);
        assert!(ckpt_verdict.checkpoint_compared > 0, "the checkpoint sub-check must have compared rows");
    }
}

/// Fast fixed-seed crash-during-checkpoint smoke: the newest generation is
/// torn mid-write, recovery falls back to the previous complete one, and the
/// invariants stay green.
#[test]
fn smoke_recovery_torn_checkpoint_falls_back() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 7);
    options.distributed_prob = 0.0;
    options.txns_per_wave = 80;
    options.crash_node = Some(NodeId(0));
    options.checkpoint_interval = Some(40);
    options.torn_checkpoint = true;
    let report = run_chaos(&options).unwrap();
    assert_clean(&report);
    let recovery = report.node_recovery.as_ref().expect("node crash must have happened");
    assert!(recovery.from_checkpoint.is_some());
    assert_eq!(recovery.from_checkpoint, report.expected_checkpoint, "{}", report.failure_summary());
}

/// Fast fixed-seed differential smoke: one binary and one text run of the
/// fuzzy-checkpointing crash scenario must agree on the verdict.
#[test]
fn smoke_recovery_codec_arms_agree() {
    let binary = run_chaos(&durability_options(ChaosWorkload::SmallBank, 9, false)).unwrap();
    let text = run_chaos(&durability_options(ChaosWorkload::SmallBank, 9, true)).unwrap();
    assert_clean(&binary);
    assert_clean(&text);
    assert_eq!(verdict(&binary), verdict(&text));
    assert_eq!(binary.invariants.checkpointed_nodes, text.invariants.checkpointed_nodes);
}
