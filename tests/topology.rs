//! Differential topology suite: the multi-switch refactor must not change
//! the behaviour of the default single-switch topology, and multi-switch
//! clusters must reach the same invariant verdicts on the same seeded
//! traffic.
//!
//! `switches = 1` (the builder default) is byte-compatible with the
//! pre-refactor engine: one switch endpoint, one engine thread, the whole
//! hot set offloaded to switch 0 and the partition→switch assignment pass
//! degenerating to a single bucket (its shuffle seed XORs with the switch id,
//! which is 0). So every `switches=1` arm below reproduces the historical
//! behaviour the chaos suite was green on; the `switches=2` arm runs the
//! same seed with the hot set partitioned across two switch pipelines,
//! single-switch hot transactions routed to their owning switch and
//! cross-switch ones demoted to the host-coordinated fallback path.

use p4db::chaos::{run_chaos, ChaosOptions, ChaosReport, ChaosWorkload};

/// Seeds per workload for the differential sweep (12 seeds, matching the
/// chaos suite's faulty sweep and the batching differential suite).
const SEEDS: std::ops::Range<u64> = 1..13;

/// Runs one seeded scenario at a given switch count: one traffic wave, no
/// faults (the faulty multi-switch arm lives in the chaos suite), full
/// invariant checking.
fn run(workload: ChaosWorkload, seed: u64, switches: u16) -> ChaosReport {
    let mut options = ChaosOptions::new(workload, seed);
    options.switches = switches;
    options.waves = 1;
    options.txns_per_wave = 60;
    options.faults = None;
    run_chaos(&options).expect("chaos run failed to execute")
}

/// The differential assertion: both topologies of a seed must reach the
/// *same* invariant verdict — and since `switches=1` is the known-good
/// pre-refactor engine, that verdict must be clean.
fn assert_equivalent(workload: ChaosWorkload, seed: u64, one: &ChaosReport, multi: &ChaosReport, switches: u16) {
    assert_eq!(
        one.invariants.is_clean(),
        multi.invariants.is_clean(),
        "{workload:?} seed {seed}: verdicts diverge between switches=1 and switches={switches}\n1-switch: \
         {:?}\nmulti: {}",
        one.invariants.violations,
        multi.failure_summary(),
    );
    assert!(one.invariants.is_clean(), "{workload:?} seed {seed} switches=1: {}", one.failure_summary());
    assert!(multi.invariants.is_clean(), "{workload:?} seed {seed} switches={switches}: {}", multi.failure_summary());
    assert!(one.committed > 0 && multi.committed > 0, "{workload:?} seed {seed}: empty run");
    // Same closed-loop drivers, same seed, no faults: every generated
    // transaction terminates as committed or aborted in both topologies —
    // partitioning the hot set must not lose or invent work.
    assert_eq!(
        one.committed + one.aborted,
        multi.committed + multi.aborted,
        "{workload:?} seed {seed}: attempted-transaction counts diverge between topologies"
    );
}

fn differential_sweep(workload: ChaosWorkload) {
    for seed in SEEDS {
        let one = run(workload, seed, 1);
        let two = run(workload, seed, 2);
        assert_equivalent(workload, seed, &one, &two, 2);
    }
}

#[test]
fn topology_differential_ycsb() {
    differential_sweep(ChaosWorkload::Ycsb);
}

#[test]
fn topology_differential_smallbank() {
    differential_sweep(ChaosWorkload::SmallBank);
}

#[test]
fn topology_differential_tpcc() {
    differential_sweep(ChaosWorkload::Tpcc);
}

/// Spot check beyond two switches: a 4-switch topology still reaches clean
/// verdicts on a few seeds of each workload.
#[test]
fn topology_four_switches_is_clean() {
    for workload in [ChaosWorkload::Ycsb, ChaosWorkload::SmallBank, ChaosWorkload::Tpcc] {
        for seed in 1..4 {
            let report = run(workload, seed, 4);
            assert!(report.invariants.is_clean(), "{workload:?} seed {seed} switches=4: {}", report.failure_summary());
            assert!(report.committed > 0, "{workload:?} seed {seed} switches=4 committed nothing");
        }
    }
}

/// The repro line of a multi-switch scenario round-trips the switch count,
/// so a failing differential seed is reproducible with one command.
#[test]
fn topology_repro_env_names_the_switch_count() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 3);
    options.switches = 2;
    assert!(options.repro_env().contains("CHAOS_SWITCHES=2"), "{}", options.repro_env());
}
