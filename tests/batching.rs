//! Differential batching suite: the batched hot paths (fabric frames, switch
//! quantum execution, WAL group commit, executor pipelining) must be
//! *invariant-equivalent* to the unbatched ones — same serializability,
//! exactly-once and conservation verdicts from `p4db_chaos::invariants::check`
//! for the same seeded workload — and whole-frame faults (a dropped or
//! reordered reply frame loses/reorders every transaction it carries) must
//! never double-apply intents.
//!
//! `batch_size = 1` reproduces the pre-batching engine exactly, so every
//! `batch=1` arm below is the historical behaviour; the batched arm runs the
//! same seed at batch 4/16/64.

use p4db::chaos::{run_chaos, ChaosOptions, ChaosReport, ChaosWorkload, SemanticChecks, Violation};
use p4db::workloads::{SmallBank, SmallBankConfig, Workload};
use p4db::{Cluster, NodeId, TupleId};
use std::sync::Arc;
use std::time::Duration;

/// Seeds per workload for the differential sweep (12 seeds, as many as the
/// chaos suite's faulty sweep).
const SEEDS: std::ops::Range<u64> = 1..13;

/// The batched arm's batch size cycles through {4, 16, 64} across seeds, so
/// the sweep covers every size at every workload.
fn batch_for(seed: u64) -> u16 {
    [4u16, 16, 64][(seed % 3) as usize]
}

/// Runs one seeded scenario at a given batch size: one traffic wave, no
/// faults (the fault arm has its own tests below), full invariant checking.
fn run(workload: ChaosWorkload, seed: u64, batch: u16) -> ChaosReport {
    let mut options = ChaosOptions::new(workload, seed);
    options.batch = batch;
    options.waves = 1;
    options.txns_per_wave = 60;
    options.faults = None;
    run_chaos(&options).expect("chaos run failed to execute")
}

/// The differential assertion: both arms of a seed must reach the *same*
/// invariant verdict — and since batch=1 is the known-good pre-batching
/// engine, that verdict must be clean.
fn assert_equivalent(workload: ChaosWorkload, seed: u64, unbatched: &ChaosReport, batched: &ChaosReport, batch: u16) {
    assert_eq!(
        unbatched.invariants.is_clean(),
        batched.invariants.is_clean(),
        "{workload:?} seed {seed}: verdicts diverge between batch=1 and batch={batch}\nunbatched: {:?}\nbatched: {}",
        unbatched.invariants.violations,
        batched.failure_summary(),
    );
    assert!(unbatched.invariants.is_clean(), "{workload:?} seed {seed} batch=1: {}", unbatched.failure_summary());
    assert!(batched.invariants.is_clean(), "{workload:?} seed {seed} batch={batch}: {}", batched.failure_summary());
    assert!(unbatched.committed > 0 && batched.committed > 0, "{workload:?} seed {seed}: empty run");
    // Same closed-loop drivers, same seed, no faults: both arms commit the
    // same number of transactions — batching must not lose or invent work.
    assert_eq!(
        unbatched.committed + unbatched.aborted,
        batched.committed + batched.aborted,
        "{workload:?} seed {seed}: attempted-transaction counts diverge"
    );
}

fn differential_sweep(workload: ChaosWorkload) {
    for seed in SEEDS {
        let batch = batch_for(seed);
        let unbatched = run(workload, seed, 1);
        let batched = run(workload, seed, batch);
        assert_equivalent(workload, seed, &unbatched, &batched, batch);
    }
}

#[test]
fn differential_sweep_ycsb() {
    differential_sweep(ChaosWorkload::Ycsb);
}

#[test]
fn differential_sweep_smallbank() {
    differential_sweep(ChaosWorkload::SmallBank);
}

#[test]
fn differential_sweep_tpcc() {
    differential_sweep(ChaosWorkload::Tpcc);
}

/// Faults enabled at batch_size=16: drops, delays and reorders now hit whole
/// frames (an entire reply frame can vanish, putting every transaction it
/// carried in doubt), and the exactly-once/serializability/conservation
/// invariants must still hold — lost frames degrade, never double-apply.
#[test]
fn batched_chaos_with_faults_never_double_applies() {
    for workload in [ChaosWorkload::Ycsb, ChaosWorkload::SmallBank, ChaosWorkload::Tpcc] {
        for seed in 1..5 {
            let mut options = ChaosOptions::new(workload, seed);
            options.batch = 16;
            let report = run_chaos(&options).expect("chaos run failed to execute");
            assert!(report.is_clean(), "{}", report.failure_summary());
            assert!(report.committed > 0, "{workload:?} seed {seed} committed nothing");
            assert!(report.faults_injected > 0, "{workload:?} seed {seed}: the seeded plan should have fired");
        }
    }
}

/// The repro line of a batched scenario round-trips the batch size, so a
/// failing differential seed is reproducible with one command.
#[test]
fn batched_repro_env_names_the_batch_size() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 3);
    options.batch = 64;
    assert!(options.repro_env().contains("CHAOS_BATCH=64"), "{}", options.repro_env());
}

/// Negative control under batching: a deliberately re-transmitted intent
/// must still be caught by the exactly-once checker when the switch executes
/// and replies in frames — batching must not hide double-applies from the
/// audit log.
#[test]
fn double_apply_is_still_caught_at_batch_16() {
    let workload: Arc<dyn Workload> =
        Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
    let cluster = Cluster::builder(workload).test_profile().batch_size(16).build();

    let mut session = cluster.session(NodeId(0)).unwrap();
    let hot = TupleId::new(p4db::workloads::smallbank::CHECKING, 1);
    for i in 0..5 {
        let outcome = session.execute(&p4db::txn::Txn::new().add(hot, 1 + i)).unwrap();
        assert!(outcome.gid.is_some());
    }
    assert!(cluster.quiesce_switch(Duration::from_secs(5)));
    let clean = p4db::chaos::check(&cluster, SemanticChecks::None);
    assert!(clean.is_clean(), "pre-injection state must be clean: {:?}", clean.violations);

    let txn = cluster.shared().nodes[0]
        .wal()
        .records()
        .iter()
        .rev()
        .find_map(|r| match r {
            p4db::storage::LogRecord::SwitchIntent { txn, .. } => Some(*txn),
            _ => None,
        })
        .expect("hot transactions must have logged intents");
    p4db::chaos::resend_logged_intent(&cluster, txn).unwrap();
    assert!(cluster.quiesce_switch(Duration::from_secs(5)));

    let report = p4db::chaos::check(&cluster, SemanticChecks::None);
    assert!(
        report.violations.iter().any(|v| matches!(v, Violation::DoubleExecution { times: 2, .. })),
        "expected a DoubleExecution violation under batching, got {:?}",
        report.violations
    );
}
