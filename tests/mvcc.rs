//! Differential MVCC suite: the lock-free snapshot read path must be
//! *invariant-equivalent* to the locking engine — same serializability,
//! exactly-once and conservation verdicts from `p4db_chaos::invariants::check`
//! for the *same seeded schedule*, with and without message faults.
//!
//! Both arms of every seed draw identical transaction schedules (the
//! read-only conversion costs one rng draw in each arm); the only difference
//! is the `read_only` marker that routes eligible transactions onto the
//! snapshot path instead of 2PL + 2PC. The locking arm is the known-good
//! baseline, so both verdicts must also be clean.

use p4db::chaos::invariants::{self, SemanticChecks, Violation};
use p4db::chaos::{run_chaos, ChaosOptions, ChaosReport, ChaosWorkload};
use p4db::common::rand_util::FastRng;
use p4db::common::{SwitchId, Value};
use p4db::storage::{MvccState, Table};
use p4db::workloads::{Workload, Ycsb, YcsbConfig, YcsbMix};
use p4db::{Cluster, NodeId, SystemMode, TableId, TupleId, Txn};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Seeds per workload for the differential sweep (12 seeds, matching the
/// sharding and chaos suites).
const SEEDS: std::ops::Range<u64> = 1..13;

fn t(key: u64) -> TupleId {
    TupleId::new(TableId(0), key)
}

/// Runs one seeded scenario on one arm: half of all generated transactions
/// are converted to all-reads in *both* arms; `snapshot_arm` additionally
/// marks them read-only so eligible ones take the lock-free snapshot path.
fn run(workload: ChaosWorkload, seed: u64, snapshot_arm: bool, faults: bool) -> ChaosReport {
    let mut options = ChaosOptions::new(workload, seed);
    if workload == ChaosWorkload::Tpcc {
        // In P4DB mode no TPC-C transaction is snapshot-eligible (NewOrder
        // carries inserts, Payment touches the offloaded warehouse row), so
        // the TPC-C sweep runs host-only — same arms, and the converted
        // Payments actually reach the snapshot path.
        options.mode = SystemMode::NoSwitch;
    }
    options.read_only_frac = 0.5;
    options.snapshot_arm = snapshot_arm;
    options.waves = 1;
    options.txns_per_wave = 60;
    if !faults {
        options.faults = None;
    }
    run_chaos(&options).expect("chaos run failed to execute")
}

/// The differential assertion: both arms of a seed must reach the *same*
/// invariant verdict — and since the locking arm is the known-good engine,
/// that verdict must be clean.
fn assert_equivalent(workload: ChaosWorkload, seed: u64, faults: bool, locking: &ChaosReport, snapshot: &ChaosReport) {
    assert_eq!(
        locking.invariants.is_clean(),
        snapshot.invariants.is_clean(),
        "{workload:?} seed {seed} faults={faults}: verdicts diverge between locking and snapshot arms\nlocking: \
         {:?}\nsnapshot: {}",
        locking.invariants.violations,
        snapshot.failure_summary(),
    );
    assert!(locking.invariants.is_clean(), "{workload:?} seed {seed} locking arm: {}", locking.failure_summary());
    assert!(snapshot.invariants.is_clean(), "{workload:?} seed {seed} snapshot arm: {}", snapshot.failure_summary());
    assert!(locking.committed > 0 && snapshot.committed > 0, "{workload:?} seed {seed}: empty run");
    assert_eq!(locking.snapshot_reads, 0, "{workload:?} seed {seed}: locking arm took the snapshot path");
    if !faults {
        // Same closed-loop drivers, same seed, no faults: both arms attempt
        // the same transactions — the snapshot path must not lose or invent
        // work.
        assert_eq!(
            locking.committed + locking.aborted,
            snapshot.committed + snapshot.aborted,
            "{workload:?} seed {seed}: attempted-transaction counts diverge"
        );
    }
}

fn differential_sweep(workload: ChaosWorkload) {
    let mut snapshot_reads = 0u64;
    let mut version_entries = 0usize;
    for seed in SEEDS {
        let faults = seed % 3 == 0;
        let locking = run(workload, seed, false, faults);
        let snapshot = run(workload, seed, true, faults);
        assert_equivalent(workload, seed, faults, &locking, &snapshot);
        snapshot_reads += snapshot.snapshot_reads;
        version_entries += snapshot.invariants.version_entries_checked;
    }
    // Anti-vacuity: the sweep must actually have exercised the snapshot
    // path and the version-chain checker, or the equivalence is trivial.
    assert!(snapshot_reads > 0, "{workload:?}: no transaction ever took the snapshot path");
    assert!(version_entries > 0, "{workload:?}: the checker never verified a version-chain entry");
}

#[test]
fn differential_sweep_ycsb() {
    differential_sweep(ChaosWorkload::Ycsb);
}

#[test]
fn differential_sweep_smallbank() {
    differential_sweep(ChaosWorkload::SmallBank);
}

#[test]
fn differential_sweep_tpcc() {
    differential_sweep(ChaosWorkload::Tpcc);
}

/// The repro string must round-trip the snapshot knobs, or a failing seed
/// from this suite cannot be replayed.
#[test]
fn repro_env_includes_snapshot_knobs() {
    let mut options = ChaosOptions::new(ChaosWorkload::Ycsb, 7);
    options.read_only_frac = 0.5;
    options.snapshot_arm = true;
    let env = options.repro_env();
    assert!(env.contains("CHAOS_RO_FRAC=0.5"), "missing read-only fraction in {env:?}");
    assert!(env.contains("CHAOS_SNAPSHOT=1"), "missing snapshot arm in {env:?}");
    let legacy = ChaosOptions::new(ChaosWorkload::Ycsb, 7).repro_env();
    assert!(!legacy.contains("CHAOS_RO_FRAC"), "default options must not emit the knob: {legacy:?}");
}

/// Snapshot traffic through full crash chaos: switch crash + WAL-driven
/// recovery (with and without re-offload) and a node crash/recovery, all
/// with half the schedule converted to snapshot reads. The verdict must
/// stay clean and the chains must actually be checked.
#[test]
fn snapshot_arm_survives_switch_and_node_recovery() {
    for seed in [3u64, 10] {
        let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, seed);
        options.read_only_frac = 0.5;
        options.snapshot_arm = true;
        options.crash_switch = true;
        options.reoffload = seed % 2 == 0;
        options.crash_node = Some(NodeId(0));
        options.distributed_prob = 0.0;
        options.faults = None;
        options.waves = 2;
        options.txns_per_wave = 60;
        let report = run_chaos(&options).expect("chaos run failed to execute");
        assert!(report.is_clean(), "seed {seed}: {}", report.failure_summary());
        assert!(report.committed > 0, "seed {seed}: empty run");
        assert!(report.invariants.version_entries_checked > 0, "seed {seed}: no version chains verified");
    }
}

fn ycsb_cluster() -> Cluster {
    let workload: Arc<dyn Workload> =
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 1_000, ..YcsbConfig::new(YcsbMix::A) }));
    Cluster::builder(workload).test_profile().build()
}

/// Live race: snapshot readers keep reading *during* repeated switch
/// crash/recovery cycles. The snapshot path never touches the switch (cold
/// tuples only), so it legitimately continues while the switch is down —
/// and must keep returning the committed values.
#[test]
fn snapshot_readers_race_switch_recovery() {
    let mut cluster = ycsb_cluster();
    let mut setup = cluster.session(NodeId(0)).expect("session");
    // Keys >= hot_keys_per_node (50) are cold: resident on the hosts, never
    // offloaded, visible to the snapshot path in P4DB mode.
    for k in 200..216u64 {
        setup.execute(&Txn::new().write(t(k), k * 10)).expect("seed write");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let reads_done = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let mut session = cluster.session(NodeId(r)).expect("session");
            let stop = Arc::clone(&stop);
            let reads_done = Arc::clone(&reads_done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let txn = Txn::new().read(t(200)).read(t(207)).read(t(215));
                    let outcome = session.read_only(&txn).expect("snapshot read");
                    assert_eq!(outcome.results, vec![2_000, 2_070, 2_150]);
                    assert!(outcome.snapshot.is_some(), "read-only txn fell off the snapshot path");
                    reads += 1;
                    reads_done.fetch_add(1, Ordering::Relaxed);
                }
                reads
            })
        })
        .collect();

    // Don't let the recovery rounds win the scheduler race outright: on a
    // loaded single-core runner the main thread can finish all three rounds
    // before a reader thread ever runs. Wait for the readers to be live
    // first, so every round genuinely overlaps snapshot traffic.
    while reads_done.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }

    for round in 0..3u64 {
        let report = cluster
            .crash_and_recover_switch_at(SwitchId(0), (round % 2 == 0).then_some(round + 7))
            .expect("switch recovery");
        assert!(report.unexplained_divergences.is_empty(), "round {round}: {:?}", report.unexplained_divergences);
    }

    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    assert!(total > 0, "no snapshot read ever raced the recovery");
    let report = invariants::check(&cluster, SemanticChecks::None);
    assert!(report.is_clean(), "{:?}", report.violations);
}

/// The headline acceptance bar: read-only transactions acquire **zero**
/// locks. Every lock-table acquisition and wait counter across the cluster
/// must be byte-identical before and after a batch of snapshot reads.
#[test]
fn read_only_transactions_acquire_zero_locks() {
    let workload: Arc<dyn Workload> =
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 1_000, ..YcsbConfig::new(YcsbMix::A) }));
    let cluster = Cluster::builder(workload).test_profile().mode(SystemMode::NoSwitch).build();
    let mut session = cluster.session(NodeId(0)).expect("session");
    // Warm-up writes (these do lock) on keys homed on both nodes.
    for k in [60u64, 61, 1_060, 1_061] {
        session.execute(&Txn::new().write(t(k), k + 1)).expect("seed write");
    }

    let acquisitions =
        |cluster: &Cluster| -> u64 { cluster.shared().nodes.iter().map(|n| n.locks().acquisition_count()).sum() };
    let waits =
        |cluster: &Cluster| -> u64 { cluster.shared().nodes.iter().map(|n| n.locks().wait_stats().waits).sum() };
    let before_acq = acquisitions(&cluster);
    let before_waits = waits(&cluster);
    assert!(before_acq > 0, "warm-up writes must have locked");

    let mut reader = cluster.session(NodeId(0)).expect("session");
    const N: u64 = 40;
    for _ in 0..N {
        let txn = Txn::new().read(t(60)).read(t(1_061));
        let outcome = reader.read_only(&txn).expect("snapshot read");
        assert_eq!(outcome.results, vec![61, 1_062]);
        assert!(outcome.snapshot.is_some(), "read-only txn fell back to the locking path");
    }

    assert_eq!(acquisitions(&cluster), before_acq, "a read-only transaction acquired a lock");
    assert_eq!(waits(&cluster), before_waits, "a read-only transaction waited on a lock");
    assert_eq!(reader.stats().snapshot_reads, N, "snapshot-path accounting lost transactions");
}

/// GC safety property, storage-level: with an active reader announced in a
/// snapshot slot, trimming at the low-watermark must never reclaim a
/// version that reader can still see — `read_at(snap)` always returns the
/// newest committed value at or below the snapshot, across 16 seeded
/// interleavings of commits, reads and collections.
#[test]
fn property_gc_never_reclaims_visible_versions() {
    for case in 0u64..16 {
        let mut rng = FastRng::new(0x06C0_FFEE ^ case);
        let mvcc = MvccState::new(4);
        let table = Table::with_shards(TableId(0), 4);
        table.bulk_load([(0u64, Value::scalar(0))]);
        let row = table.get(0).expect("loaded row");
        let slot = mvcc.snapshots.register();
        // (commit ts, value) history; ts 0 is the loaded base image.
        let mut history: Vec<(u64, u64)> = vec![(0, 0)];
        for step in 1..=200u64 {
            let ts = mvcc.clock.reserve();
            row.install_version(ts, step);
            mvcc.clock.publish(ts);
            history.push((ts, step));
            if rng.gen_range(4) == 0 {
                // Reader active while a collection runs underneath it.
                let snap = slot.begin(&mvcc.clock);
                let watermark = mvcc.low_watermark();
                assert!(watermark <= snap, "case {case} step {step}: watermark overtook an active snapshot");
                row.trim_versions_below(watermark);
                let expect = history.iter().rev().find(|&&(ts, _)| ts <= snap).expect("grounded history").1;
                assert_eq!(row.read_at(snap), Some(expect), "case {case} step {step}: trimmed a visible version");
                slot.end();
            } else {
                // Idle-reader collection: watermark rides the stable clock.
                row.trim_versions_below(mvcc.low_watermark());
            }
            let (entries, _) = row.version_chain();
            assert!(entries.len() <= history.len(), "case {case} step {step}: chain grew past history");
        }
    }
}

/// GC safety under real concurrency: one writer commits increments while
/// readers snapshot-read the same tuple and a collector thread sweeps
/// version chains. Each reader's observed values must be non-decreasing —
/// an over-eager trim would surface as a travel back in time to an older
/// version (or the stale base image).
#[test]
fn concurrent_snapshot_readers_observe_monotonic_values() {
    let workload: Arc<dyn Workload> =
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 1_000, ..YcsbConfig::new(YcsbMix::A) }));
    // A tiny version cap keeps commit-time inline trims constantly active.
    let cluster = Arc::new(Cluster::builder(workload).test_profile().mode(SystemMode::NoSwitch).version_cap(2).build());
    let mut writer = cluster.session(NodeId(0)).expect("session");
    writer.execute(&Txn::new().write(t(300), 0)).expect("seed write");

    let done = Arc::new(AtomicBool::new(false));
    let collector = {
        let cluster = Arc::clone(&cluster);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut reclaimed = 0usize;
            while !done.load(Ordering::Relaxed) {
                reclaimed += cluster.collect_versions();
                std::thread::yield_now();
            }
            reclaimed
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let mut session = cluster.session(NodeId(0)).expect("session");
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let outcome = session.read_only(&Txn::new().read(t(300))).expect("snapshot read");
                    let value = outcome.results[0];
                    assert!(value >= last, "snapshot read went back in time: {last} -> {value}");
                    last = value;
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for v in 1..=400u64 {
        writer.execute(&Txn::new().write(t(300), v)).expect("increment");
    }
    done.store(true, Ordering::Relaxed);
    let reads: u64 = readers.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    collector.join().expect("collector panicked");
    assert!(reads > 0, "no snapshot read raced the writer");
    // The final committed value is visible to a fresh snapshot.
    let mut session = cluster.session(NodeId(1)).expect("session");
    let outcome = session.read_only(&Txn::new().read(t(300))).expect("snapshot read");
    assert_eq!(outcome.results[0], 400);
}

/// Checker-alive negative test: an out-of-history version doctored into a
/// row's chain must be flagged as a `PhantomVersion` — proving the
/// version-chain invariant is actually enforced, not vacuously clean.
#[test]
fn doctored_version_chain_is_flagged() {
    let cluster = ycsb_cluster();
    let mut session = cluster.session(NodeId(0)).expect("session");
    session.execute(&Txn::new().write(t(400), 44)).expect("seed write");
    assert!(cluster.quiesce_switch(Duration::from_secs(10)), "switch failed to quiesce");

    let clean = invariants::check(&cluster, SemanticChecks::None);
    assert!(clean.is_clean(), "pre-doctor report must be clean: {:?}", clean.violations);
    assert!(clean.version_entries_checked > 0, "the committed write left no chain entry to verify");

    // Doctor: install a version no committed transaction ever wrote.
    let home = cluster.partition_map().home(t(400)).expect("homed tuple");
    let row = cluster.shared().node(home).peek(t(400)).expect("declared table").expect("row exists");
    row.install_version(1 << 40, 999_999);

    let doctored = invariants::check(&cluster, SemanticChecks::None);
    assert!(
        doctored.violations.iter().any(|v| matches!(v, Violation::PhantomVersion { tuple, .. } if *tuple == t(400))),
        "the doctored version went undetected: {:?}",
        doctored.violations
    );
}
