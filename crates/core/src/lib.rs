//! # p4db-core
//!
//! Cluster assembly and the experiment driver: builds the full system of the
//! paper's evaluation (nodes + switch + hot-set offload + worker threads) for
//! one configuration and runs fixed-duration measurements, producing the data
//! points behind every figure in `EXPERIMENTS.md`.

pub mod cluster;
pub mod report;

pub use cluster::{Cluster, ClusterConfig};
pub use report::{fmt_speedup, fmt_tps, speedup, FigureTable};
