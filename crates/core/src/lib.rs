//! # p4db-core
//!
//! Cluster assembly and the client/driver layer: builds the full system of
//! the paper's evaluation (nodes + switch + hot-set offload + executor pool)
//! for one configuration, serves ad-hoc transactions through [`Session`]s,
//! and runs fixed-duration closed-loop measurements on top of the same
//! session API, producing the data points behind every figure in
//! `EXPERIMENTS.md`.

pub mod builder;
pub mod cluster;
pub mod report;
pub mod session;

pub use builder::ClusterBuilder;
pub use cluster::{Cluster, ClusterConfig, NodeRecoveryReport, SupervisorReport, SwitchEpoch, SwitchRecoveryReport};
pub use p4db_txn::{BreakerConfig, BreakerState};
pub use report::{fmt_class_mix, fmt_speedup, fmt_tps, speedup, BenchPoint, FigureTable};
pub use session::{Pending, ResolverReport, Session, DEFAULT_MAX_ATTEMPTS};
