//! Cluster assembly and the experiment driver.
//!
//! A [`Cluster`] is the full system of the paper's evaluation: `n` database
//! nodes (each with its partition, lock table and WAL), the programmable
//! switch (simulator), the rack fabric with the ½-RTT latency model, the
//! offloaded hot set with its declustered layout, and the per-node executor
//! pool that runs submitted transactions. The cluster is a *database first*:
//! any code can open a [`Session`] and execute ad-hoc
//! transactions; [`Cluster::run_for`] is merely the built-in closed-loop
//! client that drives the workload generators through the same session API
//! to produce one data point of one figure.

use crate::session::{Session, SubmissionPool};
use p4db_common::rand_util::FastRng;
use p4db_common::stats::{RunStats, WorkerStats};
use p4db_common::{CcScheme, Error, LatencyConfig, NodeId, Result, SystemMode, TupleId};
use p4db_layout::{DataLayout, LayoutPlanner, LayoutStrategy};
use p4db_net::{Fabric, LatencyModel};
use p4db_storage::NodeStorage;
use p4db_switch::{start_switch, ControlPlane, RegisterMemory, SwitchConfig, SwitchHandle, SwitchStatsSnapshot};
use p4db_txn::{EngineConfig, EngineShared, HotSetIndex};
use p4db_workloads::{PartitionMap, Workload, WorkloadCtx};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything needed to build a cluster for one experiment configuration.
///
/// This is the *resolved* form that [`crate::ClusterBuilder`] produces; the
/// benchmark harness still constructs it directly for its sweep loops.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    pub num_nodes: u16,
    pub workers_per_node: u16,
    pub mode: SystemMode,
    pub cc: CcScheme,
    pub latency: LatencyConfig,
    pub switch: SwitchConfig,
    pub layout: LayoutStrategy,
    /// Fraction of generated transactions that are distributed.
    pub distributed_prob: f64,
    /// Chiller-style contention-centric host execution (Fig 18b only).
    pub chiller: bool,
    /// Cap on how many hot tuples are offloaded (None = switch capacity).
    /// Used by the Fig 17 capacity experiment.
    pub offload_limit: Option<usize>,
    /// RNG seed (workers derive their own seeds from it).
    pub seed: u64,
}

impl ClusterConfig {
    /// A small default cluster: the paper's 8×8–20 configuration scaled down
    /// so it can be driven by the slow-motion latency profile on machines
    /// with few cores (see `LatencyConfig::bench_profile`).
    pub fn new(mode: SystemMode, cc: CcScheme) -> Self {
        ClusterConfig {
            num_nodes: 4,
            workers_per_node: 4,
            mode,
            cc,
            latency: LatencyConfig::bench_profile(),
            switch: SwitchConfig::tofino_defaults(),
            layout: LayoutStrategy::Declustered,
            distributed_prob: 0.2,
            chiller: false,
            offload_limit: None,
            seed: 42,
        }
    }

    /// Fast functional-test profile: tiny latencies, tiny switch.
    pub fn test_profile(mode: SystemMode, cc: CcScheme) -> Self {
        ClusterConfig {
            num_nodes: 2,
            workers_per_node: 2,
            latency: LatencyConfig::zero(),
            switch: SwitchConfig::tiny(),
            ..Self::new(mode, cc)
        }
    }
}

/// A fully assembled cluster, ready to serve sessions and run measurements.
pub struct Cluster {
    config: ClusterConfig,
    workload: Arc<dyn Workload>,
    shared: Arc<EngineShared>,
    partition_map: PartitionMap,
    /// Offload-time initial values of the full hot set, captured once at
    /// build time (recovery reads this repeatedly).
    offload_snapshot: HashMap<TupleId, u64>,
    /// Declared before `switch` so the executors drain and stop while the
    /// switch is still alive (struct fields drop in declaration order).
    pool: SubmissionPool,
    switch: SwitchHandle,
    control_plane: ControlPlane,
    layout: DataLayout,
    offloaded: usize,
    hot_total: usize,
}

impl Cluster {
    /// Starts a fluent [`crate::ClusterBuilder`] for this workload.
    pub fn builder(workload: Arc<dyn Workload>) -> crate::ClusterBuilder {
        crate::ClusterBuilder::new(workload)
    }

    /// Builds the cluster: creates and loads every node's partition, detects
    /// and offloads the hot set under the configured layout strategy, starts
    /// the switch, wires up the engine and spawns the submission pool.
    ///
    /// # Panics
    /// Panics on an invalid configuration; see [`Cluster::try_build`] for
    /// the error-reporting variant.
    pub fn build(config: ClusterConfig, workload: Arc<dyn Workload>) -> Self {
        Self::try_build(config, workload).expect("failed to build cluster")
    }

    /// Builds the cluster, reporting invalid configurations and worker-id
    /// exhaustion as structured errors instead of panicking.
    pub fn try_build(config: ClusterConfig, workload: Arc<dyn Workload>) -> Result<Self> {
        if config.num_nodes == 0 || config.workers_per_node == 0 {
            return Err(Error::InvalidConfig("cluster needs nodes and workers".into()));
        }
        config.switch.validate().map_err(Error::InvalidConfig)?;

        // --- Host storage ----------------------------------------------------
        let nodes: Vec<Arc<NodeStorage>> = (0..config.num_nodes)
            .map(|n| {
                let storage = NodeStorage::new(NodeId(n), workload.tables());
                workload.load_node(&storage, config.num_nodes);
                Arc::new(storage)
            })
            .collect();

        // --- Hot set detection + declustered layout --------------------------
        let mut rng = FastRng::new(config.seed ^ 0xFEED);
        let hot_tuples = workload.hot_tuples(config.num_nodes);
        let hot_total = hot_tuples.len();
        let offload_snapshot: HashMap<TupleId, u64> = hot_tuples.iter().map(|h| (h.tuple, h.initial)).collect();
        let traces = workload.layout_traces(config.num_nodes, &mut rng);
        let planner =
            LayoutPlanner::new(config.switch.num_stages, config.switch.arrays_per_stage, config.switch.slots_per_array);
        // Very large hot sets (Fig 17) skip graph construction.
        let strategy = if matches!(config.layout, LayoutStrategy::Declustered) && hot_tuples.len() > 20_000 {
            LayoutStrategy::Hashed
        } else {
            config.layout
        };
        let offload_candidates: Vec<TupleId> = hot_tuples
            .iter()
            .map(|h| h.tuple)
            .take(config.offload_limit.unwrap_or(usize::MAX).min(config.switch.total_slots() as usize))
            .collect();
        let layout = planner.plan(&offload_candidates, &traces, strategy);

        // --- Switch ----------------------------------------------------------
        let memory = Arc::new(RegisterMemory::new(config.switch));
        let mut control_plane = ControlPlane::new(config.switch, Arc::clone(&memory));
        let mut offloaded = 0usize;
        if config.mode == SystemMode::P4db {
            for hot in hot_tuples.iter().take(offload_candidates.len()) {
                let Some(at) = layout.get(hot.tuple) else { continue };
                if control_plane.offload_into(hot.tuple, at.stage, at.array, hot.byte_width, hot.initial).is_ok() {
                    offloaded += 1;
                }
            }
        }

        let latency = LatencyModel::new(config.latency);
        let fabric = Fabric::new(latency.clone());
        let switch = start_switch(config.switch, memory, fabric.clone());

        // --- Engine ----------------------------------------------------------
        let hot_index = match config.mode {
            SystemMode::P4db => HotSetIndex::from_control_plane(&control_plane),
            // The LM-Switch and Chiller baselines need hot-tuple *identity*
            // even though the data stays on the nodes.
            SystemMode::LmSwitch | SystemMode::NoSwitch => HotSetIndex::from_tuples(hot_tuples.iter().map(|h| h.tuple)),
        };
        let engine_config =
            EngineConfig { chiller: config.chiller, ..EngineConfig::new(config.mode, config.cc, config.switch) };
        let shared =
            Arc::new(EngineShared { nodes, latency, fabric, hot_index: Arc::new(hot_index), config: engine_config });

        // --- Submission pool --------------------------------------------------
        let pool = SubmissionPool::spawn(&shared, &config)?;
        let partition_map = PartitionMap::new(Arc::clone(&workload), config.num_nodes);

        Ok(Cluster {
            config,
            workload,
            shared,
            partition_map,
            offload_snapshot,
            pool,
            switch,
            control_plane,
            layout,
            offloaded,
            hot_total,
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn shared(&self) -> &Arc<EngineShared> {
        &self.shared
    }

    pub fn workload_name(&self) -> String {
        self.workload.name()
    }

    /// The workload's partitioning scheme bound to this cluster's size, used
    /// to resolve [`p4db_txn::Txn`] builders into placed requests.
    pub fn partition_map(&self) -> PartitionMap {
        self.partition_map.clone()
    }

    /// Opens a client session coordinated by `node`. Sessions are cheap and
    /// independent; open as many as needed and move them across threads.
    pub fn session(&self, node: NodeId) -> Result<Session> {
        let submit = self.pool.queue(node).ok_or(Error::UnknownNode(node))?.clone();
        Ok(Session::new(node, submit, self.partition_map.clone(), Arc::clone(&self.shared)))
    }

    /// Number of hot tuples actually offloaded to the switch (may be smaller
    /// than the hot set when the switch capacity is exceeded, Fig 17).
    pub fn offloaded_tuples(&self) -> usize {
        self.offloaded
    }

    /// Size of the workload-defined hot set.
    pub fn hot_set_size(&self) -> usize {
        self.hot_total
    }

    /// The planned data layout (for layout-quality reporting).
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// Data-plane statistics of the switch.
    pub fn switch_stats(&self) -> SwitchStatsSnapshot {
        self.switch.stats()
    }

    /// The switch control plane (recovery experiments and tests).
    pub fn control_plane(&self) -> &ControlPlane {
        &self.control_plane
    }

    /// Current switch-side value of an offloaded tuple.
    pub fn switch_value(&self, tuple: TupleId) -> Option<u64> {
        self.control_plane.read_tuple(tuple)
    }

    /// Offload-time initial values of the hot set, as needed by
    /// [`p4db_storage::recover_switch_state`]. Captured once at build time.
    pub fn offload_snapshot(&self) -> &HashMap<TupleId, u64> {
        &self.offload_snapshot
    }

    /// Runs the workload generators closed-loop for `duration` and returns
    /// the merged statistics. Each node contributes `workers_per_node` driver
    /// threads, each owning a [`Session`] — the measurement exercises exactly
    /// the code path ad-hoc clients use. Can be called repeatedly (data is
    /// *not* reloaded between calls).
    pub fn run_for(&self, duration: Duration) -> RunStats {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for node in 0..self.config.num_nodes {
            for wid in 0..self.config.workers_per_node {
                let mut session = self.session(NodeId(node)).expect("driver node exists");
                // The stop signal doubles as the retry-loop cancellation so
                // an aborting transaction cannot drag the measurement past
                // its window.
                session.set_cancel_flag(Arc::clone(&stop));
                let workload = Arc::clone(&self.workload);
                let stop = Arc::clone(&stop);
                let config = self.config.clone();
                let seed =
                    config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((node as u64) << 20 | wid as u64);
                handles.push(std::thread::spawn(move || {
                    let ctx = WorkloadCtx::new(config.num_nodes, NodeId(node), config.distributed_prob);
                    let mut rng = FastRng::new(seed);
                    while !stop.load(Ordering::Relaxed) {
                        let req = workload.generate(&ctx, &mut rng);
                        // A transaction that exhausts its retry budget (or a
                        // cluster shutting down) just moves the closed loop
                        // on to the next generated request; the aborts are
                        // already in the session's statistics. A *rejected*
                        // request, however, is a generator bug — fail loudly
                        // instead of silently skewing the workload mix.
                        if let Err(e) = session.execute_request(&req) {
                            assert!(
                                !matches!(e, Error::InvalidTxn(_) | Error::UnknownNode(_)),
                                "workload generator produced an invalid transaction: {e}"
                            );
                        }
                    }
                    session.take_stats()
                }));
            }
        }

        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        let worker_stats: Vec<WorkerStats> = handles.into_iter().map(|h| h.join().expect("driver panicked")).collect();
        RunStats::from_workers(worker_stats.iter(), duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::stats::TxnClass;
    use p4db_txn::Txn;
    use p4db_workloads::{SmallBank, SmallBankConfig, Ycsb, YcsbConfig, YcsbMix};

    fn small_ycsb() -> Arc<dyn Workload> {
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 2_000, ..YcsbConfig::new(YcsbMix::A) }))
    }

    #[test]
    fn cluster_builds_and_offloads_hot_set_in_p4db_mode() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        assert_eq!(cluster.hot_set_size(), 2 * 50);
        assert_eq!(cluster.offloaded_tuples(), 100);
        assert!(cluster.switch_value(TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, 0)).is_some());
    }

    #[test]
    fn no_switch_mode_offloads_nothing() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::NoSwitch, CcScheme::NoWait), small_ycsb());
        assert_eq!(cluster.offloaded_tuples(), 0);
    }

    #[test]
    fn builder_resolves_the_same_config_as_the_field_bag() {
        let cluster = Cluster::builder(small_ycsb())
            .nodes(3)
            .workers(1)
            .mode(SystemMode::NoSwitch)
            .cc(CcScheme::WaitDie)
            .distributed_prob(0.4)
            .seed(7)
            .test_latencies()
            .build();
        let config = cluster.config();
        assert_eq!(config.num_nodes, 3);
        assert_eq!(config.workers_per_node, 1);
        assert_eq!(config.mode, SystemMode::NoSwitch);
        assert_eq!(config.cc, CcScheme::WaitDie);
        assert_eq!(config.distributed_prob, 0.4);
        assert_eq!(config.seed, 7);
        assert_eq!(config.latency, LatencyConfig::zero());
    }

    #[test]
    fn try_build_reports_invalid_configs_as_errors() {
        match Cluster::builder(small_ycsb()).nodes(0).try_build() {
            Err(err) => assert!(matches!(err, Error::InvalidConfig(_)), "got {err:?}"),
            Ok(_) => panic!("a zero-node cluster must not build"),
        }
    }

    #[test]
    fn run_for_commits_transactions_in_all_modes() {
        for mode in [SystemMode::NoSwitch, SystemMode::LmSwitch, SystemMode::P4db] {
            let cluster = Cluster::build(ClusterConfig::test_profile(mode, CcScheme::NoWait), small_ycsb());
            let stats = cluster.run_for(Duration::from_millis(200));
            assert!(
                stats.merged.committed_total() > 100,
                "{:?} committed only {}",
                mode,
                stats.merged.committed_total()
            );
            if mode == SystemMode::P4db {
                assert!(stats.merged.committed_hot > 0, "P4DB must execute hot transactions on the switch");
                assert!(cluster.switch_stats().txns_executed > 0);
            }
        }
    }

    #[test]
    fn sessions_execute_ad_hoc_transactions() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        let mut session = cluster.session(NodeId(0)).unwrap();
        let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);

        // Hot tuple (local key 1 on node 0): executed on the switch.
        let hot = session.execute(&Txn::new().add(t(1), 5)).unwrap();
        assert_eq!(hot.class, TxnClass::Hot);
        assert_eq!(hot.results[0], 5);
        assert!(hot.gid.is_some());

        // Cold tuples spanning both nodes: a distributed host transaction.
        let cold = session.execute(&Txn::new().add(t(100), 1).add(t(2_100), 2)).unwrap();
        assert_eq!(cold.class, TxnClass::Cold);
        assert_eq!(cold.results, vec![1, 2]);
        assert_eq!(session.stats().committed_total(), 2);

        // Sessions for unknown nodes are rejected.
        assert!(matches!(cluster.session(NodeId(9)), Err(Error::UnknownNode(_))));
    }

    #[test]
    fn open_loop_submission_overlaps_transactions() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        let mut session = cluster.session(NodeId(1)).unwrap();
        let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);
        let tickets: Vec<_> =
            (0..32).map(|i| session.submit(&Txn::new().add(t(2_000 + 100 + i), 1)).unwrap()).collect();
        for ticket in tickets {
            let outcome = session.wait(ticket).unwrap();
            assert_eq!(outcome.results[0], 1);
        }
        assert_eq!(session.stats().committed_total(), 32);
    }

    #[test]
    fn session_rejects_malformed_requests() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        let mut session = cluster.session(NodeId(0)).unwrap();
        let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);

        // A read-dependency crossing the hot/cold split.
        let split = Txn::new().read(t(100)).add(t(1), 0).operand_from(0);
        assert!(matches!(session.execute(&split), Err(Error::InvalidTxn(_))));

        // An explicit home outside the cluster.
        use p4db_txn::{OpKind, TxnOp, TxnRequest};
        let bad = TxnRequest::new(vec![TxnOp::new(t(0), OpKind::Read, NodeId(7))]);
        assert!(matches!(session.execute_request(&bad), Err(Error::UnknownNode(_))));
    }

    #[test]
    fn offload_limit_caps_the_switch_resident_hot_set() {
        let mut config = ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait);
        config.offload_limit = Some(10);
        let cluster = Cluster::build(config, small_ycsb());
        assert_eq!(cluster.offloaded_tuples(), 10);
        let stats = cluster.run_for(Duration::from_millis(100));
        // Hot transactions over non-offloaded tuples fall back to the host
        // path, so both hot and cold/warm commits appear.
        assert!(stats.merged.committed_total() > 0);
    }

    #[test]
    fn smallbank_cluster_preserves_non_negative_switch_balances() {
        let workload: Arc<dyn Workload> =
            Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), workload);
        let _ = cluster.run_for(Duration::from_millis(200));
        for (tuple, _) in cluster.shared().hot_index.iter() {
            let value = cluster.switch_value(tuple).unwrap();
            assert!((value as i64) >= 0, "balance of {tuple} went negative: {value}");
        }
    }
}
