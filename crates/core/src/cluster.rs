//! Cluster assembly and the experiment driver.
//!
//! A [`Cluster`] is the full system of the paper's evaluation: `n` database
//! nodes (each with its partition, lock table and WAL), the programmable
//! switch (simulator), the rack fabric with the ½-RTT latency model, the
//! offloaded hot set with its declustered layout, and the per-node executor
//! pool that runs submitted transactions. The cluster is a *database first*:
//! any code can open a [`Session`] and execute ad-hoc
//! transactions; [`Cluster::run_for`] is merely the built-in closed-loop
//! client that drives the workload generators through the same session API
//! to produce one data point of one figure.

use crate::session::{ResolverReport, Session, SubmissionPool};
use p4db_common::faults::{FaultEvent, FaultInjector, FaultPlan};
use p4db_common::rand_util::FastRng;
use p4db_common::stats::{RunStats, WorkerStats};
use p4db_common::{
    CcScheme, Error, GlobalTxnId, LatencyConfig, NodeId, Result, SwitchId, SystemMode, TupleId, TxnId, Value,
};
use p4db_layout::{assign_tuples_to_switches, DataLayout, LayoutPlanner, LayoutStrategy};
use p4db_net::{EndpointId, Fabric, LatencyModel, Mailbox, RecvOutcome};
use p4db_storage::{
    decode_segment_tail, recover_cold_records, recover_switch_state, take_fuzzy_checkpoint, LogRecord, NodeStorage,
    SwitchRecoveryOutcome, Wal, WalCodec, DEFAULT_SEGMENT_RECORDS,
};
use p4db_switch::{
    start_switch_with_id, ControlPlane, ProbeRequest, RegisterMemory, SwitchConfig, SwitchHandle, SwitchMessage,
    SwitchStatsSnapshot,
};
use p4db_txn::{BreakerConfig, EngineConfig, EngineShared, HotIndexCell, HotSetIndex, SwitchHealth};
use p4db_workloads::{PartitionMap, Workload, WorkloadCtx};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything needed to build a cluster for one experiment configuration.
///
/// This is the *resolved* form that [`crate::ClusterBuilder`] produces; the
/// benchmark harness still constructs it directly for its sweep loops.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    pub num_nodes: u16,
    pub workers_per_node: u16,
    /// Number of programmable switches the hot set is partitioned over.
    /// `1` is the paper's topology and the default; a multi-switch cluster
    /// splits the hot set across switches with the capacity-aware,
    /// co-access-affine assignment of [`p4db_layout::assign_tuples_to_switches`].
    /// `0` is rejected by [`Cluster::try_build`].
    pub num_switches: u16,
    pub mode: SystemMode,
    pub cc: CcScheme,
    pub latency: LatencyConfig,
    pub switch: SwitchConfig,
    pub layout: LayoutStrategy,
    /// Fraction of generated transactions that are distributed.
    pub distributed_prob: f64,
    /// Chiller-style contention-centric host execution (Fig 18b only).
    pub chiller: bool,
    /// Cap on how many hot tuples are offloaded (None = switch capacity).
    /// Used by the Fig 17 capacity experiment.
    pub offload_limit: Option<usize>,
    /// Hot-path batching degree, applied to both ends of the switch path:
    /// the engine's executors pipeline up to this many queued all-hot
    /// transactions per frame (group-committed intents, one fabric frame),
    /// and the switch dequeues/executes up to this many packets per
    /// scheduling quantum, coalescing their replies into per-worker frames.
    /// `1` reproduces the unbatched behaviour exactly; the differential
    /// suite in `tests/batching.rs` proves the histories are
    /// invariant-equivalent across batch sizes.
    pub batch_size: u16,
    /// Flush deadline in microseconds for partially filled reply frames on
    /// the switch (bounds reply latency while a burst keeps the engine busy).
    pub flush_us: u64,
    /// Shard count of every node's row store and secondary indexes (rounded
    /// up to a power of two). More shards spread unrelated tuple accesses
    /// over independent latches; `1` is the seed's single-latch layout.
    pub storage_shards: u16,
    /// Rebuilds the *pre-sharding* node hot path exactly: single-shard
    /// storage plus the seed's per-op engine path (lock at access time, map
    /// lookup per access, per-tuple release). Overrides `storage_shards`.
    /// This is the baseline arm of `fig_node_scaling` and of the sharding
    /// differential suite — not a configuration to run for performance.
    pub single_latch: bool,
    /// Serialisation arm the durability paths round-trip the WAL through:
    /// the segmented binary codec (default) or the line-oriented text codec
    /// kept as the differential/compatibility arm. Both enforce the same
    /// torn-tail contract; `tests/durability.rs` proves them
    /// verdict-equivalent.
    pub wal_codec: WalCodec,
    /// Records per sealed WAL segment (binary arm only; clamped to ≥ 1).
    /// Smaller segments seal — and checksum — more eagerly; larger ones
    /// amortise the encode.
    pub wal_segment_records: usize,
    /// Fuzzy-checkpoint cadence: when set, [`Cluster::maybe_checkpoint`]
    /// checkpoints any node whose own WAL grew by at least this many records
    /// since its last complete checkpoint. `None` (the default) disables the
    /// automatic cadence; [`Cluster::checkpoint_node`] still works.
    pub checkpoint_interval: Option<u64>,
    /// Cap on each row's version-chain length (clamped to ≥ 1). A commit
    /// that grows a chain past the cap triggers an inline trim of that row's
    /// versions below the cluster low-watermark; [`Cluster::collect_versions`]
    /// sweeps every row on demand.
    pub version_cap: usize,
    /// Background version-GC cadence for [`Cluster::run_for`]: when set, a
    /// collector thread sweeps every node's version chains below the cluster
    /// low-watermark at this interval — per-shard latches only, no global
    /// pause. `None` (the default) leaves reclamation to the commit-time cap
    /// and explicit [`Cluster::collect_versions`] calls.
    pub gc_interval: Option<Duration>,
    /// RNG seed (workers derive their own seeds from it).
    pub seed: u64,
    /// Seeded fault-injection plan (chaos testing). When set, the fabric
    /// routes every unicast send through a [`FaultInjector`], workers use the
    /// plan's short switch timeout, and the switch keeps its data-plane
    /// audit log for the invariant checker.
    pub faults: Option<FaultPlan>,
    /// Per-switch circuit-breaker thresholds. Disabled by default: every
    /// health check short-circuits to "healthy" and the engine behaves
    /// byte-for-byte like the breaker-less build.
    pub breaker: BreakerConfig,
    /// Supervisor heartbeat cadence: how long [`Cluster::supervise_until`]
    /// sleeps between probe rounds.
    pub probe_interval: Duration,
    /// Opt-in for harnesses that run the self-healing supervisor alongside
    /// their drivers (the cluster itself never spawns it — supervision needs
    /// `&mut Cluster` and runs on the caller's thread).
    pub supervisor: bool,
    /// In-doubt resolver retry budget per switch status query.
    pub resolver_retries: u32,
}

impl ClusterConfig {
    /// A small default cluster: the paper's 8×8–20 configuration scaled down
    /// so it can be driven by the slow-motion latency profile on machines
    /// with few cores (see `LatencyConfig::bench_profile`).
    pub fn new(mode: SystemMode, cc: CcScheme) -> Self {
        ClusterConfig {
            num_nodes: 4,
            workers_per_node: 4,
            num_switches: 1,
            mode,
            cc,
            latency: LatencyConfig::bench_profile(),
            switch: SwitchConfig::tofino_defaults(),
            layout: LayoutStrategy::Declustered,
            distributed_prob: 0.2,
            chiller: false,
            offload_limit: None,
            batch_size: 16,
            flush_us: 50,
            storage_shards: 64,
            single_latch: false,
            wal_codec: WalCodec::Binary,
            wal_segment_records: DEFAULT_SEGMENT_RECORDS,
            checkpoint_interval: None,
            version_cap: p4db_storage::DEFAULT_VERSION_CAP,
            gc_interval: None,
            seed: 42,
            faults: None,
            breaker: BreakerConfig::default(),
            probe_interval: Duration::from_millis(2),
            supervisor: false,
            resolver_retries: 3,
        }
    }

    /// Fast functional-test profile: tiny latencies, tiny switch.
    pub fn test_profile(mode: SystemMode, cc: CcScheme) -> Self {
        ClusterConfig {
            num_nodes: 2,
            workers_per_node: 2,
            latency: LatencyConfig::zero(),
            switch: SwitchConfig::tiny(),
            ..Self::new(mode, cc)
        }
    }
}

/// The checker baseline for the current *switch epoch* of one switch.
///
/// A switch epoch starts at offload time and at every recovery event of that
/// switch ([`Cluster::crash_and_recover_switch_at`]): recovery may fold
/// previously in-flight intents into the restored state, so invariant
/// checking replays the audit log only from the epoch start against the
/// epoch's baseline values, and reads WAL records only from the epoch's
/// per-node offsets. In a multi-switch topology every switch keeps its own
/// epoch — crashing one switch moves only that switch's baseline.
#[derive(Clone, Debug)]
pub struct SwitchEpoch {
    /// Value of every offloaded tuple at the epoch start.
    pub baseline: HashMap<TupleId, u64>,
    /// Audit-log length at the epoch start.
    pub audit_start: usize,
    /// Per-node WAL lengths at the epoch start.
    pub wal_start: Vec<usize>,
}

/// What [`Cluster::crash_and_recover_node`] did and found.
#[derive(Clone, Debug)]
pub struct NodeRecoveryReport {
    pub node: NodeId,
    /// Total WAL records replayed (across all coordinators' logs).
    pub wal_records: usize,
    /// Tuples of the crashed node's partition restored from the logs.
    pub restored_tuples: usize,
    /// Tuples whose recovered value disagreed with the pre-crash live value
    /// — must be empty; anything here is a durability bug.
    pub divergences: Vec<(TupleId, u64, u64)>,
    /// Tuples written by more than one coordinator with disagreeing final
    /// images (cross-log ordering unknown — only possible with distributed
    /// transactions, which crash scenarios avoid).
    pub ambiguous: usize,
    /// Rows present in a log but absent from the live table (undone inserts;
    /// skipped rather than resurrected).
    pub missing_rows: usize,
    /// Set when a serialised log failed to parse cleanly.
    pub codec_error: Option<String>,
    /// Generation of the complete checkpoint recovery started from, or
    /// `None` for a genesis replay (no usable checkpoint).
    pub from_checkpoint: Option<u64>,
    /// Rows loaded from the checkpoint before tail replay.
    pub checkpoint_rows: usize,
    /// WAL records actually replayed — the per-coordinator suffixes past the
    /// checkpoint's start fences, or everything (= `wal_records`) for a
    /// genesis replay.
    pub tail_records: usize,
}

/// What [`Cluster::crash_and_recover_switch`] did and found.
#[derive(Clone, Debug)]
pub struct SwitchRecoveryReport {
    /// The raw log-replay outcome (completed / in-flight counts).
    pub outcome: SwitchRecoveryOutcome,
    /// Tuples written back into register memory.
    pub restored_tuples: usize,
    /// Whether the hot set was re-offloaded into fresh register slots (and
    /// the replicated hot-set index swapped cluster-wide).
    pub reoffloaded: bool,
    /// Tuples whose recovered value differs from the pre-crash live value
    /// with no unexecuted in-flight intent explaining the difference — must
    /// be empty.
    pub unexplained_divergences: Vec<(TupleId, u64, u64)>,
}

/// What one [`Cluster::supervise_until`] run observed and did.
#[derive(Clone, Debug, Default)]
pub struct SupervisorReport {
    /// Switches the supervisor stood degraded mode up for, in trip order.
    pub degraded: Vec<SwitchId>,
    /// Switches re-admitted after their half-open probe streak closed.
    pub recovered: Vec<SwitchId>,
    /// Heartbeat probes sent to open switches.
    pub probes_sent: u64,
    /// Probes echoed back within the probe timeout.
    pub probes_answered: u64,
    /// Outcomes of the in-doubt resolution pass run before re-admission.
    pub resolver: ResolverReport,
    /// Whether the deadline elapsed and the supervisor force-healed the
    /// network fault to restore liveness.
    pub deadline_forced: bool,
    /// Total breaker trips observed across the cluster's lifetime.
    pub trips_seen: u64,
}

/// A fully assembled cluster, ready to serve sessions and run measurements.
pub struct Cluster {
    config: ClusterConfig,
    workload: Arc<dyn Workload>,
    shared: Arc<EngineShared>,
    partition_map: PartitionMap,
    /// Offload-time initial values of the full hot set, captured once at
    /// build time (the conservation checker's run-wide reference).
    initial_values: HashMap<TupleId, u64>,
    /// Per-switch offload snapshot: the values each switch's registers held
    /// at the start of its current epoch. Captured at offload time and
    /// *recaptured on every recovery / re-offload* of that switch, so
    /// recovery never replays against a stale placement map.
    offload_snapshots: Vec<HashMap<TupleId, u64>>,
    /// Declared before `switches` so the executors drain and stop while the
    /// switches are still alive (struct fields drop in declaration order).
    pool: SubmissionPool,
    switches: Vec<SwitchHandle>,
    control_planes: Vec<ControlPlane>,
    layouts: Vec<DataLayout>,
    offloaded: usize,
    hot_total: usize,
    epochs: Vec<SwitchEpoch>,
}

impl Cluster {
    /// Starts a fluent [`crate::ClusterBuilder`] for this workload.
    pub fn builder(workload: Arc<dyn Workload>) -> crate::ClusterBuilder {
        crate::ClusterBuilder::new(workload)
    }

    /// Builds the cluster: creates and loads every node's partition, detects
    /// and offloads the hot set under the configured layout strategy, starts
    /// the switch, wires up the engine and spawns the submission pool.
    ///
    /// # Panics
    /// Panics on an invalid configuration; see [`Cluster::try_build`] for
    /// the error-reporting variant.
    pub fn build(config: ClusterConfig, workload: Arc<dyn Workload>) -> Self {
        Self::try_build(config, workload).expect("failed to build cluster")
    }

    /// Builds the cluster, reporting invalid configurations and worker-id
    /// exhaustion as structured errors instead of panicking.
    pub fn try_build(mut config: ClusterConfig, workload: Arc<dyn Workload>) -> Result<Self> {
        if config.num_nodes == 0 || config.workers_per_node == 0 {
            return Err(Error::InvalidConfig("cluster needs nodes and workers".into()));
        }
        if config.num_switches == 0 {
            return Err(Error::InvalidConfig("cluster needs at least one switch (.switches(n) with n >= 1)".into()));
        }
        // Fault injection needs the data-plane audit log as ground truth for
        // the invariant checker, whatever switch profile was selected.
        if config.faults.is_some() {
            config.switch.audit_data_plane = true;
        }
        // The cluster-level batching knobs are authoritative: the switch
        // engine and the executor pool always agree on the batching degree.
        config.switch.batch_size = config.batch_size.max(1);
        config.switch.flush_us = config.flush_us;
        config.switch.validate().map_err(Error::InvalidConfig)?;

        // --- Host storage ----------------------------------------------------
        let nodes: Vec<Arc<NodeStorage>> = (0..config.num_nodes)
            .map(|n| {
                let storage = if config.single_latch {
                    NodeStorage::seed_single_latch(NodeId(n), workload.tables())
                } else {
                    NodeStorage::with_shards_and_segments(
                        NodeId(n),
                        workload.tables(),
                        config.storage_shards.max(1) as usize,
                        config.wal_segment_records,
                    )
                };
                workload.load_node(&storage, config.num_nodes);
                Arc::new(storage)
            })
            .collect();

        // --- Hot set detection + declustered layout --------------------------
        let mut rng = FastRng::new(config.seed ^ 0xFEED);
        let hot_tuples = workload.hot_tuples(config.num_nodes);
        let hot_total = hot_tuples.len();
        let initial_values: HashMap<TupleId, u64> = hot_tuples.iter().map(|h| (h.tuple, h.initial)).collect();
        let traces = workload.layout_traces(config.num_nodes, &mut rng);
        let planner =
            LayoutPlanner::new(config.switch.num_stages, config.switch.arrays_per_stage, config.switch.slots_per_array);
        // Very large hot sets (Fig 17) skip graph construction.
        let strategy = if matches!(config.layout, LayoutStrategy::Declustered) && hot_tuples.len() > 20_000 {
            LayoutStrategy::Hashed
        } else {
            config.layout
        };
        let num_switches = config.num_switches as usize;
        let per_switch_slots = config.switch.total_slots() as usize;
        let aggregate_slots = per_switch_slots.saturating_mul(num_switches);
        let requested = config.offload_limit.unwrap_or(usize::MAX).min(hot_total);
        // A single switch keeps the documented Fig-17 semantics: a hot set
        // larger than the register file is silently capped. The multi-switch
        // assignment pass has no partial-offload notion, so there an
        // oversized hot set is a configuration error rather than a cap.
        if num_switches > 1 && requested > aggregate_slots {
            return Err(Error::InvalidConfig(format!(
                "hot set of {requested} tuples exceeds the aggregate register capacity of {num_switches} \
                 switches ({aggregate_slots} cells); shrink the hot set, deepen the arrays or add switches"
            )));
        }
        let offload_candidates: Vec<TupleId> =
            hot_tuples.iter().map(|h| h.tuple).take(requested.min(aggregate_slots)).collect();
        // Partition the candidates over the switches. The balanced capacity
        // (rather than the full per-switch register file) forces the
        // assignment to spread load: with slack capacity the co-access
        // heuristic's optimum is "everything on one switch".
        let assignment: Vec<Vec<TupleId>> = if num_switches > 1 {
            let capacity = offload_candidates.len().div_ceil(num_switches).max(1);
            assign_tuples_to_switches(&offload_candidates, &traces, num_switches, capacity, config.seed)
        } else {
            vec![offload_candidates.clone()]
        };

        // --- Switches --------------------------------------------------------
        // One register memory, control plane and (below) data-plane engine
        // per switch; the switches share nothing but the fabric.
        let hot_meta: HashMap<TupleId, (usize, u64)> =
            hot_tuples.iter().map(|h| (h.tuple, (h.byte_width, h.initial))).collect();
        let mut memories = Vec::with_capacity(num_switches);
        let mut control_planes = Vec::with_capacity(num_switches);
        let mut layouts = Vec::with_capacity(num_switches);
        let mut offloaded = 0usize;
        for tuples in &assignment {
            let memory = Arc::new(RegisterMemory::new(config.switch));
            let mut control_plane = ControlPlane::new(config.switch, Arc::clone(&memory));
            let layout = planner.plan(tuples, &traces, strategy);
            if config.mode == SystemMode::P4db {
                for &tuple in tuples {
                    let Some(at) = layout.get(tuple) else { continue };
                    let (byte_width, initial) = hot_meta.get(&tuple).copied().unwrap_or((8, 0));
                    if control_plane.offload_into(tuple, at.stage, at.array, byte_width, initial).is_ok() {
                        offloaded += 1;
                    }
                }
            }
            memories.push(memory);
            control_planes.push(control_plane);
            layouts.push(layout);
        }

        let latency = LatencyModel::new(config.latency);
        let fabric = match &config.faults {
            Some(plan) => Fabric::with_faults(latency.clone(), Arc::new(FaultInjector::new(plan))),
            None => Fabric::new(latency.clone()),
        };
        let switches: Vec<SwitchHandle> = memories
            .into_iter()
            .enumerate()
            .map(|(s, memory)| start_switch_with_id(SwitchId(s as u16), config.switch, memory, fabric.clone()))
            .collect();

        // --- Engine ----------------------------------------------------------
        let hot_index = match config.mode {
            SystemMode::P4db => HotSetIndex::from_control_planes(
                control_planes.iter().enumerate().map(|(s, cp)| (SwitchId(s as u16), cp)),
            ),
            // The LM-Switch and Chiller baselines need hot-tuple *identity*
            // even though the data stays on the nodes.
            SystemMode::LmSwitch | SystemMode::NoSwitch => HotSetIndex::from_tuples(hot_tuples.iter().map(|h| h.tuple)),
        };
        let mut engine_config = EngineConfig {
            chiller: config.chiller,
            batch_size: config.batch_size.max(1),
            single_latch: config.single_latch,
            ..EngineConfig::new(config.mode, config.cc, config.switch)
        };
        if let Some(plan) = &config.faults {
            engine_config.switch_timeout = plan.switch_timeout;
            engine_config.in_doubt_on_timeout = true;
        }
        engine_config.resolver_retries = config.resolver_retries;
        let shared = Arc::new(EngineShared {
            nodes,
            latency,
            fabric,
            hot_index: HotIndexCell::new(hot_index),
            config: engine_config,
            mvcc: p4db_txn::MvccState::new(config.version_cap),
            health: SwitchHealth::new(num_switches, config.num_nodes as usize, config.breaker),
        });

        // --- Submission pool --------------------------------------------------
        let pool = SubmissionPool::spawn(&shared, &config)?;
        let partition_map = PartitionMap::new(Arc::clone(&workload), config.num_nodes);

        let epochs: Vec<SwitchEpoch> = control_planes
            .iter()
            .map(|cp| SwitchEpoch {
                baseline: cp.snapshot().into_iter().collect(),
                audit_start: 0,
                wal_start: vec![0; config.num_nodes as usize],
            })
            .collect();
        let offload_snapshots: Vec<HashMap<TupleId, u64>> = epochs.iter().map(|e| e.baseline.clone()).collect();
        Ok(Cluster {
            config,
            workload,
            shared,
            partition_map,
            initial_values,
            offload_snapshots,
            pool,
            switches,
            control_planes,
            layouts,
            offloaded,
            hot_total,
            epochs,
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn shared(&self) -> &Arc<EngineShared> {
        &self.shared
    }

    pub fn workload_name(&self) -> String {
        self.workload.name()
    }

    /// The workload's partitioning scheme bound to this cluster's size, used
    /// to resolve [`p4db_txn::Txn`] builders into placed requests.
    pub fn partition_map(&self) -> PartitionMap {
        self.partition_map.clone()
    }

    /// Opens a client session coordinated by `node`. Sessions are cheap and
    /// independent; open as many as needed and move them across threads.
    pub fn session(&self, node: NodeId) -> Result<Session> {
        let submit = self.pool.queue(node).ok_or(Error::UnknownNode(node))?.clone();
        Ok(Session::new(node, submit, self.partition_map.clone(), Arc::clone(&self.shared)))
    }

    /// Number of hot tuples actually offloaded to the switch (may be smaller
    /// than the hot set when the switch capacity is exceeded, Fig 17).
    pub fn offloaded_tuples(&self) -> usize {
        self.offloaded
    }

    /// Size of the workload-defined hot set.
    pub fn hot_set_size(&self) -> usize {
        self.hot_total
    }

    /// Number of switches in the topology.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// The planned data layout of switch 0 (for layout-quality reporting).
    pub fn layout(&self) -> &DataLayout {
        &self.layouts[0]
    }

    /// The planned data layout of one switch.
    ///
    /// # Panics
    /// Panics when `switch` is outside the topology.
    pub fn layout_at(&self, switch: SwitchId) -> &DataLayout {
        &self.layouts[switch.index()]
    }

    /// Data-plane statistics summed over every switch of the topology.
    pub fn switch_stats(&self) -> SwitchStatsSnapshot {
        let mut merged = SwitchStatsSnapshot::default();
        for handle in &self.switches {
            let s = handle.stats();
            merged.txns_executed += s.txns_executed;
            merged.single_pass += s.single_pass;
            merged.multi_pass += s.multi_pass;
            merged.passes += s.passes;
            merged.recirc_waiting += s.recirc_waiting;
            merged.recirc_owner += s.recirc_owner;
            merged.lm_requests += s.lm_requests;
            merged.lm_denied += s.lm_denied;
            merged.multicasts += s.multicasts;
        }
        merged
    }

    /// Data-plane statistics of one switch.
    ///
    /// # Panics
    /// Panics when `switch` is outside the topology.
    pub fn switch_stats_at(&self, switch: SwitchId) -> SwitchStatsSnapshot {
        self.switches[switch.index()].stats()
    }

    /// The control plane of switch 0 (recovery experiments and tests; the
    /// whole topology in the default single-switch configuration).
    pub fn control_plane(&self) -> &ControlPlane {
        &self.control_planes[0]
    }

    /// The control plane of one switch.
    ///
    /// # Panics
    /// Panics when `switch` is outside the topology.
    pub fn control_plane_at(&self, switch: SwitchId) -> &ControlPlane {
        &self.control_planes[switch.index()]
    }

    /// Current switch-side value of an offloaded tuple, whichever switch
    /// owns it (placement maps are disjoint across switches).
    pub fn switch_value(&self, tuple: TupleId) -> Option<u64> {
        self.control_planes.iter().find_map(|cp| cp.read_tuple(tuple))
    }

    /// Offload-time initial values of the full hot set, captured once at
    /// build time — the conservation checker's run-wide reference.
    pub fn offload_snapshot(&self) -> &HashMap<TupleId, u64> {
        &self.initial_values
    }

    /// One switch's offload snapshot: the values its registers held at the
    /// start of its current epoch. Recaptured (never stale) on every
    /// recovery / re-offload of that switch; recovery replays the WAL suffix
    /// of the epoch against exactly this baseline.
    ///
    /// # Panics
    /// Panics when `switch` is outside the topology.
    pub fn offload_snapshot_at(&self, switch: SwitchId) -> &HashMap<TupleId, u64> {
        &self.offload_snapshots[switch.index()]
    }

    // --- Chaos-testing surface --------------------------------------------

    /// The recorded network fault trace (empty without fault injection).
    pub fn fault_trace(&self) -> Vec<FaultEvent> {
        self.shared.fabric.fault_trace()
    }

    /// Number of network faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.shared.fabric.faults_injected()
    }

    /// Delivers every message the fault injector is still holding back, so
    /// reordered messages do not retroactively become drops. Call between
    /// chaos waves.
    pub fn flush_network(&self) {
        self.shared.fabric.flush_faults();
    }

    /// The data-plane audit log of switch 0 (`(TxnId, GID)` in serial
    /// execution order). Empty unless the switch profile enables
    /// `audit_data_plane` (the test profile and every fault-injection
    /// cluster do). GIDs are per-switch serial, so a merged multi-switch
    /// audit has no meaning — use [`Cluster::switch_audit_at`] per switch.
    pub fn switch_audit(&self) -> Vec<(TxnId, GlobalTxnId)> {
        self.switches[0].audit_log()
    }

    /// The data-plane audit log of one switch.
    ///
    /// # Panics
    /// Panics when `switch` is outside the topology.
    pub fn switch_audit_at(&self, switch: SwitchId) -> Vec<(TxnId, GlobalTxnId)> {
        self.switches[switch.index()].audit_log()
    }

    /// The checker baseline of switch 0's current epoch.
    pub fn switch_epoch(&self) -> &SwitchEpoch {
        &self.epochs[0]
    }

    /// The checker baseline of one switch's current epoch.
    ///
    /// # Panics
    /// Panics when `switch` is outside the topology.
    pub fn switch_epoch_at(&self, switch: SwitchId) -> &SwitchEpoch {
        &self.epochs[switch.index()]
    }

    /// Waits until every switch has gone quiet: no execution progress across
    /// several consecutive polls (so a briefly descheduled switch thread or
    /// a still-recirculating multi-pass packet is not mistaken for silence)
    /// and no held-back messages. Returns `false` if a switch is still
    /// moving when `timeout` expires. Call after the chaos drivers stopped
    /// submitting (flushes the network first so stranded reordered packets
    /// get executed rather than lost).
    pub fn quiesce_switch(&self, timeout: Duration) -> bool {
        let executed = || self.switches.iter().map(|s| s.executed_count()).sum::<u64>();
        let deadline = Instant::now() + timeout;
        let mut last = executed();
        let mut stable_polls = 0;
        loop {
            // Flushing inside the loop: a message held back *during* the
            // drain (e.g. the reply to a just-flushed request) is released
            // on the next poll rather than left stranded.
            self.flush_network();
            std::thread::sleep(Duration::from_millis(5));
            let now = executed();
            if now == last {
                stable_polls += 1;
                if stable_polls >= 4 {
                    return true;
                }
            } else {
                stable_polls = 0;
                last = now;
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Round-trips one node's log through the configured serialisation arm —
    /// the crash model is that only the serialised form survives. Returns
    /// the decoded log plus the torn-tail note, if the tail was torn.
    /// Interior corruption (intact records after the failure) is a hard
    /// error on both arms.
    fn roundtrip_wal(&self, storage: &NodeStorage) -> Result<(Wal, Option<String>)> {
        let round = match self.config.wal_codec {
            WalCodec::Binary => {
                let blobs = storage.wal().serialize_segments();
                let views: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
                Wal::deserialize_segments(&views, self.config.wal_segment_records.max(1))
            }
            WalCodec::Text => Wal::deserialize_prefix(&storage.wal().serialize()),
        };
        let (wal, torn) =
            round.map_err(|e| Error::InvalidConfig(format!("WAL round-trip failed during recovery: {e}")))?;
        Ok((wal, torn.map(|t| t.to_string())))
    }

    /// Takes a fuzzy checkpoint of one node's partition and installs it in
    /// that node's [`p4db_storage::CheckpointStore`]: per-coordinator WAL
    /// fences are captured first, then every shard of every table is scanned
    /// under its own read latch — no global pause, concurrent traffic keeps
    /// running. Returns the generation number.
    pub fn checkpoint_node(&self, node: NodeId) -> Result<u64> {
        if node.index() >= self.shared.num_nodes() {
            return Err(Error::UnknownNode(node));
        }
        let storage = self.shared.node(node);
        let wals: Vec<&Wal> = self.shared.nodes.iter().map(|n| n.wal()).collect();
        let generation = storage.checkpoints().begin_generation();
        let blob = take_fuzzy_checkpoint(storage, &wals, generation);
        storage.checkpoints().install(blob);
        Ok(generation)
    }

    /// Checkpoints every node whose own WAL grew by at least the configured
    /// [`ClusterConfig::checkpoint_interval`] since its last complete
    /// checkpoint (all records, for a node that never checkpointed). No-op
    /// without an interval. Returns how many checkpoints were taken.
    pub fn maybe_checkpoint(&self) -> usize {
        let Some(interval) = self.config.checkpoint_interval else {
            return 0;
        };
        let mut taken = 0;
        for storage in self.shared.nodes.iter() {
            let node = storage.node();
            let own = storage.wal().len() as u64;
            let since = match storage.checkpoints().latest_complete() {
                Some(c) => own.saturating_sub(c.start_fence.get(node.index()).copied().unwrap_or(0)),
                None => own,
            };
            if since >= interval.max(1) && self.checkpoint_node(node).is_ok() {
                taken += 1;
            }
        }
        taken
    }

    /// The version-GC low-watermark: the oldest snapshot timestamp any
    /// active read-only transaction may still read, or the commit clock's
    /// stable timestamp when no reader is active. No version at or above
    /// this timestamp is ever reclaimed.
    pub fn low_watermark(&self) -> u64 {
        self.shared.mvcc.low_watermark()
    }

    /// Sweeps every node's row store and trims each row's version chain
    /// below the cluster [`Cluster::low_watermark`] — one shard latch at a
    /// time, concurrent traffic keeps running, no global pause. Returns the
    /// number of version entries reclaimed.
    pub fn collect_versions(&self) -> usize {
        let watermark = self.low_watermark();
        self.shared.nodes.iter().map(|n| n.collect_versions(watermark)).sum()
    }

    /// Simulates a crash + restart of one database node: the node's volatile
    /// partition state is rebuilt from the *serialised* durability artifacts
    /// (round-tripping the configured on-disk WAL format), compared against
    /// the pre-crash state, and written back.
    ///
    /// With a complete checkpoint available, recovery loads it and replays
    /// only each coordinator's log suffix past the checkpoint's start fence
    /// (fuzzy scans are sound because a transaction's cold writes and its
    /// verdict land in the log as one atomic group — whatever in-progress
    /// value a scan captured, the tail rewrites it); the merged rows are
    /// written back shard-parallel across worker threads. Torn checkpoint
    /// generations decode as errors and are skipped in favour of the
    /// previous complete one; with none, recovery replays from genesis.
    ///
    /// Every coordinator logs its own cold writes, so the crashed node's
    /// tuples are recovered from all logs and filtered to its partition; a
    /// tuple written by several coordinators whose final images disagree has
    /// no recoverable order and is reported as ambiguous (crash scenarios
    /// run single-partition traffic, where this cannot happen). Call only
    /// while the node's traffic is quiesced.
    pub fn crash_and_recover_node(&self, node: NodeId) -> Result<NodeRecoveryReport> {
        if node.index() >= self.shared.num_nodes() {
            return Err(Error::UnknownNode(node));
        }
        let mut report = NodeRecoveryReport {
            node,
            wal_records: 0,
            restored_tuples: 0,
            divergences: Vec::new(),
            ambiguous: 0,
            missing_rows: 0,
            codec_error: None,
            from_checkpoint: None,
            checkpoint_rows: 0,
            tail_records: 0,
        };
        let storage = self.shared.node(node);
        // Newest *complete* generation — torn blobs fail to decode and are
        // skipped by `latest_complete`, falling back to the previous one.
        let checkpoint = storage.checkpoints().latest_complete();

        // Recover each coordinator's log through the serialised format and
        // keep the images of tuples homed on the crashed node. With a
        // checkpoint, only the suffix past that coordinator's start fence is
        // replayed.
        let mut candidates: HashMap<TupleId, Vec<Value>> = HashMap::new();
        for (n, coordinator) in self.shared.nodes.iter().enumerate() {
            let fence = checkpoint.as_ref().map(|c| c.start_fence.get(n).copied().unwrap_or(0));
            report.wal_records += coordinator.wal().len();
            let (records, torn) = match (fence, self.config.wal_codec) {
                // The O(tail) restart path: sealed segments wholly below the
                // fence are skipped without being decoded.
                (Some(fence), WalCodec::Binary) => {
                    let blobs = coordinator.wal().serialize_segments();
                    let views: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
                    let (records, torn) = decode_segment_tail(&views, fence)
                        .map_err(|e| Error::InvalidConfig(format!("WAL tail decode failed during recovery: {e}")))?;
                    (records, torn.map(|t| t.to_string()))
                }
                _ => {
                    let (wal, torn) = self.roundtrip_wal(coordinator)?;
                    let records = match fence {
                        Some(fence) => wal.records_from(fence),
                        None => wal.records(),
                    };
                    (records, torn)
                }
            };
            if let Some(note) = torn {
                report.codec_error = Some(note);
            }
            report.tail_records += records.len();
            for (tuple, value) in recover_cold_records(&records) {
                if self.partition_map.home(tuple) == Some(node) {
                    candidates.entry(tuple).or_default().push(value);
                }
            }
        }

        // Resolve cross-coordinator disagreements before write-back.
        let mut resolved: HashMap<TupleId, Value> = HashMap::new();
        for (tuple, images) in candidates {
            if images.iter().any(|v| *v != images[0]) {
                report.ambiguous += 1;
                continue;
            }
            resolved.insert(tuple, images[0]);
        }

        let Some(c) = checkpoint else {
            // Genesis replay: write the log-derived images straight back.
            for (tuple, recovered) in resolved {
                let table = storage.table(tuple.table)?;
                match table.read(tuple.key) {
                    Ok(live) => {
                        if live != recovered {
                            report.divergences.push((tuple, live.switch_word(), recovered.switch_word()));
                        }
                        // The "restart": volatile state is rebuilt from the log.
                        table.write(tuple.key, recovered)?;
                        report.restored_tuples += 1;
                    }
                    // A logged row absent from the live table is an undone
                    // insert; recovery must not resurrect it.
                    Err(_) => report.missing_rows += 1,
                }
            }
            return Ok(report);
        };

        report.from_checkpoint = Some(c.generation);
        report.checkpoint_rows = c.total_rows();
        // Merge per (table, shard) cell: checkpoint rows first, tail images
        // on top (the tail is authoritative for anything written after the
        // fence, including whatever in-progress value the fuzzy scan caught).
        let mut cells: HashMap<(p4db_common::TableId, u32), HashMap<u64, Value>> = HashMap::new();
        for shard_rows in &c.shards {
            let cell = cells.entry((shard_rows.table, shard_rows.shard)).or_default();
            for &(key, value) in &shard_rows.rows {
                cell.insert(key, value);
            }
        }
        for (tuple, value) in &resolved {
            let shard = storage.table(tuple.table)?.shard_of(tuple.key) as u32;
            cells.entry((tuple.table, shard)).or_default().insert(tuple.key, *value);
        }
        let mut work: Vec<(&p4db_storage::Table, Vec<(u64, Value)>)> = Vec::with_capacity(cells.len());
        for ((table_id, _), rows) in cells {
            work.push((storage.table(table_id)?, rows.into_iter().collect()));
        }

        // Shard-parallel write-back: cells are latch-disjoint, so worker
        // threads restore them concurrently without contending.
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(work.len().max(1)).max(1);
        let chunk = work.len().div_ceil(threads).max(1);
        type WorkerPart = (usize, Vec<(TupleId, u64, u64)>, usize);
        let parts: Vec<WorkerPart> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk)
                .map(|cells| {
                    scope.spawn(move || {
                        let mut restored = 0usize;
                        let mut divergences = Vec::new();
                        let mut missing = 0usize;
                        for (table, rows) in cells {
                            for &(key, recovered) in rows {
                                match table.read(key) {
                                    Ok(live) => {
                                        if live != recovered {
                                            divergences.push((
                                                TupleId::new(table.id(), key),
                                                live.switch_word(),
                                                recovered.switch_word(),
                                            ));
                                        }
                                        table.write(key, recovered).expect("row vanished during quiesced recovery");
                                        restored += 1;
                                    }
                                    // Checkpointed or logged but absent live:
                                    // an undone insert — not resurrected.
                                    Err(_) => missing += 1,
                                }
                            }
                        }
                        (restored, divergences, missing)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("recovery worker panicked")).collect()
        });
        for (restored, divergences, missing) in parts {
            report.restored_tuples += restored;
            report.divergences.extend(divergences);
            report.missing_rows += missing;
        }
        Ok(report)
    }

    /// Crashes and recovers **every** switch of the topology in turn (see
    /// [`Cluster::crash_and_recover_switch_at`]) and merges the reports —
    /// the single-switch API, kept byte-compatible for existing callers.
    pub fn crash_and_recover_switch(&mut self, reoffload_seed: Option<u64>) -> Result<SwitchRecoveryReport> {
        let mut merged: Option<SwitchRecoveryReport> = None;
        for s in 0..self.switches.len() {
            let report = self.crash_and_recover_switch_at(SwitchId(s as u16), reoffload_seed)?;
            merged = Some(match merged {
                None => report,
                Some(mut acc) => {
                    acc.outcome.values.extend(report.outcome.values);
                    acc.outcome.completed += report.outcome.completed;
                    acc.outcome.inflight_ordered += report.outcome.inflight_ordered;
                    acc.outcome.inflight_unordered += report.outcome.inflight_unordered;
                    acc.outcome.inconsistencies += report.outcome.inconsistencies;
                    acc.restored_tuples += report.restored_tuples;
                    acc.reoffloaded |= report.reoffloaded;
                    acc.unexplained_divergences.extend(report.unexplained_divergences);
                    acc
                }
            });
        }
        Ok(merged.expect("a cluster has at least one switch"))
    }

    /// Round-trips every node's WAL through the serialised format, slices it
    /// to switch `s`'s current epoch and filters it to the records that
    /// switch owns — a cross-switch transaction logs one intent/result pair
    /// *per switch* under the same TxnId, and ownership filtering is what
    /// keeps each switch's view collision-free — then replays the result
    /// against the switch's offload snapshot. Returns the replay outcome,
    /// the filtered per-node logs (for divergence analysis) and the per-node
    /// *consumed* WAL lengths: intents logged at or below those indices are
    /// folded into the reconstruction (the resolver's fence).
    fn replay_switch_suffix(
        &self,
        s: usize,
        owned: &HashSet<TupleId>,
    ) -> Result<(SwitchRecoveryOutcome, Vec<Wal>, Vec<usize>)> {
        let epoch_wal_start = self.epochs[s].wal_start.clone();
        let mut wals = Vec::with_capacity(self.shared.num_nodes());
        let mut consumed = Vec::with_capacity(self.shared.num_nodes());
        for (n, storage) in self.shared.nodes.iter().enumerate() {
            let (full, torn) = self.roundtrip_wal(storage)?;
            if let Some(note) = torn {
                // Switch recovery replays intent/result pairs and cannot
                // tolerate a truncated log the way node recovery can.
                return Err(Error::InvalidConfig(format!("WAL torn during switch recovery: {note}")));
            }
            consumed.push(full.len());
            let start = epoch_wal_start.get(n).copied().unwrap_or(0).min(full.len());
            let filtered = Wal::new();
            for record in full.records().into_iter().skip(start) {
                let keep = match &record {
                    LogRecord::SwitchIntent { ops, .. } => ops.first().is_some_and(|op| owned.contains(&op.tuple)),
                    LogRecord::SwitchResult { results, .. } => results.first().is_some_and(|(t, _)| owned.contains(t)),
                    _ => false,
                };
                if keep {
                    filtered.append(record);
                }
            }
            wals.push(filtered);
        }
        let wal_refs: Vec<&Wal> = wals.iter().collect();
        let outcome = recover_switch_state(&self.offload_snapshots[s], &wal_refs);
        Ok((outcome, wals, consumed))
    }

    /// Simulates a crash + recovery of **one** switch from the node WALs
    /// (§6.1, §A.3): its register state is lost, rebuilt by replaying the
    /// *serialised* logs of all nodes in GID order (in-flight intents
    /// ordered by data dependencies, Fig 9), and written back — either into
    /// the existing placements, or, with `reoffload_seed`, into **fresh
    /// register slots** chosen in a seeded random order, after which the
    /// rebuilt hot-set index is swapped in cluster-wide (the mid-run
    /// re-offload path).
    ///
    /// Only WAL records owned by this switch (by the tuples they touch) and
    /// only the suffix since this switch's epoch start are replayed, against
    /// the per-switch offload snapshot — other switches' epochs, registers
    /// and traffic are untouched.
    ///
    /// Starts a new [`SwitchEpoch`] *for this switch*: recovery legitimately
    /// applies intents whose packets never reached the switch, so the
    /// checker baseline moves here, and the offload snapshot is recaptured.
    /// Call only while switch traffic is quiesced
    /// ([`Cluster::quiesce_switch`]).
    pub fn crash_and_recover_switch_at(
        &mut self,
        switch: SwitchId,
        reoffload_seed: Option<u64>,
    ) -> Result<SwitchRecoveryReport> {
        let s = switch.index();
        if s >= self.switches.len() {
            return Err(Error::InvalidConfig(format!("no {switch} in a {}-switch topology", self.switches.len())));
        }
        let pre_crash: HashMap<TupleId, u64> = self.control_planes[s].snapshot().into_iter().collect();
        let owned: HashSet<TupleId> = self.control_planes[s].placements().map(|(t, _)| t).collect();
        let (outcome, wals, consumed) = self.replay_switch_suffix(s, &owned)?;
        // Resolver fence: intents at or below the consumed WAL lengths are
        // folded into this reconstruction — in-doubt entries below the fence
        // resolve as committed without querying the switch.
        self.shared.health.set_fence(switch, consumed);

        // Intents without a result record are in-flight as far as the logs
        // are concerned: recovery chooses *a* valid position for them (§A.3
        // — "any order is valid"), which need not be where the live switch
        // actually executed them (if it did at all), so their tuples may
        // legitimately diverge from the pre-crash values — and the
        // difference propagates through any completed transaction that
        // touches the same tuples (its read-dependent writes replay with
        // different operands). Tuples outside that closure must match
        // exactly.
        let mut explained: HashSet<TupleId> = HashSet::new();
        let mut completed_ops: Vec<Vec<TupleId>> = Vec::new();
        for wal in &wals {
            let records = wal.records();
            let with_result: HashSet<TxnId> = records
                .iter()
                .filter_map(|r| match r {
                    LogRecord::SwitchResult { txn, .. } => Some(*txn),
                    _ => None,
                })
                .collect();
            for record in &records {
                if let LogRecord::SwitchIntent { txn, ops } = record {
                    let tuples: Vec<TupleId> = ops.iter().map(|op| op.tuple).collect();
                    if with_result.contains(txn) {
                        completed_ops.push(tuples);
                    } else {
                        explained.extend(tuples);
                    }
                }
            }
        }
        loop {
            let before = explained.len();
            for tuples in &completed_ops {
                if tuples.iter().any(|t| explained.contains(t)) {
                    explained.extend(tuples.iter().copied());
                }
            }
            if explained.len() == before {
                break;
            }
        }
        let mut unexplained_divergences = Vec::new();
        for (&tuple, &live) in &pre_crash {
            let recovered = outcome.values.get(&tuple).copied().unwrap_or(live);
            if recovered != live && !explained.contains(&tuple) {
                unexplained_divergences.push((tuple, live, recovered));
            }
        }

        // The crash: this switch's register memory is gone. Restore it —
        // into fresh placements when re-offloading. Ownership is stable:
        // recovery never migrates tuples between switches, only reshuffles
        // slots within the crashed one.
        let control_plane = &mut self.control_planes[s];
        let mut original: Vec<(TupleId, p4db_switch::RegisterSlot)> = control_plane.placements().collect();
        // Cell indices are assigned in next_free order, so replaying inserts
        // in slot order reproduces the original placement exactly.
        original.sort_by_key(|&(_, slot)| (slot.stage, slot.array, slot.index));
        let recovered_value = |tuple: TupleId| {
            outcome.values.get(&tuple).copied().unwrap_or_else(|| pre_crash.get(&tuple).copied().unwrap_or(0))
        };
        let swap_index = |planes: &[ControlPlane], shared: &EngineShared| {
            shared.hot_index.swap(Arc::new(HotSetIndex::from_control_planes(
                planes.iter().enumerate().map(|(i, cp)| (SwitchId(i as u16), cp)),
            )));
        };
        let reoffloaded = if let Some(seed) = reoffload_seed {
            let widths: HashMap<TupleId, usize> =
                self.workload.hot_tuples(self.config.num_nodes).into_iter().map(|h| (h.tuple, h.byte_width)).collect();
            control_plane.reset();
            // Seeded shuffle so the new placement differs from the old one.
            let mut order: Vec<TupleId> = original.iter().map(|&(t, _)| t).collect();
            let mut rng = FastRng::new(seed ^ 0x0FF_10AD ^ switch.0 as u64);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.pick(i + 1));
            }
            let mut failure = None;
            for &tuple in &order {
                let width = widths.get(&tuple).copied().unwrap_or(8);
                if let Err(e) = control_plane.offload_anywhere(tuple, width, recovered_value(tuple)) {
                    failure = Some(e);
                    break;
                }
            }
            if let Some(e) = failure {
                // A partial re-offload must not leave workers with a stale
                // index over reshuffled registers: rebuild the *original*
                // placement (which held every tuple before the crash), then
                // report the failure.
                control_plane.reset();
                for &(tuple, slot) in &original {
                    let width = widths.get(&tuple).copied().unwrap_or(8);
                    control_plane.offload_into(tuple, slot.stage, slot.array, width, recovered_value(tuple))?;
                }
                swap_index(&self.control_planes, &self.shared);
                return Err(e);
            }
            swap_index(&self.control_planes, &self.shared);
            true
        } else {
            control_plane.crash_data();
            let restore: Vec<(TupleId, u64)> = original.iter().map(|&(t, _)| (t, recovered_value(t))).collect();
            control_plane.restore(&restore);
            false
        };

        // New epoch for this switch: the restored values are the checker's
        // new baseline, and the offload snapshot is recaptured so the next
        // recovery of this switch replays only the new epoch's WAL suffix
        // against a never-stale baseline.
        self.epochs[s] = SwitchEpoch {
            baseline: self.control_planes[s].snapshot().into_iter().collect(),
            audit_start: self.switches[s].audit_len(),
            wal_start: self.shared.nodes.iter().map(|n| n.wal().len()).collect(),
        };
        self.offload_snapshots[s] = self.epochs[s].baseline.clone();

        Ok(SwitchRecoveryReport {
            restored_tuples: self.epochs[s].baseline.len(),
            outcome,
            reoffloaded,
            unexplained_divergences,
        })
    }

    // --- Self-healing: degraded mode, probes, supervised recovery ----------

    /// The per-switch health state: circuit breakers, degraded flags and the
    /// in-doubt ledger.
    pub fn health(&self) -> &SwitchHealth {
        &self.shared.health
    }

    /// Stands up **degraded mode** for one switch whose breaker has tripped:
    /// reconstructs the switch's authoritative values from the node WALs
    /// (the same epoch-sliced, ownership-filtered replay recovery uses — the
    /// unreachable switch is never involved), writes them into the owning
    /// host rows' switch words, publishes a hot-set index that *excludes*
    /// the switch, and only then raises the degraded flag. From that moment
    /// workers route the switch's tuples through the host 2PL path:
    /// throughput degrades to a floor instead of collapsing to zero.
    ///
    /// The per-node WAL lengths the replay consumed are recorded as the
    /// switch's resolver fence — in-doubt intents logged at or below the
    /// fence are already folded into the reconstruction.
    ///
    /// Safe to call while traffic is live: hot sends to the switch already
    /// fast-fail (breaker open), so no new intents can land past the fence,
    /// and the owned rows see no host writers until the flag flips. Returns
    /// the number of host rows seeded.
    pub fn degrade_switch(&self, switch: SwitchId) -> Result<usize> {
        let s = switch.index();
        if s >= self.switches.len() {
            return Err(Error::InvalidConfig(format!("no {switch} in a {}-switch topology", self.switches.len())));
        }
        let owned: HashSet<TupleId> = self.control_planes[s].placements().map(|(t, _)| t).collect();
        let (outcome, _wals, consumed) = self.replay_switch_suffix(s, &owned)?;
        let mut restored = 0usize;
        for &tuple in &owned {
            let value = outcome
                .values
                .get(&tuple)
                .copied()
                .or_else(|| self.offload_snapshots[s].get(&tuple).copied())
                .unwrap_or(0);
            let Some(home) = self.partition_map.home(tuple) else { continue };
            let Ok(table) = self.shared.node(home).table(tuple.table) else { continue };
            if let Ok(mut live) = table.read(tuple.key) {
                live.set_switch_word(value);
                table.write(tuple.key, live)?;
                restored += 1;
            }
        }
        // Publish the shrunken index *before* raising the flag: a worker
        // that observes the flag (and demotes a stale-index hot op) must be
        // guaranteed the host rows already hold the reconstructed values.
        self.shared.hot_index.swap(Arc::new(HotSetIndex::from_control_planes(
            self.control_planes.iter().enumerate().filter(|&(i, _)| i != s).map(|(i, cp)| (SwitchId(i as u16), cp)),
        )));
        self.shared.health.set_fence(switch, consumed);
        self.shared.health.set_degraded(switch, true);
        Ok(restored)
    }

    /// Re-admits a degraded switch once its half-open probe streak has
    /// earned a close: re-seeds its registers from the owning host rows
    /// (during degraded mode the host rows are the authoritative values — a
    /// WAL switch-replay alone would miss the degraded-era cold commits),
    /// swaps the full hot-set index back in, starts a fresh checker epoch,
    /// heals any lingering targeted network fault, closes the breaker and
    /// lifts the degraded flag. Returns the number of registers re-seeded.
    ///
    /// Call only while switch traffic is quiesced (the supervisor re-admits
    /// after its drivers finish), and resolve the in-doubt ledger first —
    /// while the host rows are still authoritative, so a replayed intent's
    /// effect survives the re-seeding.
    pub fn readmit_switch(&mut self, switch: SwitchId) -> Result<usize> {
        let s = switch.index();
        if s >= self.switches.len() {
            return Err(Error::InvalidConfig(format!("no {switch} in a {}-switch topology", self.switches.len())));
        }
        let placements: Vec<(TupleId, p4db_switch::RegisterSlot)> = self.control_planes[s].placements().collect();
        let mut restore = Vec::with_capacity(placements.len());
        for &(tuple, _) in &placements {
            let value = self
                .partition_map
                .home(tuple)
                .and_then(|home| self.shared.node(home).table(tuple.table).ok())
                .and_then(|table| table.read(tuple.key).ok())
                .map(|v| v.switch_word())
                .or_else(|| self.offload_snapshots[s].get(&tuple).copied())
                .unwrap_or(0);
            restore.push((tuple, value));
        }
        let control_plane = &mut self.control_planes[s];
        control_plane.crash_data();
        control_plane.restore(&restore);
        // The full index goes back into circulation.
        self.shared.hot_index.swap(Arc::new(HotSetIndex::from_control_planes(
            self.control_planes.iter().enumerate().map(|(i, cp)| (SwitchId(i as u16), cp)),
        )));
        // Fresh checker epoch: the re-seeded registers are the new baseline.
        self.epochs[s] = SwitchEpoch {
            baseline: self.control_planes[s].snapshot().into_iter().collect(),
            audit_start: self.switches[s].audit_len(),
            wal_start: self.shared.nodes.iter().map(|n| n.wal().len()).collect(),
        };
        self.offload_snapshots[s] = self.epochs[s].baseline.clone();
        // Open the road back up.
        self.shared.fabric.heal_switch(switch.0);
        self.shared.health.close(switch);
        self.shared.health.set_degraded(switch, false);
        Ok(restore.len())
    }

    /// Sends one heartbeat probe through the fabric (subject to fault
    /// injection, exactly like real traffic) and waits for the echo.
    fn probe_switch(
        &self,
        switch: SwitchId,
        origin: EndpointId,
        mailbox: &Mailbox<SwitchMessage>,
        token: u64,
        timeout: Duration,
    ) -> bool {
        let sent = self.shared.fabric.send(
            origin,
            EndpointId::Switch(switch),
            SwitchMessage::ProbeRequest(ProbeRequest { origin, token }),
        );
        if !sent {
            return false;
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match mailbox.recv_timeout(remaining) {
                RecvOutcome::Msg(env) => match env.payload {
                    SwitchMessage::ProbeReply(r) if r.token == token => return true,
                    // Stale replies from earlier, timed-out probes.
                    _ => continue,
                },
                RecvOutcome::TimedOut | RecvOutcome::Disconnected => return false,
            }
        }
    }

    /// The self-healing supervisor loop. Runs **on the calling thread**
    /// (degrade and re-admission need `&mut Cluster`; driver sessions are
    /// self-contained and run on their own threads) until `drivers_done`
    /// returns true *and* every breaker is closed:
    ///
    /// 1. a tripped breaker stands up degraded mode ([`Cluster::degrade_switch`]),
    /// 2. every open breaker is heartbeat-probed each
    ///    [`ClusterConfig::probe_interval`] (probe outcomes walk the breaker
    ///    Open → Half-Open → ready-to-close),
    /// 3. once the drivers are done, a ready switch is re-admitted — quiesce,
    ///    resolve the in-doubt ledger while host rows are authoritative,
    ///    then [`Cluster::readmit_switch`].
    ///
    /// Past `deadline` the supervisor force-heals the targeted network fault
    /// (the model's "replace the broken hardware" escape hatch) and gives
    /// the loop one more deadline before giving up; the report records it.
    pub fn supervise_until<F: Fn() -> bool>(
        &mut self,
        drivers_done: F,
        deadline: Duration,
    ) -> Result<SupervisorReport> {
        let origin = crate::session::rogue_endpoint();
        let mailbox = self.shared.fabric.register(origin);
        let probe_timeout = Duration::from_millis(2).max(Duration::from_nanos(8 * self.config.latency.one_way_ns));
        let start = Instant::now();
        let mut report = SupervisorReport::default();
        let mut token = 0u64;
        loop {
            let done = drivers_done();
            for s in 0..self.switches.len() {
                let sid = SwitchId(s as u16);
                if self.shared.health.is_open(sid) && !self.shared.health.is_degraded(sid) {
                    self.degrade_switch(sid)?;
                    report.degraded.push(sid);
                }
            }
            for s in 0..self.switches.len() {
                let sid = SwitchId(s as u16);
                if !self.shared.health.is_open(sid) {
                    continue;
                }
                token += 1;
                report.probes_sent += 1;
                let answered = self.probe_switch(sid, origin, &mailbox, token, probe_timeout);
                if answered {
                    report.probes_answered += 1;
                }
                self.shared.health.probe_outcome(sid, answered);
            }
            if done {
                let ready: Vec<SwitchId> = (0..self.switches.len())
                    .map(|s| SwitchId(s as u16))
                    .filter(|&sid| self.shared.health.is_open(sid) && self.shared.health.ready_to_close(sid))
                    .collect();
                if !ready.is_empty() {
                    self.quiesce_switch(Duration::from_secs(5));
                    let mut session = self.session(NodeId(0))?;
                    report.resolver.merge(&session.resolve_in_doubt()?);
                    for sid in ready {
                        self.readmit_switch(sid)?;
                        report.recovered.push(sid);
                    }
                }
                if (0..self.switches.len()).all(|s| !self.shared.health.is_open(SwitchId(s as u16))) {
                    break;
                }
            }
            if start.elapsed() >= deadline {
                if !report.deadline_forced {
                    report.deadline_forced = true;
                    for s in 0..self.switches.len() {
                        self.shared.fabric.heal_switch(s as u16);
                    }
                } else if start.elapsed() >= deadline * 2 {
                    break;
                }
            }
            std::thread::sleep(self.config.probe_interval);
        }
        report.trips_seen = self.shared.health.trips();
        Ok(report)
    }

    /// Runs the workload generators closed-loop for `duration` and returns
    /// the merged statistics. Each node contributes `workers_per_node` driver
    /// threads, each owning a [`Session`] — the measurement exercises exactly
    /// the code path ad-hoc clients use. Can be called repeatedly (data is
    /// *not* reloaded between calls).
    pub fn run_for(&self, duration: Duration) -> RunStats {
        let stop = Arc::new(AtomicBool::new(false));
        // Background version GC: sweeps chains below the low-watermark at
        // the configured cadence. Short sleep quanta keep shutdown prompt
        // even with a cadence longer than the measurement window.
        let gc_handle = self.config.gc_interval.map(|interval| {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let mut next = Instant::now() + interval;
                while !stop.load(Ordering::Relaxed) {
                    if Instant::now() >= next {
                        let watermark = shared.mvcc.low_watermark();
                        for node in shared.nodes.iter() {
                            node.collect_versions(watermark);
                        }
                        next = Instant::now() + interval;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        });
        let mut handles = Vec::new();
        for node in 0..self.config.num_nodes {
            for wid in 0..self.config.workers_per_node {
                let mut session = self.session(NodeId(node)).expect("driver node exists");
                // The stop signal doubles as the retry-loop cancellation so
                // an aborting transaction cannot drag the measurement past
                // its window.
                session.set_cancel_flag(Arc::clone(&stop));
                let workload = Arc::clone(&self.workload);
                let stop = Arc::clone(&stop);
                let config = self.config.clone();
                let seed =
                    config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((node as u64) << 20 | wid as u64);
                handles.push(std::thread::spawn(move || {
                    let ctx = WorkloadCtx::new(config.num_nodes, NodeId(node), config.distributed_prob);
                    let mut rng = FastRng::new(seed);
                    while !stop.load(Ordering::Relaxed) {
                        let req = workload.generate(&ctx, &mut rng);
                        // A transaction that exhausts its retry budget (or a
                        // cluster shutting down) just moves the closed loop
                        // on to the next generated request; the aborts are
                        // already in the session's statistics. A *rejected*
                        // request, however, is a generator bug — fail loudly
                        // instead of silently skewing the workload mix.
                        if let Err(e) = session.execute_request(&req) {
                            assert!(
                                !matches!(e, Error::InvalidTxn(_) | Error::UnknownNode(_)),
                                "workload generator produced an invalid transaction: {e}"
                            );
                        }
                    }
                    session.take_stats()
                }));
            }
        }

        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        let worker_stats: Vec<WorkerStats> = handles.into_iter().map(|h| h.join().expect("driver panicked")).collect();
        if let Some(handle) = gc_handle {
            handle.join().expect("version-GC thread panicked");
        }
        RunStats::from_workers(worker_stats.iter(), duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::stats::TxnClass;
    use p4db_txn::Txn;
    use p4db_workloads::{SmallBank, SmallBankConfig, Ycsb, YcsbConfig, YcsbMix};

    fn small_ycsb() -> Arc<dyn Workload> {
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 2_000, ..YcsbConfig::new(YcsbMix::A) }))
    }

    #[test]
    fn cluster_builds_and_offloads_hot_set_in_p4db_mode() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        assert_eq!(cluster.hot_set_size(), 2 * 50);
        assert_eq!(cluster.offloaded_tuples(), 100);
        assert!(cluster.switch_value(TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, 0)).is_some());
    }

    #[test]
    fn no_switch_mode_offloads_nothing() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::NoSwitch, CcScheme::NoWait), small_ycsb());
        assert_eq!(cluster.offloaded_tuples(), 0);
    }

    #[test]
    fn builder_resolves_the_same_config_as_the_field_bag() {
        let cluster = Cluster::builder(small_ycsb())
            .nodes(3)
            .workers(1)
            .mode(SystemMode::NoSwitch)
            .cc(CcScheme::WaitDie)
            .distributed_prob(0.4)
            .seed(7)
            .test_latencies()
            .build();
        let config = cluster.config();
        assert_eq!(config.num_nodes, 3);
        assert_eq!(config.workers_per_node, 1);
        assert_eq!(config.mode, SystemMode::NoSwitch);
        assert_eq!(config.cc, CcScheme::WaitDie);
        assert_eq!(config.distributed_prob, 0.4);
        assert_eq!(config.seed, 7);
        assert_eq!(config.latency, LatencyConfig::zero());
    }

    #[test]
    fn batching_knobs_propagate_to_switch_and_engine() {
        let cluster = Cluster::builder(small_ycsb()).test_profile().batch_size(8).flush_us(25).build();
        assert_eq!(cluster.config().batch_size, 8);
        assert_eq!(cluster.config().switch.batch_size, 8);
        assert_eq!(cluster.config().switch.flush_us, 25);
        assert_eq!(cluster.shared().config.batch_size, 8);
        // batch_size(0) clamps to the unbatched behaviour instead of failing
        // validation.
        let unbatched = Cluster::builder(small_ycsb()).test_profile().batch_size(0).build();
        assert_eq!(unbatched.config().batch_size, 1);
        let stats = unbatched.run_for(Duration::from_millis(100));
        assert!(stats.merged.committed_total() > 0);
    }

    #[test]
    fn storage_knobs_propagate_to_node_storage_and_engine() {
        // storage_shards reaches every table of every node.
        let cluster = Cluster::builder(small_ycsb()).test_profile().storage_shards(8).build();
        for storage in cluster.shared().nodes.iter() {
            assert_eq!(storage.table(p4db_workloads::ycsb::YCSB_TABLE).unwrap().shard_count(), 8);
        }
        assert!(!cluster.shared().config.single_latch);
        // single_latch rebuilds the seed layout and flips the engine path.
        let seed = Cluster::builder(small_ycsb()).test_profile().single_latch(true).build();
        for storage in seed.shared().nodes.iter() {
            assert_eq!(storage.table(p4db_workloads::ycsb::YCSB_TABLE).unwrap().shard_count(), 1);
        }
        assert!(seed.shared().config.single_latch);
        let stats = seed.run_for(Duration::from_millis(100));
        assert!(stats.merged.committed_total() > 0, "the seed engine still serves traffic");
    }

    #[test]
    fn try_build_reports_invalid_configs_as_errors() {
        match Cluster::builder(small_ycsb()).nodes(0).try_build() {
            Err(err) => assert!(matches!(err, Error::InvalidConfig(_)), "got {err:?}"),
            Ok(_) => panic!("a zero-node cluster must not build"),
        }
    }

    #[test]
    fn run_for_commits_transactions_in_all_modes() {
        for mode in [SystemMode::NoSwitch, SystemMode::LmSwitch, SystemMode::P4db] {
            let cluster = Cluster::build(ClusterConfig::test_profile(mode, CcScheme::NoWait), small_ycsb());
            let stats = cluster.run_for(Duration::from_millis(200));
            assert!(
                stats.merged.committed_total() > 100,
                "{:?} committed only {}",
                mode,
                stats.merged.committed_total()
            );
            if mode == SystemMode::P4db {
                assert!(stats.merged.committed_hot > 0, "P4DB must execute hot transactions on the switch");
                assert!(cluster.switch_stats().txns_executed > 0);
            }
        }
    }

    #[test]
    fn sessions_execute_ad_hoc_transactions() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        let mut session = cluster.session(NodeId(0)).unwrap();
        let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);

        // Hot tuple (local key 1 on node 0): executed on the switch.
        let hot = session.execute(&Txn::new().add(t(1), 5)).unwrap();
        assert_eq!(hot.class, TxnClass::Hot);
        assert_eq!(hot.results[0], 5);
        assert!(hot.gid.is_some());

        // Cold tuples spanning both nodes: a distributed host transaction.
        let cold = session.execute(&Txn::new().add(t(100), 1).add(t(2_100), 2)).unwrap();
        assert_eq!(cold.class, TxnClass::Cold);
        assert_eq!(cold.results, vec![1, 2]);
        assert_eq!(session.stats().committed_total(), 2);

        // Sessions for unknown nodes are rejected.
        assert!(matches!(cluster.session(NodeId(9)), Err(Error::UnknownNode(_))));
    }

    #[test]
    fn open_loop_submission_overlaps_transactions() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        let mut session = cluster.session(NodeId(1)).unwrap();
        let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);
        let tickets: Vec<_> =
            (0..32).map(|i| session.submit(&Txn::new().add(t(2_000 + 100 + i), 1)).unwrap()).collect();
        for ticket in tickets {
            let outcome = session.wait(ticket).unwrap();
            assert_eq!(outcome.results[0], 1);
        }
        assert_eq!(session.stats().committed_total(), 32);
    }

    #[test]
    fn session_rejects_malformed_requests() {
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), small_ycsb());
        let mut session = cluster.session(NodeId(0)).unwrap();
        let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);

        // A read-dependency crossing the hot/cold split.
        let split = Txn::new().read(t(100)).add(t(1), 0).operand_from(0);
        assert!(matches!(session.execute(&split), Err(Error::InvalidTxn(_))));

        // An explicit home outside the cluster.
        use p4db_txn::{OpKind, TxnOp, TxnRequest};
        let bad = TxnRequest::new(vec![TxnOp::new(t(0), OpKind::Read, NodeId(7))]);
        assert!(matches!(session.execute_request(&bad), Err(Error::UnknownNode(_))));
    }

    #[test]
    fn offload_limit_caps_the_switch_resident_hot_set() {
        let mut config = ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait);
        config.offload_limit = Some(10);
        let cluster = Cluster::build(config, small_ycsb());
        assert_eq!(cluster.offloaded_tuples(), 10);
        let stats = cluster.run_for(Duration::from_millis(100));
        // Hot transactions over non-offloaded tuples fall back to the host
        // path, so both hot and cold/warm commits appear.
        assert!(stats.merged.committed_total() > 0);
    }

    #[test]
    fn node_crash_recovery_round_trips_the_serialised_wal() {
        let workload: Arc<dyn Workload> =
            Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
        let mut config = ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait);
        config.distributed_prob = 0.0; // single-partition traffic: unambiguous recovery
        let cluster = Cluster::build(config, workload);
        let _ = cluster.run_for(Duration::from_millis(150));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        let report = cluster.crash_and_recover_node(NodeId(0)).unwrap();
        assert!(report.wal_records > 0, "the run must have logged something");
        assert!(report.restored_tuples > 0);
        assert!(report.divergences.is_empty(), "recovered state diverges: {:?}", report.divergences);
        assert_eq!(report.ambiguous, 0);
        assert!(report.codec_error.is_none(), "{:?}", report.codec_error);
        // Recovering an unknown node is a structured error.
        assert!(matches!(cluster.crash_and_recover_node(NodeId(9)), Err(Error::UnknownNode(_))));
    }

    #[test]
    fn switch_crash_recovery_restores_registers_and_reoffload_swaps_the_index() {
        let workload: Arc<dyn Workload> =
            Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
        let mut cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), workload);
        let _ = cluster.run_for(Duration::from_millis(150));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));

        let live: Vec<(TupleId, u64)> = cluster.control_plane().snapshot();
        let old_slots: HashMap<TupleId, _> = cluster.shared().hot_index.load().iter().collect();

        // Plain restore first: values come back into the same placements.
        let report = cluster.crash_and_recover_switch(None).unwrap();
        assert!(!report.reoffloaded);
        assert!(report.unexplained_divergences.is_empty(), "{:?}", report.unexplained_divergences);
        assert_eq!(cluster.control_plane().snapshot(), live);

        // Re-offload: same values, fresh placements, index swapped.
        let report = cluster.crash_and_recover_switch(Some(7)).unwrap();
        assert!(report.reoffloaded);
        assert!(report.unexplained_divergences.is_empty(), "{:?}", report.unexplained_divergences);
        for (tuple, value) in &live {
            assert_eq!(cluster.switch_value(*tuple), Some(*value), "value of {tuple} lost in re-offload");
        }
        let new_slots: HashMap<TupleId, _> = cluster.shared().hot_index.load().iter().collect();
        assert_eq!(new_slots.len(), old_slots.len());
        assert!(
            old_slots.iter().any(|(t, slot)| new_slots.get(t) != Some(slot)),
            "a seeded re-offload should move at least one tuple"
        );
        // The epoch moved: the checker baseline is the restored state.
        assert_eq!(cluster.switch_epoch().audit_start, cluster.switch_audit().len());

        // The cluster still serves transactions against the new layout.
        let stats = cluster.run_for(Duration::from_millis(100));
        assert!(stats.merged.committed_total() > 0);
        assert!(stats.merged.committed_hot > 0, "hot path must survive the re-offload");
    }

    #[test]
    fn faulty_cluster_still_commits_and_records_its_fault_trace() {
        use p4db_common::faults::FaultPlan;
        let cluster = Cluster::builder(small_ycsb()).test_profile().with_faults(FaultPlan::seeded(11)).build();
        let stats = cluster.run_for(Duration::from_millis(200));
        assert!(stats.merged.committed_total() > 10, "faults must degrade, not stop, the cluster");
        assert!(cluster.faults_injected() > 0, "the seeded plan should have fired");
        assert!(!cluster.fault_trace().is_empty());
        cluster.flush_network();
        // The audit log was forced on and tracks executions.
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        assert_eq!(cluster.switch_audit().len() as u64, cluster.switch_stats().txns_executed);
    }

    #[test]
    fn two_switch_cluster_partitions_the_hot_set_and_commits() {
        let cluster = Cluster::builder(small_ycsb()).test_profile().switches(2).build();
        assert_eq!(cluster.num_switches(), 2);
        assert_eq!(cluster.offloaded_tuples(), 100, "the full hot set is offloaded across the topology");
        let index = cluster.shared().hot_index.load();
        for s in 0..2u16 {
            let owned = index.iter_with_owner().filter(|&(_, sw, _)| sw == SwitchId(s)).count();
            assert_eq!(owned, 50, "balanced capacity forces an even split, switch{s} holds {owned}");
            assert_eq!(cluster.control_plane_at(SwitchId(s)).offloaded_tuples(), owned);
        }
        // Every hot tuple is readable through the topology-wide view.
        for (tuple, _) in index.iter() {
            assert!(cluster.switch_value(tuple).is_some(), "{tuple} unreadable");
        }
        let stats = cluster.run_for(Duration::from_millis(200));
        assert!(stats.merged.committed_total() > 100);
        assert!(stats.merged.committed_hot > 0, "hot transactions execute on the switches");
        for s in 0..2u16 {
            assert!(
                cluster.switch_stats_at(SwitchId(s)).txns_executed > 0,
                "switch{s} received no traffic — routing is not per-owner"
            );
        }
    }

    #[test]
    fn zero_switch_topologies_are_invalid_configs() {
        match Cluster::builder(small_ycsb()).test_profile().switches(0).try_build() {
            Err(Error::InvalidConfig(msg)) => assert!(msg.contains("switch"), "{msg}"),
            other => panic!("a zero-switch cluster must not build: {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn multi_switch_hot_set_over_aggregate_capacity_is_an_invalid_config() {
        // 2 switches × 48 cells < 100 hot tuples: the multi-switch splitter
        // rejects the topology instead of silently capping (the cap is the
        // documented single-switch Fig 17 behaviour).
        let tiny = SwitchConfig { slots_per_array: 6, ..SwitchConfig::tiny() };
        assert_eq!(tiny.total_slots(), 48);
        match Cluster::builder(small_ycsb()).test_profile().switch(tiny).switches(2).try_build() {
            Err(Error::InvalidConfig(msg)) => assert!(msg.contains("aggregate"), "{msg}"),
            other => panic!("an oversubscribed multi-switch cluster must not build: {:?}", other.map(|_| ())),
        }
        // The same geometry with one switch keeps the capping semantics.
        let capped = Cluster::builder(small_ycsb()).test_profile().switch(tiny).build();
        assert_eq!(capped.offloaded_tuples(), 48);
    }

    #[test]
    fn per_switch_crash_recovery_touches_only_the_crashed_switch() {
        let workload: Arc<dyn Workload> =
            Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
        let mut cluster = Cluster::builder(workload).test_profile().switches(2).build();
        let _ = cluster.run_for(Duration::from_millis(150));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));

        let live0 = cluster.control_plane_at(SwitchId(0)).snapshot();
        let live1 = cluster.control_plane_at(SwitchId(1)).snapshot();
        let audit0 = cluster.switch_epoch_at(SwitchId(0)).audit_start;

        // Crash switch 1 only: its values come back, switch 0's epoch and
        // registers are untouched.
        let report = cluster.crash_and_recover_switch_at(SwitchId(1), None).unwrap();
        assert!(!report.reoffloaded);
        assert!(report.unexplained_divergences.is_empty(), "{:?}", report.unexplained_divergences);
        assert_eq!(cluster.control_plane_at(SwitchId(1)).snapshot(), live1);
        assert_eq!(cluster.control_plane_at(SwitchId(0)).snapshot(), live0);
        assert_eq!(cluster.switch_epoch_at(SwitchId(0)).audit_start, audit0, "switch 0's epoch must not move");
        assert_eq!(
            cluster.switch_epoch_at(SwitchId(1)).audit_start,
            cluster.switch_audit_at(SwitchId(1)).len(),
            "switch 1 starts a fresh epoch"
        );
        // Satellite: the crashed switch's offload snapshot was recaptured.
        assert_eq!(
            cluster.offload_snapshot_at(SwitchId(1)),
            &cluster.switch_epoch_at(SwitchId(1)).baseline.clone(),
            "snapshot must equal the new epoch baseline"
        );

        // A seeded re-offload of switch 1 moves placements there only.
        let slots_before0: HashMap<TupleId, _> = cluster.control_plane_at(SwitchId(0)).placements().collect();
        let report = cluster.crash_and_recover_switch_at(SwitchId(1), Some(9)).unwrap();
        assert!(report.reoffloaded);
        assert!(report.unexplained_divergences.is_empty(), "{:?}", report.unexplained_divergences);
        let slots_after0: HashMap<TupleId, _> = cluster.control_plane_at(SwitchId(0)).placements().collect();
        assert_eq!(slots_before0, slots_after0, "switch 0's placements must not move");
        for (tuple, value) in &live1 {
            assert_eq!(cluster.switch_value(*tuple), Some(*value), "value of {tuple} lost in re-offload");
        }
        // Recovering a switch outside the topology is a structured error.
        assert!(matches!(cluster.crash_and_recover_switch_at(SwitchId(7), None), Err(Error::InvalidConfig(_))));

        // The cluster still serves hot traffic on both switches.
        let stats = cluster.run_for(Duration::from_millis(150));
        assert!(stats.merged.committed_hot > 0);
    }

    fn small_smallbank() -> Arc<dyn Workload> {
        Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }))
    }

    #[test]
    fn durability_knobs_propagate_and_checkpointed_recovery_replays_only_the_tail() {
        let cluster = Cluster::builder(small_smallbank())
            .test_profile()
            .distributed_prob(0.0) // single-partition traffic: unambiguous recovery
            .wal_segment_records(32)
            .checkpoint_interval(64)
            .build();
        assert_eq!(cluster.config().wal_codec, WalCodec::Binary);
        for storage in cluster.shared().nodes.iter() {
            assert_eq!(storage.wal().segment_capacity(), 32, "segment knob must reach every node's WAL");
        }
        let _ = cluster.run_for(Duration::from_millis(150));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        assert!(cluster.maybe_checkpoint() > 0, "the run must have crossed the checkpoint interval");
        let _ = cluster.run_for(Duration::from_millis(100));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        let report = cluster.crash_and_recover_node(NodeId(0)).unwrap();
        assert!(report.from_checkpoint.is_some(), "a complete checkpoint must be used");
        assert!(report.checkpoint_rows > 0);
        assert!(
            report.tail_records < report.wal_records,
            "the tail ({}) must be shorter than the full log ({})",
            report.tail_records,
            report.wal_records
        );
        assert!(report.divergences.is_empty(), "checkpoint+tail diverges: {:?}", report.divergences);
        assert_eq!(report.ambiguous, 0);
        assert!(report.codec_error.is_none(), "{:?}", report.codec_error);
    }

    #[test]
    fn torn_checkpoint_generations_fall_back_to_the_previous_complete_one() {
        let cluster = Cluster::builder(small_smallbank()).test_profile().distributed_prob(0.0).build();
        let _ = cluster.run_for(Duration::from_millis(100));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        let first = cluster.checkpoint_node(NodeId(0)).unwrap();
        let _ = cluster.run_for(Duration::from_millis(100));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        let second = cluster.checkpoint_node(NodeId(0)).unwrap();
        assert!(second > first);
        // The crash hit mid-checkpoint-write: the newest blob is torn.
        // Recovery must skip it and use the previous complete generation.
        assert!(cluster.shared().node(NodeId(0)).checkpoints().tear_latest(17));
        let report = cluster.crash_and_recover_node(NodeId(0)).unwrap();
        assert_eq!(report.from_checkpoint, Some(first), "recovery must fall back past the torn generation");
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert!(report.codec_error.is_none(), "{:?}", report.codec_error);
    }

    #[test]
    fn text_codec_arm_recovers_equivalently() {
        let cluster =
            Cluster::builder(small_smallbank()).test_profile().distributed_prob(0.0).wal_codec(WalCodec::Text).build();
        let _ = cluster.run_for(Duration::from_millis(100));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        cluster.checkpoint_node(NodeId(1)).unwrap();
        let _ = cluster.run_for(Duration::from_millis(100));
        assert!(cluster.quiesce_switch(Duration::from_secs(5)));
        let report = cluster.crash_and_recover_node(NodeId(1)).unwrap();
        assert!(report.from_checkpoint.is_some());
        assert!(report.divergences.is_empty(), "text arm diverges: {:?}", report.divergences);
        assert!(report.codec_error.is_none(), "{:?}", report.codec_error);
    }

    #[test]
    fn smallbank_cluster_preserves_non_negative_switch_balances() {
        let workload: Arc<dyn Workload> =
            Arc::new(SmallBank::new(SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() }));
        let cluster = Cluster::build(ClusterConfig::test_profile(SystemMode::P4db, CcScheme::NoWait), workload);
        let _ = cluster.run_for(Duration::from_millis(200));
        for (tuple, _) in cluster.shared().hot_index.load().iter() {
            let value = cluster.switch_value(tuple).unwrap();
            assert!((value as i64) >= 0, "balance of {tuple} went negative: {value}");
        }
    }
}
