//! Fluent cluster construction.
//!
//! [`ClusterBuilder`] replaces field-bag [`ClusterConfig`] literals for
//! library users: start from [`Cluster::builder`], override what the
//! experiment needs, and `build()`. `ClusterConfig` remains the internal
//! resolved form (and stays constructible directly for the benchmark
//! harness's sweep loops).

use crate::cluster::{Cluster, ClusterConfig};
use p4db_common::faults::FaultPlan;
use p4db_common::{CcScheme, LatencyConfig, Result, SystemMode};
use p4db_layout::LayoutStrategy;
use p4db_storage::WalCodec;
use p4db_switch::SwitchConfig;
use p4db_workloads::Workload;
use std::sync::Arc;

/// Fluent builder for a [`Cluster`].
///
/// ```
/// use p4db_common::{CcScheme, SystemMode};
/// use p4db_core::Cluster;
/// use p4db_workloads::{Workload, Ycsb, YcsbConfig, YcsbMix};
/// use std::sync::Arc;
///
/// let workload: Arc<dyn Workload> =
///     Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 1_000, ..YcsbConfig::new(YcsbMix::A) }));
/// let cluster = Cluster::builder(workload)
///     .nodes(4)
///     .workers(2)
///     .mode(SystemMode::P4db)
///     .cc(CcScheme::NoWait)
///     .test_latencies() // zero-latency functional profile; omit to measure
///     .build();
/// assert_eq!(cluster.config().num_nodes, 4);
/// ```
pub struct ClusterBuilder {
    workload: Arc<dyn Workload>,
    config: ClusterConfig,
}

impl ClusterBuilder {
    /// Starts from the default experiment configuration (4×4 P4DB cluster,
    /// NO_WAIT, slow-motion benchmark latencies).
    pub fn new(workload: Arc<dyn Workload>) -> Self {
        ClusterBuilder { workload, config: ClusterConfig::new(SystemMode::P4db, CcScheme::NoWait) }
    }

    /// Number of database nodes.
    pub fn nodes(mut self, num_nodes: u16) -> Self {
        self.config.num_nodes = num_nodes;
        self
    }

    /// Executor threads per node (the submission pool size; also the
    /// closed-loop driver's generator count).
    pub fn workers(mut self, workers_per_node: u16) -> Self {
        self.config.workers_per_node = workers_per_node;
        self
    }

    /// Number of programmable switches the hot set is partitioned over.
    /// Defaults to 1 — the paper's single-switch topology, byte-compatible
    /// with every previous configuration. With `n >= 2` the hot set is split
    /// across the switches by the capacity-aware co-access assignment and
    /// each switch runs its own data-plane engine; hot transactions touching
    /// tuples owned by two switches fall back to the host path. `0` is
    /// rejected by [`ClusterBuilder::try_build`] as
    /// [`p4db_common::Error::InvalidConfig`].
    pub fn switches(mut self, num_switches: u16) -> Self {
        self.config.num_switches = num_switches;
        self
    }

    /// System variant: No-Switch, LM-Switch or full P4DB.
    pub fn mode(mut self, mode: SystemMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Host concurrency-control scheme for cold/warm transactions.
    pub fn cc(mut self, cc: CcScheme) -> Self {
        self.config.cc = cc;
        self
    }

    /// Network latency model.
    pub fn latency(mut self, latency: LatencyConfig) -> Self {
        self.config.latency = latency;
        self
    }

    /// Switch pipeline geometry.
    pub fn switch(mut self, switch: SwitchConfig) -> Self {
        self.config.switch = switch;
        self
    }

    /// Hot-set layout strategy.
    pub fn layout(mut self, layout: LayoutStrategy) -> Self {
        self.config.layout = layout;
        self
    }

    /// Fraction of *generated* transactions that are distributed (only
    /// affects the built-in workload generators, not ad-hoc sessions).
    pub fn distributed_prob(mut self, prob: f64) -> Self {
        self.config.distributed_prob = prob;
        self
    }

    /// Chiller-style contention-centric host execution (Fig 18b baseline).
    pub fn chiller(mut self, chiller: bool) -> Self {
        self.config.chiller = chiller;
        self
    }

    /// Caps how many hot tuples are offloaded (Fig 17 capacity experiment).
    pub fn offload_limit(mut self, limit: usize) -> Self {
        self.config.offload_limit = Some(limit);
        self
    }

    /// Hot-path batching degree for both the switch engine (packets dequeued
    /// and replies coalesced per scheduling quantum) and the executor pool
    /// (queued all-hot transactions pipelined per frame, intents and results
    /// group-committed). `1` disables batching and reproduces the unbatched
    /// behaviour exactly; values below 1 are clamped to 1.
    pub fn batch_size(mut self, batch_size: u16) -> Self {
        self.config.batch_size = batch_size.max(1);
        self
    }

    /// Flush deadline (µs) for partially filled switch reply frames.
    pub fn flush_us(mut self, flush_us: u64) -> Self {
        self.config.flush_us = flush_us;
        self
    }

    /// Shard count of every node's row store and secondary indexes (rounded
    /// up to a power of two; values below 1 are clamped to 1). The default
    /// of 64 matches the 2PL lock table; `1` is the seed's single-latch
    /// layout without the seed's per-op engine path — see
    /// [`ClusterBuilder::single_latch`] for the full pre-sharding baseline.
    pub fn storage_shards(mut self, shards: u16) -> Self {
        self.config.storage_shards = shards.max(1);
        self
    }

    /// Rebuilds the pre-sharding node hot path exactly: single-shard
    /// storage plus the seed's per-op lock/lookup/release engine path. The
    /// baseline arm of the node-scaling benchmark and the sharding
    /// differential suite.
    pub fn single_latch(mut self, single_latch: bool) -> Self {
        self.config.single_latch = single_latch;
        self
    }

    /// Serialisation arm the durability paths round-trip the WAL through:
    /// the segmented binary codec (the default) or the line-oriented text
    /// codec kept as the compatibility/differential arm.
    pub fn wal_codec(mut self, codec: WalCodec) -> Self {
        self.config.wal_codec = codec;
        self
    }

    /// Records per sealed WAL segment (binary arm; clamped to at least 1).
    pub fn wal_segment_records(mut self, records: usize) -> Self {
        self.config.wal_segment_records = records.max(1);
        self
    }

    /// Fuzzy-checkpoint cadence for [`Cluster::maybe_checkpoint`]: a node is
    /// checkpointed once its own WAL grows by this many records since its
    /// last complete checkpoint.
    pub fn checkpoint_interval(mut self, records: u64) -> Self {
        self.config.checkpoint_interval = Some(records.max(1));
        self
    }

    /// Cap on each row's version-chain length (clamped to at least 1). A
    /// commit that grows a chain past the cap trims that row's versions
    /// below the cluster low-watermark inline; the default of
    /// [`p4db_storage::DEFAULT_VERSION_CAP`] keeps chains short without
    /// making writers chase the watermark on every commit.
    pub fn version_cap(mut self, cap: usize) -> Self {
        self.config.version_cap = cap.max(1);
        self
    }

    /// Background version-GC cadence for [`Cluster::run_for`]: a collector
    /// thread sweeps every row's version chain below the cluster
    /// low-watermark at this interval (per-shard latches, no global pause).
    /// Without it, reclamation happens only at the commit-time cap and on
    /// explicit [`Cluster::collect_versions`] calls.
    pub fn gc_interval(mut self, interval: std::time::Duration) -> Self {
        self.config.gc_interval = Some(interval);
        self
    }

    /// RNG seed for generators and backoff.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Attaches a seeded fault-injection plan: the fabric drops, delays and
    /// reorders messages per the plan, workers use its short switch-reply
    /// timeout (lost packets surface as in-doubt transactions instead of
    /// stalls), and the switch keeps its data-plane audit log so the
    /// `p4db-chaos` invariant checker can verify the run afterwards.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Per-switch circuit-breaker thresholds for the self-healing path.
    /// Disabled by default (the byte-compatible PR-9 behaviour): switch
    /// timeouts surface as in-doubt commits but never demote traffic. With
    /// an enabled config, `failure_threshold` consecutive timeouts open the
    /// breaker (hot transactions on that switch fast-fail to the host 2PL
    /// path) and `close_threshold` consecutive answered probes re-admit it.
    pub fn breaker(mut self, breaker: p4db_txn::BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Heartbeat cadence of the supervisor loop: how often every
    /// open-breaker switch is probed (and freshly tripped breakers stood up
    /// in degraded mode).
    pub fn probe_interval(mut self, interval: std::time::Duration) -> Self {
        self.config.probe_interval = interval;
        self
    }

    /// Whether drivers should run under the self-healing supervisor
    /// ([`Cluster::supervise_until`]): detect trips, degrade, probe, resolve
    /// in-doubt transactions and re-admit — no manual recovery calls.
    pub fn supervisor(mut self, supervisor: bool) -> Self {
        self.config.supervisor = supervisor;
        self
    }

    /// Retry budget for each in-doubt intent-status query
    /// ([`crate::Session::resolve_in_doubt`]); clamped to at least 1 at use.
    pub fn resolver_retries(mut self, retries: u32) -> Self {
        self.config.resolver_retries = retries;
        self
    }

    /// Zero latencies and a tiny switch: the functional-test profile, for
    /// when wall-clock time is irrelevant.
    pub fn test_latencies(mut self) -> Self {
        self.config.latency = LatencyConfig::zero();
        self.config.switch = SwitchConfig::tiny();
        self
    }

    /// The full functional-test profile: 2 nodes × 2 workers with
    /// [`ClusterBuilder::test_latencies`].
    pub fn test_profile(self) -> Self {
        self.nodes(2).workers(2).test_latencies()
    }

    /// The resolved configuration as built so far.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Builds the cluster: loads every partition, plans and offloads the hot
    /// set, starts the switch and the submission pool.
    ///
    /// # Panics
    /// Panics on an invalid configuration, like [`Cluster::build`].
    pub fn build(self) -> Cluster {
        Cluster::build(self.config, self.workload)
    }

    /// Like [`ClusterBuilder::build`], but reports construction failures
    /// (invalid switch geometry, exhausted worker-id space) as errors.
    pub fn try_build(self) -> Result<Cluster> {
        Cluster::try_build(self.config, self.workload)
    }
}
