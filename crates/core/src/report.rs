//! Tabular reporting for the benchmark harness: every bench target prints the
//! rows/series of the paper figure it reproduces through a [`FigureTable`].

use p4db_common::stats::RunStats;

/// One reproduced figure (or sub-figure): a title plus a simple table.
#[derive(Clone, Debug)]
pub struct FigureTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl FigureTable {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        FigureTable { title: title.into(), headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Renders the table as github-flavoured markdown (used for
    /// EXPERIMENTS.md and the bench output).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Formats a throughput in transactions/second with a thousands separator.
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1_000_000.0 {
        format!("{:.2}M", tps / 1_000_000.0)
    } else if tps >= 1_000.0 {
        format!("{:.1}K", tps / 1_000.0)
    } else {
        format!("{tps:.0}")
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(speedup: f64) -> String {
    format!("{speedup:.2}x")
}

/// Speedup of `system` over `baseline` throughput.
pub fn speedup(system: &RunStats, baseline: &RunStats) -> f64 {
    let base = baseline.throughput();
    if base <= f64::EPSILON {
        0.0
    } else {
        system.throughput() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::stats::{TxnClass, WorkerStats};
    use std::time::Duration;

    fn run_with(commits: u64) -> RunStats {
        let mut w = WorkerStats::new();
        for _ in 0..commits {
            w.record_commit(TxnClass::Cold, Duration::from_micros(1));
        }
        RunStats::from_workers([&w], Duration::from_secs(1))
    }

    #[test]
    fn markdown_table_has_header_separator_and_rows() {
        let mut t = FigureTable::new("Fig X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_is_rejected() {
        let mut t = FigureTable::new("Fig", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn speedup_and_formatting() {
        let fast = run_with(3_000);
        let slow = run_with(1_000);
        assert!((speedup(&fast, &slow) - 3.0).abs() < 1e-9);
        assert_eq!(fmt_speedup(3.0), "3.00x");
        assert_eq!(fmt_tps(1_500.0), "1.5K");
        assert_eq!(fmt_tps(2_500_000.0), "2.50M");
        assert_eq!(fmt_tps(12.0), "12");
    }

    #[test]
    fn zero_baseline_speedup_is_zero() {
        let fast = run_with(100);
        let zero = run_with(0);
        assert_eq!(speedup(&fast, &zero), 0.0);
    }
}
