//! Tabular reporting for the benchmark harness: every bench target prints the
//! rows/series of the paper figure it reproduces through a [`FigureTable`],
//! and additionally records each measured data point as a machine-readable
//! [`BenchPoint`] — the raw numbers behind the formatted cells — which the
//! bench targets serialise into `BENCH_*.json` for regression tracking.

use p4db_common::stats::RunStats;

/// One machine-readable benchmark datapoint with the stable schema
/// `{figure, params, tps, p50_us, p99_us, speedup}` serialised into
/// `BENCH_*.json`. `speedup` is relative to the row's baseline system
/// (`1.0` when the row has none).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    /// Figure identifier (`fig01`, `fig13`, `micro`, ...).
    pub figure: String,
    /// Human-readable parameter key uniquely naming the datapoint within its
    /// figure (workload, worker count, sweep value, ...).
    pub params: String,
    /// Committed transactions per second of the system under test.
    pub tps: f64,
    /// Median commit latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile commit latency in microseconds.
    pub p99_us: f64,
    /// Throughput relative to the row's baseline system.
    pub speedup: f64,
}

impl BenchPoint {
    /// Builds a datapoint from a measured run, taking latency quantiles from
    /// its merged histogram and the speedup from the optional baseline run.
    pub fn from_run(
        figure: impl Into<String>,
        params: impl Into<String>,
        system: &RunStats,
        baseline: Option<&RunStats>,
    ) -> Self {
        BenchPoint {
            figure: figure.into(),
            params: params.into(),
            tps: system.throughput(),
            p50_us: system.merged.commit_latency.quantile(0.5).as_secs_f64() * 1e6,
            p99_us: system.merged.commit_latency.quantile(0.99).as_secs_f64() * 1e6,
            speedup: baseline.map(|b| speedup(system, b)).unwrap_or(1.0),
        }
    }

    /// Builds a datapoint from raw rates (microbenchmarks without a
    /// latency histogram): `per_op_us` stands in for both quantiles.
    pub fn from_rates(
        figure: impl Into<String>,
        params: impl Into<String>,
        ops_per_sec: f64,
        per_op_us: f64,
        speedup: f64,
    ) -> Self {
        BenchPoint {
            figure: figure.into(),
            params: params.into(),
            tps: ops_per_sec,
            p50_us: per_op_us,
            p99_us: per_op_us,
            speedup,
        }
    }
}

/// One reproduced figure (or sub-figure): a title plus a simple table, and
/// the machine-readable datapoints behind the formatted rows.
#[derive(Clone, Debug)]
pub struct FigureTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub points: Vec<BenchPoint>,
}

impl FigureTable {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        FigureTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            points: Vec::new(),
        }
    }

    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Records the machine-readable datapoint behind the most recent row(s).
    pub fn push_point(&mut self, point: BenchPoint) {
        self.points.push(point);
    }

    /// Renders the table as github-flavoured markdown (used for
    /// EXPERIMENTS.md and the bench output).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Formats a throughput in transactions/second with a thousands separator.
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1_000_000.0 {
        format!("{:.2}M", tps / 1_000_000.0)
    } else if tps >= 1_000.0 {
        format!("{:.1}K", tps / 1_000.0)
    } else {
        format!("{tps:.0}")
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(speedup: f64) -> String {
    format!("{speedup:.2}x")
}

/// Formats a run's transaction-class mix: hot / warm / cold commits plus the
/// cross-switch fallbacks — transactions whose hot set spanned more than one
/// switch and were demoted to the host 2PL path (always 0 in a single-switch
/// topology). The multi-switch figures print this next to the throughput so
/// a poor switch assignment is visible as a high `xswitch` share.
pub fn fmt_class_mix(stats: &RunStats) -> String {
    let m = &stats.merged;
    format!(
        "hot={} warm={} cold={} xswitch={}",
        m.committed_hot, m.committed_warm, m.committed_cold, m.cross_switch_fallback
    )
}

/// Speedup of `system` over `baseline` throughput.
pub fn speedup(system: &RunStats, baseline: &RunStats) -> f64 {
    let base = baseline.throughput();
    if base <= f64::EPSILON {
        0.0
    } else {
        system.throughput() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::stats::{TxnClass, WorkerStats};
    use std::time::Duration;

    fn run_with(commits: u64) -> RunStats {
        let mut w = WorkerStats::new();
        for _ in 0..commits {
            w.record_commit(TxnClass::Cold, Duration::from_micros(1));
        }
        RunStats::from_workers([&w], Duration::from_secs(1))
    }

    #[test]
    fn markdown_table_has_header_separator_and_rows() {
        let mut t = FigureTable::new("Fig X", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_is_rejected() {
        let mut t = FigureTable::new("Fig", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn speedup_and_formatting() {
        let fast = run_with(3_000);
        let slow = run_with(1_000);
        assert!((speedup(&fast, &slow) - 3.0).abs() < 1e-9);
        assert_eq!(fmt_speedup(3.0), "3.00x");
        assert_eq!(fmt_tps(1_500.0), "1.5K");
        assert_eq!(fmt_tps(2_500_000.0), "2.50M");
        assert_eq!(fmt_tps(12.0), "12");
    }

    #[test]
    fn class_mix_reports_cross_switch_fallbacks() {
        let mut w = WorkerStats::new();
        w.record_commit(TxnClass::Hot, Duration::from_micros(1));
        w.record_commit(TxnClass::Warm, Duration::from_micros(1));
        w.cross_switch_fallback = 3;
        let stats = RunStats::from_workers([&w], Duration::from_secs(1));
        assert_eq!(fmt_class_mix(&stats), "hot=1 warm=1 cold=0 xswitch=3");
    }

    #[test]
    fn zero_baseline_speedup_is_zero() {
        let fast = run_with(100);
        let zero = run_with(0);
        assert_eq!(speedup(&fast, &zero), 0.0);
    }

    #[test]
    fn bench_point_from_run_carries_rates_and_quantiles() {
        let fast = run_with(3_000);
        let slow = run_with(1_000);
        let point = BenchPoint::from_run("fig01", "YCSB-A", &fast, Some(&slow));
        assert_eq!(point.figure, "fig01");
        assert!((point.tps - 3_000.0).abs() < 1e-9);
        assert!((point.speedup - 3.0).abs() < 1e-9);
        assert!(point.p50_us > 0.0 && point.p99_us >= point.p50_us);
        let no_base = BenchPoint::from_run("fig01", "YCSB-A", &fast, None);
        assert_eq!(no_base.speedup, 1.0);
        let raw = BenchPoint::from_rates("micro", "wal", 5e6, 0.2, 1.0);
        assert_eq!(raw.p50_us, raw.p99_us);
    }

    #[test]
    fn figure_table_accumulates_points() {
        let mut t = FigureTable::new("Fig", &["a"]);
        t.push_point(BenchPoint::from_rates("figx", "p", 1.0, 1.0, 1.0));
        assert_eq!(t.points.len(), 1);
    }
}
