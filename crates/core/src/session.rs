//! Client sessions and the per-node open-loop submission pool.
//!
//! The pool decouples *submitting* a transaction from *executing* it: every
//! node owns `workers_per_node` executor threads fed by one MPMC queue (the
//! in-house `p4db_common::channel`), so any number of lightweight [`Session`]
//! handles can drive the cluster concurrently — closed-loop via
//! [`Session::execute`], or open-loop via [`Session::submit`] +
//! [`Session::wait`] — without owning a worker thread. The benchmark driver
//! (`Cluster::run_for`) is itself a session client, so the closed-loop
//! measurement path and the ad-hoc client path are the same code.

use p4db_common::channel::{unbounded, Receiver, SendError, Sender};
use p4db_common::rand_util::FastRng;
use p4db_common::simtime::wait_for;
use p4db_common::stats::WorkerStats;
use p4db_common::{Error, NodeId, Result, SystemMode, WorkerId};
use p4db_net::{EndpointId, RecvOutcome};
use p4db_switch::{IntentStatusRequest, SwitchMessage};
use p4db_txn::{EngineShared, OpKind, Txn, TxnOp, TxnOutcome, TxnRequest, Worker};
use p4db_workloads::PartitionMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cluster::ClusterConfig;

/// Default cap on execution attempts per submitted transaction, matching the
/// closed-loop driver's historical retry budget.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 1000;

/// One unit of work travelling from a session to a pool executor.
pub(crate) enum Job {
    Execute {
        req: TxnRequest,
        max_attempts: u32,
        /// Cooperative cancellation: checked between retry attempts so a
        /// closed-loop driver's stop signal ends a retry storm promptly.
        cancel: Option<Arc<AtomicBool>>,
        reply: Sender<JobReply>,
    },
    /// Poison pill: the receiving executor exits without re-queueing it.
    Shutdown,
}

/// What an executor sends back for one job: the outcome plus everything the
/// engine recorded while producing it (phases, switch passes, aborts, the
/// commit itself). The waiting session folds the stats into its own counters,
/// which is how `run_for` assembles a complete [`p4db_common::stats::RunStats`]
/// without workers that outlive the measurement window.
pub(crate) struct JobReply {
    pub result: Result<TxnOutcome>,
    pub stats: WorkerStats,
}

/// Process-wide worker-endpoint allocator: every spawned executor gets a
/// fresh endpoint id so repeated cluster builds in one process never collide
/// on the fabric registry. The id space is a `u16` (it is embedded in
/// transaction ids and switch packets); exhausting it is reported as
/// [`Error::WorkerIdSpaceExhausted`] instead of silently wrapping into a
/// fabric endpoint collision panic.
/// Allocates a fabric endpoint for out-of-band control traffic (supervisor
/// probes, in-doubt status queries). The high bit keeps these clear of real
/// node ids and of the recovery drill's fixed `NodeId(u16::MAX)` resend
/// endpoint; a fresh id per caller sidesteps the fabric's duplicate-
/// registration panic across repeated cluster builds in one process.
pub(crate) fn rogue_endpoint() -> EndpointId {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, AtomicOrdering::Relaxed);
    EndpointId::Node(NodeId(0x8000 | (n as u16 & 0x3FFF)))
}

fn next_worker_slot() -> Result<WorkerId> {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let slot = NEXT.fetch_add(1, AtomicOrdering::Relaxed);
    if slot > u16::MAX as u32 {
        // Park the counter just past the limit so it cannot creep towards a
        // u32 wrap-around over billions of failed calls.
        NEXT.store(u16::MAX as u32 + 1, AtomicOrdering::Relaxed);
        return Err(Error::WorkerIdSpaceExhausted);
    }
    Ok(WorkerId(slot as u16))
}

/// The per-node executor pool. Owned by the cluster; dropped before the
/// switch handle so in-flight jobs can still complete.
pub(crate) struct SubmissionPool {
    /// One submission queue per node, indexed by `NodeId`.
    queues: Vec<Sender<Job>>,
    threads_per_node: u16,
    handles: Vec<JoinHandle<()>>,
}

impl SubmissionPool {
    /// Spawns `workers_per_node` executor threads per node, each owning a
    /// registered fabric endpoint.
    pub(crate) fn spawn(shared: &Arc<EngineShared>, config: &ClusterConfig) -> Result<SubmissionPool> {
        let backoff = Duration::from_nanos(config.latency.one_way_ns / 2);
        let mut queues = Vec::with_capacity(config.num_nodes as usize);
        let mut handles = Vec::new();
        for node in 0..config.num_nodes {
            let (tx, rx) = unbounded();
            for slot in 0..config.workers_per_node {
                let wid = next_worker_slot()?;
                let shared = Arc::clone(shared);
                let rx = rx.clone();
                // Executors drain jobs in batches; a drained batch can
                // contain other executors' poison pills, which are
                // re-forwarded through this sender (see `executor_loop`).
                let pill_tx = tx.clone();
                let seed = config.seed ^ ((wid.0 as u64) << 32) ^ 0xC0FF_EE00;
                let thread = std::thread::Builder::new()
                    .name(format!("p4db-exec-{node}.{slot}"))
                    .spawn(move || executor_loop(shared, NodeId(node), wid, rx, pill_tx, backoff, seed))
                    .expect("spawn executor thread");
                handles.push(thread);
            }
            queues.push(tx);
        }
        Ok(SubmissionPool { queues, threads_per_node: config.workers_per_node, handles })
    }

    pub(crate) fn queue(&self, node: NodeId) -> Option<&Sender<Job>> {
        self.queues.get(node.index())
    }
}

impl Drop for SubmissionPool {
    fn drop(&mut self) {
        // One poison pill per executor; the MPMC queue delivers each exactly
        // once, and jobs enqueued before the pills are still served.
        for queue in &self.queues {
            for _ in 0..self.threads_per_node {
                let _ = queue.send(Job::Shutdown);
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Body of one executor thread: drain up to `batch_size` queued jobs, run
/// the all-hot ones pipelined through [`Worker::execute_batch`] (intents
/// group-committed, packets framed, replies drained together) and the rest
/// one at a time — each to commit or to its retry budget (jittered
/// exponential latency-proportional backoff between attempts, as the paper's
/// closed-loop workers do) — then reply with the outcome and the recorded
/// statistics.
/// With `batch_size <= 1`, or whenever the queue holds a single job, this is
/// exactly the historical one-job-at-a-time loop.
fn executor_loop(
    shared: Arc<EngineShared>,
    node: NodeId,
    wid: WorkerId,
    rx: Receiver<Job>,
    pill_tx: Sender<Job>,
    backoff: Duration,
    seed: u64,
) {
    let batch_size = shared.config.batch_size.max(1) as usize;
    let mut worker = Worker::new(shared, node, wid);
    let mut rng = FastRng::new(seed);
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        if batch_size > 1 {
            jobs.extend(rx.try_recv_many(batch_size - 1));
        }
        let mut pills = 0usize;
        let mut work = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job {
                Job::Execute { req, max_attempts, cancel, reply } => work.push((req, max_attempts, cancel, reply)),
                Job::Shutdown => pills += 1,
            }
        }
        if work.len() == 1 {
            // A drained batch can legally be all pills (leaving `work`
            // empty), and an executor must never panic over its batch
            // composition — a dead executor strands every job still queued
            // behind it. Serve the job if there is one, never assert.
            if let Some((req, max_attempts, cancel, reply)) = work.pop() {
                // A dropped ticket only abandons this job's own statistics,
                // exactly as before batching.
                let _ = serve_job(&mut worker, &mut rng, backoff, &req, max_attempts, &cancel, None, reply);
            }
        } else if !work.is_empty() {
            let started = Instant::now();
            // Borrowed, not cloned: the jobs keep ownership of their
            // requests for the per-job retry path below.
            let reqs: Vec<&TxnRequest> = work.iter().map(|(req, ..)| req).collect();
            let mut batch_stats = WorkerStats::new();
            let firsts = worker.execute_batch(&reqs, &mut batch_stats);
            drop(reqs);
            // The batch's engine-phase statistics ride with the first job
            // whose session still listens (sessions are merged into one
            // RunStats, so totals stay exact even when tickets are dropped);
            // commits and latencies are recorded per job.
            let mut carry = batch_stats;
            for ((req, max_attempts, cancel, reply), first) in work.into_iter().zip(firsts) {
                let stats = std::mem::take(&mut carry);
                if let Some(undelivered) = serve_job(
                    &mut worker,
                    &mut rng,
                    backoff,
                    &req,
                    max_attempts,
                    &cancel,
                    Some((started, first, stats)),
                    reply,
                ) {
                    carry = undelivered;
                }
            }
        }
        if pills > 0 {
            // A drained batch may have swallowed pills addressed to other
            // executors: keep one for ourselves, hand the rest back.
            for _ in 1..pills {
                let _ = pill_tx.send(Job::Shutdown);
            }
            break;
        }
    }
}

/// Runs one job to commit or to its retry budget and sends the reply. The
/// batched path passes the already-obtained first attempt (plus its start
/// instant and the statistics recorded while producing it); retries — only
/// possible for host-path aborts, which the pipelined hot path cannot
/// produce — fall back to the one-at-a-time engine. Returns the recorded
/// statistics when the session has dropped its ticket (reply channel gone),
/// so the batched caller can hand them to the next job instead of losing
/// the whole batch's phase accounting.
#[allow(clippy::too_many_arguments)]
fn serve_job(
    worker: &mut Worker,
    rng: &mut FastRng,
    backoff: Duration,
    req: &TxnRequest,
    max_attempts: u32,
    cancel: &Option<Arc<AtomicBool>>,
    first: Option<(Instant, Result<TxnOutcome>, WorkerStats)>,
    reply: Sender<JobReply>,
) -> Option<WorkerStats> {
    let cancelled = || cancel.as_ref().is_some_and(|c| c.load(AtomicOrdering::Relaxed));
    let (started, mut pending, mut stats) = match first {
        Some((started, result, stats)) => (started, Some(result), stats),
        None => (Instant::now(), None, WorkerStats::new()),
    };
    let mut attempts = 0u32;
    let result = loop {
        let attempt = match pending.take() {
            Some(result) => result,
            None => worker.execute(req, &mut stats),
        };
        match attempt {
            Ok(outcome) => {
                stats.record_commit(outcome.class, started.elapsed());
                break Ok(outcome);
            }
            Err(e) if e.is_abort() => {
                attempts += 1;
                if attempts >= max_attempts || cancelled() {
                    break Err(e);
                }
                // Jittered exponential backoff, capped at 32× the base: a
                // contended tuple (or a whole switch's traffic demoted to
                // the host path) backs its retry storm off instead of
                // hammering the lock table in lock-step.
                let scale = 1u32 << (attempts - 1).min(5);
                wait_for((backoff * scale).mul_f64(0.5 + rng.gen_f64()));
                stats.retry_rounds += 1;
            }
            Err(e) => break Err(e), // cluster shutting down
        }
    };
    // A session that stopped waiting is not an error, but its statistics
    // are handed back so the caller can keep the totals exact.
    match reply.send(JobReply { result, stats }) {
        Ok(()) => None,
        Err(SendError(undelivered)) => Some(undelivered.stats),
    }
}

/// Outcomes of one [`Session::resolve_in_doubt`] pass over the in-doubt
/// ledger. A clean run ends with `unresolved == 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolverReport {
    /// Intents whose effect is already durable: logged at or below the
    /// switch's recovery fence (folded into the WAL reconstruction), or
    /// confirmed executed by the switch's audit log.
    pub resolved_committed: u64,
    /// Intents the switch confirmed it never executed; their footprint was
    /// re-run as an ordinary host transaction (a clean abort also settles
    /// the entry — the history simply never contains it).
    pub resolved_retried: u64,
    /// Intents whose status could not be learned within the retry budget;
    /// re-parked on the ledger for a later pass.
    pub unresolved: u64,
}

impl ResolverReport {
    /// Folds another pass's counters into this one.
    pub fn merge(&mut self, other: &ResolverReport) {
        self.resolved_committed += other.resolved_committed;
        self.resolved_retried += other.resolved_retried;
        self.unresolved += other.unresolved;
    }
}

/// A ticket for a transaction submitted open-loop; redeem it with
/// [`Session::wait`]. Dropping the ticket abandons the result (the
/// transaction still executes).
#[must_use = "redeem the ticket with Session::wait to observe the outcome"]
pub struct Pending {
    reply: Receiver<JobReply>,
}

/// A client handle for submitting transactions to one node of a cluster.
///
/// Sessions are cheap (a queue handle plus a partition map) and independent:
/// create as many as needed, move them across threads freely. Each submitted
/// transaction is executed by the node's executor pool through the full
/// hot/cold/warm classification, switch path and 2PC of the engine; the
/// session accumulates the statistics of everything it has waited on.
///
/// ```
/// use p4db_common::{NodeId, TupleId};
/// use p4db_core::Cluster;
/// use p4db_txn::Txn;
/// use p4db_workloads::{Workload, Ycsb, YcsbConfig, YcsbMix};
/// use std::sync::Arc;
///
/// let workload: Arc<dyn Workload> =
///     Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 1_000, ..YcsbConfig::new(YcsbMix::A) }));
/// let cluster = Cluster::builder(workload).test_profile().build();
/// let mut session = cluster.session(NodeId(0)).unwrap();
///
/// // An ad-hoc read-modify-write over two tuples; their home nodes are
/// // resolved by the cluster's partition map, not by the caller.
/// let t = |key| TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key);
/// let outcome = session.execute(&Txn::new().add(t(3), 5).read(t(1_003))).unwrap();
/// assert_eq!(outcome.results[0], 5);
/// assert_eq!(session.stats().committed_total(), 1);
/// ```
pub struct Session {
    node: NodeId,
    submit: Sender<Job>,
    partition_map: PartitionMap,
    shared: Arc<EngineShared>,
    max_attempts: u32,
    cancel: Option<Arc<AtomicBool>>,
    stats: WorkerStats,
}

impl Session {
    pub(crate) fn new(
        node: NodeId,
        submit: Sender<Job>,
        partition_map: PartitionMap,
        shared: Arc<EngineShared>,
    ) -> Self {
        Session {
            node,
            submit,
            partition_map,
            shared,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            cancel: None,
            stats: WorkerStats::new(),
        }
    }

    /// The node this session submits through (the coordinator of its
    /// transactions).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The partition map this session resolves transactions against.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.partition_map
    }

    /// Caps the number of execution attempts per transaction (aborted
    /// attempts are retried with randomised backoff up to this budget).
    /// Values below 1 are treated as 1.
    pub fn set_max_attempts(&mut self, attempts: u32) {
        self.max_attempts = attempts.max(1);
    }

    /// Attaches a cooperative cancellation flag to this session's future
    /// submissions: once the flag is set, an aborting transaction stops
    /// retrying and returns its abort error instead of burning the rest of
    /// its retry budget. The closed-loop driver uses this so its stop signal
    /// ends the measurement promptly; long-lived clients can use it for
    /// graceful shutdown.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Statistics accumulated over everything this session has waited on:
    /// commits by class, latency, aborts, engine phases, switch passes.
    pub fn stats(&self) -> &WorkerStats {
        &self.stats
    }

    /// Takes the accumulated statistics, resetting the session's counters.
    pub fn take_stats(&mut self) -> WorkerStats {
        std::mem::take(&mut self.stats)
    }

    /// Executes a transaction built with [`Txn`], blocking until it commits
    /// or exhausts its retry budget. Home nodes are resolved through the
    /// cluster's partition map with this session's node as coordinator.
    pub fn execute(&mut self, txn: &Txn) -> Result<TxnOutcome> {
        let pending = self.submit(txn)?;
        self.wait(pending)
    }

    /// Executes an already-placed [`TxnRequest`], blocking until done.
    pub fn execute_request(&mut self, req: &TxnRequest) -> Result<TxnOutcome> {
        let pending = self.submit_request(req)?;
        self.wait(pending)
    }

    /// Executes a transaction on the lock-free snapshot read path: every
    /// operation reads the newest committed version at one snapshot
    /// timestamp, with zero lock-table interaction and zero 2PC. The
    /// returned outcome carries the snapshot timestamp in
    /// [`TxnOutcome::snapshot`]. Rejects transactions containing any
    /// non-read operation with [`Error::InvalidTxn`]; transactions the
    /// snapshot path cannot serve (switch-resident hot tuples in P4DB mode,
    /// or the `single_latch` seed arm) transparently fall back to the
    /// locking path and return `snapshot: None`.
    pub fn read_only(&mut self, txn: &Txn) -> Result<TxnOutcome> {
        let req = txn.clone().read_only().resolve(&self.partition_map, self.node)?;
        self.execute_request(&req)
    }

    /// Submits a transaction without waiting for it (open loop). Any number
    /// of submissions can be in flight per session; redeem the tickets with
    /// [`Session::wait`] in any order.
    pub fn submit(&mut self, txn: &Txn) -> Result<Pending> {
        let req = txn.resolve(&self.partition_map, self.node)?;
        self.submit_request(&req)
    }

    /// Submits an already-placed request without waiting for it.
    pub fn submit_request(&mut self, req: &TxnRequest) -> Result<Pending> {
        self.validate(req)?;
        let (reply_tx, reply_rx) = unbounded();
        let job = Job::Execute {
            req: req.clone(),
            max_attempts: self.max_attempts,
            cancel: self.cancel.clone(),
            reply: reply_tx,
        };
        if self.submit.send(job).is_err() {
            return Err(Error::Disconnected);
        }
        Ok(Pending { reply: reply_rx })
    }

    /// Waits for a submitted transaction and folds the execution's
    /// statistics into this session's counters.
    pub fn wait(&mut self, pending: Pending) -> Result<TxnOutcome> {
        match pending.reply.recv() {
            Ok(reply) => {
                self.stats.merge(&reply.stats);
                reply.result
            }
            // Pool shut down with the job still queued.
            Err(_) => Err(Error::Disconnected),
        }
    }

    /// Drains the in-doubt ledger — switch sub-transactions whose intent was
    /// logged but whose reply never arrived — and settles each entry
    /// exactly-once:
    ///
    /// 1. **Fence check.** An intent logged at or below its switch's
    ///    recovery fence is already folded into the degraded-mode WAL
    ///    reconstruction: *resolved committed*, no network needed.
    /// 2. **Audit query.** Otherwise the switch's audit log is queried (up
    ///    to the builder's `resolver_retries` budget). Confirmed executed →
    ///    *resolved committed*; confirmed never-executed → the entry's
    ///    operation footprint is re-run as an ordinary host transaction
    ///    under 2PL → *resolved retried*.
    /// 3. Entries whose status cannot be learned are re-parked on the
    ///    ledger and counted `unresolved`.
    ///
    /// Call while the switch path is quiescent (the supervisor runs this
    /// after its drivers finish, before re-admission): a status verdict is
    /// only trustworthy when no delayed duplicate of the intent can still
    /// execute after the query.
    pub fn resolve_in_doubt(&mut self) -> Result<ResolverReport> {
        let mut report = ResolverReport::default();
        let entries = self.shared.health.take_ledger();
        if entries.is_empty() {
            return Ok(report);
        }
        let origin = rogue_endpoint();
        let mailbox = self.shared.fabric.register(origin);
        // A status query is a single round trip; don't let the engine's
        // (deliberately generous) switch timeout stall a resolution pass
        // over an unreachable switch for seconds per entry.
        let per_try = self.shared.config.switch_timeout.min(Duration::from_millis(20));
        let retries = self.shared.config.resolver_retries.max(1);
        let mut token = 0u64;
        let mut reparked = Vec::new();
        for entry in entries {
            if entry.logged_at <= self.shared.health.fence(entry.switch, entry.node) {
                report.resolved_committed += 1;
                continue;
            }
            let mut executed = None;
            'query: for _ in 0..retries {
                token += 1;
                let sent = self.shared.fabric.send(
                    origin,
                    EndpointId::Switch(entry.switch),
                    SwitchMessage::IntentStatusRequest(IntentStatusRequest { origin, token, txn: entry.txn }),
                );
                if !sent {
                    continue;
                }
                let deadline = Instant::now() + per_try;
                loop {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match mailbox.recv_timeout(remaining) {
                        RecvOutcome::Msg(env) => match env.payload {
                            SwitchMessage::IntentStatusReply(r) if r.token == token => {
                                executed = Some(r.executed);
                                break 'query;
                            }
                            // Stale replies from earlier, timed-out tries.
                            _ => continue,
                        },
                        RecvOutcome::TimedOut | RecvOutcome::Disconnected => break,
                    }
                }
            }
            match executed {
                Some(true) => report.resolved_committed += 1,
                Some(false) => match self.execute_request(&TxnRequest::new(entry.ops.clone())) {
                    Ok(_) => report.resolved_retried += 1,
                    // A clean abort settles the entry too: the transaction
                    // observably never happened, which is a legal history
                    // for an intent the switch never executed.
                    Err(e) if e.is_abort() => report.resolved_retried += 1,
                    Err(e) => return Err(e),
                },
                None => {
                    report.unresolved += 1;
                    reparked.push(entry);
                }
            }
        }
        self.shared.health.park_unresolved(reparked);
        Ok(report)
    }

    /// Rejects requests the engine would panic on instead of abort: homes
    /// outside the cluster, forward `operand_from` references,
    /// read-dependencies that cross the hot/cold split (the switch cannot
    /// consume a host-produced operand mid-transaction, §6.2), and
    /// read-only-declared requests containing a write.
    fn validate(&self, req: &TxnRequest) -> Result<()> {
        let hot_index = self.shared.hot_index.load();
        let is_hot = |op: &TxnOp| {
            self.shared.config.mode == SystemMode::P4db && op.kind.switch_executable() && hot_index.is_hot(op.tuple)
        };
        for (index, op) in req.ops.iter().enumerate() {
            if req.read_only && op.kind != OpKind::Read {
                return Err(Error::InvalidTxn(format!(
                    "read-only transaction contains a {:?} at operation {index}",
                    op.kind
                )));
            }
            if op.home.index() >= self.shared.num_nodes() {
                return Err(Error::UnknownNode(op.home));
            }
            if let Some(src) = op.operand_from {
                if src as usize >= index {
                    return Err(Error::InvalidTxn(format!(
                        "operation {index} takes its operand from operation {src}, which is not an earlier operation"
                    )));
                }
                let src_op = &req.ops[src as usize];
                if is_hot(op) != is_hot(src_op) {
                    return Err(Error::InvalidTxn(format!(
                        "operation {index} ({}) and its operand source {src} ({}) are split between the switch and \
                         the host; read-dependent pairs must share a temperature class",
                        op.tuple, src_op.tuple
                    )));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("node", &self.node)
            .field("max_attempts", &self.max_attempts)
            .field("committed", &self.stats.committed_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use p4db_common::{CcScheme, SystemMode, TupleId};
    use p4db_workloads::{Workload, Ycsb, YcsbConfig, YcsbMix};

    fn small_cluster() -> Cluster {
        let workload: Arc<dyn Workload> =
            Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 1_000, ..YcsbConfig::new(YcsbMix::A) }));
        Cluster::build(ClusterConfig::test_profile(SystemMode::NoSwitch, CcScheme::NoWait), workload)
    }

    fn t(key: u64) -> TupleId {
        TupleId::new(p4db_workloads::ycsb::YCSB_TABLE, key)
    }

    /// Regression test for the executor batch loop: a shutdown round drains
    /// batches that mix `Execute` jobs with poison pills in every
    /// proportion (including all-pills). Every job submitted *before* the
    /// pills must still be served — an executor panicking over its batch
    /// composition would strand the queue and fail the `wait`s below.
    #[test]
    fn jobs_queued_before_shutdown_pills_are_served() {
        let cluster = small_cluster();
        let mut session = cluster.session(NodeId(0)).unwrap();
        // More jobs than executors, open-loop, so the queue still holds
        // work when the pool drops its pills in behind it (test profile
        // batch_size = 16 makes each drain a mixed batch).
        let pendings: Vec<Pending> = (0..24).map(|k| session.submit(&Txn::new().add(t(k), 1)).unwrap()).collect();
        drop(cluster);
        for pending in pendings {
            let outcome = session.wait(pending).expect("job queued before shutdown must execute");
            assert_eq!(outcome.results[0], 1);
        }
        assert_eq!(session.stats().committed_total(), 24);
    }

    #[test]
    fn read_only_serves_snapshot_and_rejects_writes() {
        let cluster = small_cluster();
        let mut session = cluster.session(NodeId(0)).unwrap();
        session.execute(&Txn::new().add(t(7), 41)).unwrap();
        let outcome = session.read_only(&Txn::new().read(t(7)).read(t(1_007))).unwrap();
        assert_eq!(outcome.results[0], 41);
        assert!(outcome.snapshot.is_some(), "read-only txn must execute on the snapshot path");

        let err = session.read_only(&Txn::new().add(t(7), 1)).unwrap_err();
        assert!(matches!(err, Error::InvalidTxn(_)), "got {err:?}");
    }

    #[test]
    fn validate_rejects_hand_built_read_only_request_with_a_write() {
        let cluster = small_cluster();
        let mut session = cluster.session(NodeId(0)).unwrap();
        let req = Txn::new().write(t(3), 9).resolve(session.partition_map(), NodeId(0)).unwrap().into_read_only();
        let err = match session.submit_request(&req) {
            Err(e) => e,
            Ok(_) => panic!("read-only request with a write must be rejected"),
        };
        assert!(matches!(err, Error::InvalidTxn(_)), "got {err:?}");
    }
}
