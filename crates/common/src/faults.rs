//! Seeded fault-injection plans for chaos testing.
//!
//! A [`FaultPlan`] describes, from a single seed, every fault a chaos run may
//! inject: message drops, delays and reorderings on the rack fabric, plus the
//! switch-reply timeout the transaction engine uses while faults are active
//! (so a dropped packet surfaces as an *in-doubt* transaction in tens of
//! milliseconds instead of the production 30-second budget).
//!
//! The plan itself is pure data — it lives in `p4db-common` so that the
//! network fabric (which executes the message faults), the cluster builder
//! (which installs them) and the chaos harness (which sweeps seeds and
//! checks invariants) can all share it without dependency cycles. The
//! [`FaultInjector`] is the runtime half: a seeded decision stream plus a
//! bounded trace of every fault it injected, which failing runs report so
//! the seed reproduces them with one command.

use crate::rand_util::FastRng;
use crate::sync::unpoison;
use std::sync::Mutex;
use std::time::Duration;

/// Message-level fault probabilities for the rack fabric.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NetFaultConfig {
    /// Probability that a unicast message is silently dropped on the wire
    /// (the sender cannot tell — exactly like a lost packet).
    pub drop_prob: f64,
    /// Probability that a message is delayed before delivery.
    pub delay_prob: f64,
    /// Upper bound on an injected delay, in microseconds.
    pub max_delay_us: u64,
    /// Probability that a message is held back and delivered *after* the
    /// next message to the same destination (a reordering).
    pub reorder_prob: f64,
    /// Hard budget on injected faults per run, so a chaos run degrades the
    /// cluster without starving it.
    pub max_faults: u64,
}

impl NetFaultConfig {
    /// No message faults.
    pub const fn none() -> Self {
        NetFaultConfig { drop_prob: 0.0, delay_prob: 0.0, max_delay_us: 0, reorder_prob: 0.0, max_faults: 0 }
    }

    /// The default chaos profile: a few percent of messages dropped, delayed
    /// or reordered, bounded to a few dozen faults per run.
    pub const fn light() -> Self {
        NetFaultConfig { drop_prob: 0.02, delay_prob: 0.05, max_delay_us: 300, reorder_prob: 0.03, max_faults: 48 }
    }
}

/// A silently-dead switch: after `after_messages` packets have been addressed
/// to the target switch, every message to or from it is dropped — the switch
/// neither executes nor replies, exactly the failure mode a circuit breaker
/// must detect (timeouts, not errors). Unlike the probabilistic message
/// faults, a blackhole is a *targeted, stateful* fault with its own drop
/// accounting, outside the [`NetFaultConfig::max_faults`] budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlackholeFault {
    /// Index of the switch to kill (`SwitchId.0`).
    pub switch: u16,
    /// The blackhole activates once this many messages have been addressed
    /// to the switch — "mid-run", deterministically.
    pub after_messages: u64,
    /// The outage heals itself after this many messages have been swallowed
    /// (a transient outage: reboots, link flaps). `0` means the blackhole
    /// never heals on its own — only [`FaultInjector::heal_blackhole`]
    /// (switch replacement / recovery) clears it.
    pub heal_after_drops: u64,
}

/// A complete, seed-derived fault plan for one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault decision stream (independent of the workload seed).
    pub seed: u64,
    /// Message faults injected by the fabric.
    pub net: NetFaultConfig,
    /// How long a worker waits for a switch reply before declaring the
    /// transaction in-doubt. The production default (30 s) makes every
    /// dropped packet stall a whole test, so fault plans shrink it.
    pub switch_timeout: Duration,
    /// Optional silently-dead-switch fault (hang / blackhole class).
    pub blackhole: Option<BlackholeFault>,
}

impl FaultPlan {
    /// The standard chaos plan for a seed: light message faults, short
    /// switch timeout.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, net: NetFaultConfig::light(), switch_timeout: Duration::from_millis(75), blackhole: None }
    }

    /// A plan that injects nothing but still arms the chaos bookkeeping
    /// (audit log, short timeouts) — the faults-off control arm of a sweep.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan { seed, net: NetFaultConfig::none(), switch_timeout: Duration::from_millis(250), blackhole: None }
    }

    /// Returns a copy with every fault class except `kind` disabled — the
    /// building block of the fault-trace minimizer.
    pub fn only(&self, kind: FaultKind) -> Self {
        let mut net = NetFaultConfig { max_faults: self.net.max_faults, ..NetFaultConfig::none() };
        let mut blackhole = None;
        match kind {
            FaultKind::Drop => net.drop_prob = self.net.drop_prob,
            FaultKind::Delay => {
                net.delay_prob = self.net.delay_prob;
                net.max_delay_us = self.net.max_delay_us;
            }
            FaultKind::Reorder => net.reorder_prob = self.net.reorder_prob,
            FaultKind::Blackhole => blackhole = self.blackhole,
        }
        FaultPlan { seed: self.seed, net, switch_timeout: self.switch_timeout, blackhole }
    }

    /// The fault classes this plan can inject.
    pub fn active_kinds(&self) -> Vec<FaultKind> {
        let mut kinds = Vec::new();
        if self.net.drop_prob > 0.0 {
            kinds.push(FaultKind::Drop);
        }
        if self.net.delay_prob > 0.0 {
            kinds.push(FaultKind::Delay);
        }
        if self.net.reorder_prob > 0.0 {
            kinds.push(FaultKind::Reorder);
        }
        if self.blackhole.is_some() {
            kinds.push(FaultKind::Blackhole);
        }
        kinds
    }
}

/// What the injector decided for one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently discard; the sender still sees a successful send.
    Drop,
    /// Impose an extra wire delay before delivery.
    Delay(Duration),
    /// Hold the message back until the next message to the same destination
    /// has been delivered (reordering).
    HoldBack,
}

/// A fault class, used in traces and by the minimizer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    Drop,
    Delay,
    Reorder,
    /// A silently-dead switch swallowed the message (see [`BlackholeFault`]).
    Blackhole,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::Blackhole => "blackhole",
        }
    }
}

/// One injected fault, recorded for the failure report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub kind: FaultKind,
    /// Human-readable `src->dst` link description.
    pub link: String,
}

struct InjectorState {
    rng: FastRng,
    injected: u64,
    trace: Vec<FaultEvent>,
    /// Messages addressed to the blackhole target so far (pre-activation).
    bh_seen: u64,
    /// Messages swallowed by the active blackhole.
    bh_dropped: u64,
    bh_active: bool,
    /// Healed (auto or via [`FaultInjector::heal_blackhole`]): the blackhole
    /// never re-activates within one run.
    bh_healed: bool,
}

/// The runtime fault decision stream: seeded, budgeted, traced.
///
/// Decisions are drawn from one seeded RNG, so a given seed always produces
/// the same fault *distribution*; the exact messages hit depend on thread
/// interleaving, which is why every injected fault is recorded in the trace.
pub struct FaultInjector {
    config: NetFaultConfig,
    blackhole: Option<BlackholeFault>,
    state: Mutex<InjectorState>,
}

/// Cap on the recorded trace; faults beyond it are still injected and
/// counted, just not individually remembered.
const TRACE_CAP: usize = 256;

impl FaultInjector {
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            config: plan.net,
            blackhole: plan.blackhole,
            state: Mutex::new(InjectorState {
                rng: FastRng::new(plan.seed ^ 0x000F_A017_5EED),
                injected: 0,
                trace: Vec::new(),
                bh_seen: 0,
                bh_dropped: 0,
                bh_active: false,
                bh_healed: false,
            }),
        }
    }

    /// Decides the fate of one message on `link` (e.g. `"node0/worker1->switch"`).
    pub fn decide(&self, link: &dyn Fn() -> String) -> FaultAction {
        let mut state = unpoison(self.state.lock());
        if state.injected >= self.config.max_faults {
            return FaultAction::Deliver;
        }
        let (kind, action) = if state.rng.gen_bool(self.config.drop_prob) {
            (FaultKind::Drop, FaultAction::Drop)
        } else if state.rng.gen_bool(self.config.reorder_prob) {
            (FaultKind::Reorder, FaultAction::HoldBack)
        } else if state.rng.gen_bool(self.config.delay_prob) {
            let us = 1 + state.rng.gen_range(self.config.max_delay_us.max(1));
            (FaultKind::Delay, FaultAction::Delay(Duration::from_micros(us)))
        } else {
            return FaultAction::Deliver;
        };
        state.injected += 1;
        if state.trace.len() < TRACE_CAP {
            let link = link();
            state.trace.push(FaultEvent { kind, link });
        }
        action
    }

    /// Decides whether a message to or from switch `switch` is swallowed by
    /// the blackhole. `toward_switch` marks request-direction traffic, which
    /// is what counts toward activation; reply-direction traffic is only
    /// dropped while the blackhole is active (the switch went dark as a
    /// whole, not one direction of the link).
    pub fn blackhole_decide(&self, switch: u16, toward_switch: bool, link: &dyn Fn() -> String) -> bool {
        let Some(bh) = self.blackhole else { return false };
        if bh.switch != switch {
            return false;
        }
        let mut state = unpoison(self.state.lock());
        if state.bh_healed {
            return false;
        }
        if !state.bh_active {
            if !toward_switch {
                return false;
            }
            state.bh_seen += 1;
            if state.bh_seen < bh.after_messages {
                return false;
            }
            state.bh_active = true;
        }
        state.bh_dropped += 1;
        if state.trace.len() < TRACE_CAP {
            let link = link();
            state.trace.push(FaultEvent { kind: FaultKind::Blackhole, link });
        }
        if bh.heal_after_drops > 0 && state.bh_dropped >= bh.heal_after_drops {
            state.bh_active = false;
            state.bh_healed = true;
        }
        true
    }

    /// Whether the blackhole is currently swallowing messages.
    pub fn blackhole_active(&self) -> bool {
        unpoison(self.state.lock()).bh_active
    }

    /// Messages swallowed by the blackhole so far (outside the
    /// [`NetFaultConfig::max_faults`] budget).
    pub fn blackhole_drops(&self) -> u64 {
        unpoison(self.state.lock()).bh_dropped
    }

    /// Clears a blackhole targeting `switch` for the rest of the run — the
    /// model of replacing / recovering the dead switch. Idempotent; a no-op
    /// for other switches.
    pub fn heal_blackhole(&self, switch: u16) {
        if self.blackhole.is_some_and(|bh| bh.switch == switch) {
            let mut state = unpoison(self.state.lock());
            state.bh_active = false;
            state.bh_healed = true;
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        unpoison(self.state.lock()).injected
    }

    /// Snapshot of the recorded fault trace.
    pub fn trace(&self) -> Vec<FaultEvent> {
        unpoison(self.state.lock()).trace.clone()
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector").field("config", &self.config).field("injected", &self.injected()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_actions(plan: &FaultPlan, draws: usize) -> (usize, usize, usize, usize) {
        let injector = FaultInjector::new(plan);
        let (mut deliver, mut drop, mut delay, mut hold) = (0, 0, 0, 0);
        for _ in 0..draws {
            match injector.decide(&|| "a->b".to_string()) {
                FaultAction::Deliver => deliver += 1,
                FaultAction::Drop => drop += 1,
                FaultAction::Delay(_) => delay += 1,
                FaultAction::HoldBack => hold += 1,
            }
        }
        (deliver, drop, delay, hold)
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let (deliver, drop, delay, hold) = count_actions(&FaultPlan::quiet(1), 10_000);
        assert_eq!((drop, delay, hold), (0, 0, 0));
        assert_eq!(deliver, 10_000);
    }

    #[test]
    fn seeded_plan_injects_all_classes_up_to_the_budget() {
        let plan = FaultPlan::seeded(7);
        let (_, drop, delay, hold) = count_actions(&plan, 50_000);
        assert!(drop > 0 && delay > 0 && hold > 0, "drop={drop} delay={delay} hold={hold}");
        assert_eq!((drop + delay + hold) as u64, plan.net.max_faults, "budget caps total faults");
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let plan = FaultPlan::seeded(42);
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        for _ in 0..5_000 {
            assert_eq!(a.decide(&|| String::new()), b.decide(&|| String::new()));
        }
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn only_isolates_one_fault_class() {
        let plan = FaultPlan::seeded(3);
        let drops_only = plan.only(FaultKind::Drop);
        let (_, drop, delay, hold) = count_actions(&drops_only, 50_000);
        assert!(drop > 0);
        assert_eq!((delay, hold), (0, 0));
        assert_eq!(drops_only.active_kinds(), vec![FaultKind::Drop]);
        assert_eq!(plan.active_kinds(), vec![FaultKind::Drop, FaultKind::Delay, FaultKind::Reorder]);
    }

    #[test]
    fn blackhole_activates_after_threshold_and_heals_after_drops() {
        let plan = FaultPlan {
            blackhole: Some(BlackholeFault { switch: 0, after_messages: 3, heal_after_drops: 4 }),
            ..FaultPlan::quiet(1)
        };
        let injector = FaultInjector::new(&plan);
        // Two request-direction messages pass, the third activates the hole.
        assert!(!injector.blackhole_decide(0, true, &|| "a".into()));
        assert!(!injector.blackhole_decide(0, true, &|| "a".into()));
        assert!(!injector.blackhole_active());
        assert!(injector.blackhole_decide(0, true, &|| "a".into()));
        assert!(injector.blackhole_active());
        // Reply-direction traffic is swallowed while active.
        assert!(injector.blackhole_decide(0, false, &|| "b".into()));
        assert!(injector.blackhole_decide(0, true, &|| "a".into()));
        // The fourth drop heals the transient outage; traffic flows again.
        assert!(injector.blackhole_decide(0, true, &|| "a".into()));
        assert!(!injector.blackhole_active());
        assert!(!injector.blackhole_decide(0, true, &|| "a".into()));
        assert_eq!(injector.blackhole_drops(), 4);
        assert!(injector.trace().iter().all(|e| e.kind == FaultKind::Blackhole));
        // Other switches were never affected, and the probabilistic budget
        // was never charged.
        assert!(!injector.blackhole_decide(1, true, &|| "c".into()));
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn heal_blackhole_clears_an_active_hole_for_the_target_only() {
        let plan = FaultPlan {
            blackhole: Some(BlackholeFault { switch: 2, after_messages: 1, heal_after_drops: 0 }),
            ..FaultPlan::quiet(9)
        };
        let injector = FaultInjector::new(&plan);
        assert!(injector.blackhole_decide(2, true, &|| "x".into()));
        injector.heal_blackhole(1); // wrong switch: no-op
        assert!(injector.blackhole_active());
        injector.heal_blackhole(2);
        assert!(!injector.blackhole_active());
        assert!(!injector.blackhole_decide(2, true, &|| "x".into()), "healed holes never re-activate");
        assert_eq!(plan.active_kinds(), vec![FaultKind::Blackhole]);
        assert_eq!(plan.only(FaultKind::Blackhole).blackhole, plan.blackhole);
        assert_eq!(plan.only(FaultKind::Drop).blackhole, None);
    }

    #[test]
    fn trace_records_kind_and_link() {
        let plan =
            FaultPlan { net: NetFaultConfig { drop_prob: 1.0, ..NetFaultConfig::light() }, ..FaultPlan::seeded(1) };
        let injector = FaultInjector::new(&plan);
        let _ = injector.decide(&|| "node0->switch".to_string());
        let trace = injector.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].kind, FaultKind::Drop);
        assert_eq!(trace[0].link, "node0->switch");
        assert_eq!(injector.injected(), 1);
    }
}
