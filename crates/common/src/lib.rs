//! # p4db-common
//!
//! Shared foundation types for the P4DB reproduction: identifiers for nodes,
//! tables, tuples and transactions, the fixed-width value representation used
//! both on host nodes and in the (simulated) switch register arrays, error
//! types, workload randomness (Zipf / hot-set generators), throughput and
//! latency statistics, and a calibrated simulated-latency primitive used by
//! the network fabric.
//!
//! Every other crate in the workspace depends on this one and nothing here
//! depends on the rest of the system, so the crate intentionally stays small
//! and allocation-free on hot paths.

pub mod channel;
pub mod config;
pub mod error;
pub mod faults;
pub mod hash;
pub mod ids;
pub mod rand_util;
pub mod simtime;
pub mod stats;
pub mod sync;
pub mod value;

pub use config::{CcScheme, LatencyConfig, SystemMode};
pub use error::{AbortReason, Error, Result};
pub use faults::{FaultAction, FaultEvent, FaultInjector, FaultKind, FaultPlan, NetFaultConfig};
pub use ids::{GlobalTxnId, NodeId, PartitionId, SwitchId, TableId, TupleId, TxnId, WorkerId};
pub use value::Value;
