//! Error and abort types shared across the host DBMS and the switch client.

use crate::ids::{NodeId, TupleId, TxnId};
use std::fmt;

/// Why a host (cold / warm) transaction aborted.
///
/// Switch transactions never abort (§5.1): once a packet is admitted to the
/// pipeline its execution is unconditional, which is why none of these
/// variants can originate from the switch data plane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// NO_WAIT: a lock request was denied because the row was already locked
    /// in a conflicting mode.
    LockConflict { tuple: TupleId },
    /// WAIT_DIE: the requesting transaction was younger than the lock owner
    /// and therefore died.
    WaitDieDied { tuple: TupleId, owner: TxnId },
    /// A remote participant voted "abort" during two-phase commit.
    RemoteVoteAbort { participant: NodeId },
    /// An application-level integrity constraint failed (e.g. SmallBank
    /// balance would go negative on the host path).
    ConstraintViolation,
    /// The transaction exceeded its retry budget and was given up on by the
    /// worker loop (only used by the experiment driver, never by the engine).
    RetryBudgetExhausted,
    /// The owning switch's circuit breaker is open: the packet was not sent
    /// (no intent is in flight). The retry re-classifies against the updated
    /// hot-set index and runs on the host path once degraded mode is up.
    SwitchUnavailable { switch: crate::ids::SwitchId },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::LockConflict { tuple } => write!(f, "lock conflict on {tuple}"),
            AbortReason::WaitDieDied { tuple, owner } => {
                write!(f, "wait-die died on {tuple} (owner {owner})")
            }
            AbortReason::RemoteVoteAbort { participant } => {
                write!(f, "participant {participant} voted abort")
            }
            AbortReason::ConstraintViolation => write!(f, "constraint violation"),
            AbortReason::RetryBudgetExhausted => write!(f, "retry budget exhausted"),
            AbortReason::SwitchUnavailable { switch } => {
                write!(f, "circuit breaker open for {switch}")
            }
        }
    }
}

/// Crate-wide error type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The transaction must abort (and will usually be retried by the worker).
    Abort(AbortReason),
    /// A tuple was not found in the addressed partition or on the switch.
    TupleNotFound(TupleId),
    /// The addressed node does not exist in the cluster.
    UnknownNode(NodeId),
    /// The switch rejected an offload request (e.g. register capacity
    /// exceeded); carries a human-readable reason from the control plane.
    SwitchControlPlane(String),
    /// A configuration value was inconsistent (e.g. zero nodes).
    InvalidConfig(String),
    /// A client-submitted transaction failed builder/placement validation
    /// before it reached the engine (e.g. an `operand_from` reference to a
    /// later operation).
    InvalidTxn(String),
    /// The process-wide worker-endpoint id space (one `u16` per spawned
    /// executor) is exhausted; no further clusters can be built in this
    /// process.
    WorkerIdSpaceExhausted,
    /// A network endpoint was disconnected (cluster shutdown while a request
    /// was in flight).
    Disconnected,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Abort(reason) => write!(f, "transaction aborted: {reason}"),
            Error::TupleNotFound(t) => write!(f, "tuple not found: {t}"),
            Error::UnknownNode(n) => write!(f, "unknown node: {n}"),
            Error::SwitchControlPlane(msg) => write!(f, "switch control plane error: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidTxn(msg) => write!(f, "invalid transaction: {msg}"),
            Error::WorkerIdSpaceExhausted => {
                write!(f, "worker endpoint id space exhausted (65536 executors spawned in this process)")
            }
            Error::Disconnected => write!(f, "network endpoint disconnected"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Convenience constructor for NO_WAIT lock-denied aborts.
    pub fn lock_conflict(tuple: TupleId) -> Self {
        Error::Abort(AbortReason::LockConflict { tuple })
    }

    /// Convenience constructor for WAIT_DIE aborts.
    pub fn wait_die(tuple: TupleId, owner: TxnId) -> Self {
        Error::Abort(AbortReason::WaitDieDied { tuple, owner })
    }

    /// Whether the error is a (retryable) transaction abort.
    pub fn is_abort(&self) -> bool {
        matches!(self, Error::Abort(_))
    }

    /// The abort reason, if this is an abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            Error::Abort(r) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;

    #[test]
    fn abort_helpers_classify_correctly() {
        let t = TupleId::new(TableId(0), 5);
        let e = Error::lock_conflict(t);
        assert!(e.is_abort());
        assert_eq!(e.abort_reason(), Some(AbortReason::LockConflict { tuple: t }));

        let e = Error::TupleNotFound(t);
        assert!(!e.is_abort());
        assert_eq!(e.abort_reason(), None);
    }

    #[test]
    fn display_is_informative() {
        let t = TupleId::new(TableId(1), 9);
        let owner = TxnId::compose(3, NodeId(0), WorkerId(1));
        let msg = Error::wait_die(t, owner).to_string();
        assert!(msg.contains("wait-die"));
        assert!(msg.contains("t1:9"));
    }

    use crate::ids::WorkerId;
}
