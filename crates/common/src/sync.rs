//! Poison-tolerant lock helpers.
//!
//! The workspace uses `std::sync::{Mutex, RwLock}` (crates.io is unreachable
//! in the build environment, so `parking_lot` is not an option). Unlike
//! `parking_lot`, the std locks poison on panic. Everywhere the guarded
//! state is kept valid across the critical section — append-only vectors,
//! insert-only maps, single-word updates — a panicked worker thread must not
//! cascade `PoisonError` panics through `Cluster::run_for`, so those sites
//! adopt the state behind the poisoned lock instead of unwrapping.

use std::sync::PoisonError;

/// Recovers the guard from a possibly-poisoned lock acquisition. Only use at
/// sites where the guarded state is valid regardless of where a previous
/// holder panicked.
#[inline]
pub fn unpoison<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(|e| e.into_inner())
}
