//! Fast, non-cryptographic hashing for the storage hot path.
//!
//! The node-local transaction path hashes every tuple it touches — for the
//! 2PL lock-table shard, for the row-store shard and for the probe inside the
//! shard's map. The std `HashMap` default (SipHash-1-3) costs tens of
//! nanoseconds per key, which is real money when a transaction resolves its
//! whole footprint at admission. Keys here are either raw `u64` primary keys
//! or small id newtypes, all attacker-free (they come from workload
//! generators and loaders, not the network), so a statistically strong mixer
//! without keyed security is the right trade.
//!
//! [`mix64`] is the SplitMix64 finalizer: a bijective avalanche over the full
//! 64-bit word, so dense key ranges (YCSB keys `0..n`) spread uniformly over
//! power-of-two shard counts. [`FastHasher`] folds every written word through
//! the same mixer, making `HashMap<u64, _, FastBuildHasher>` and
//! `HashMap<TupleId, _, FastBuildHasher>` drop-in replacements for the
//! SipHash-backed defaults.

use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64 finalizer: full-avalanche bijective mixing of one 64-bit word.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A word-at-a-time hasher built on [`mix64`]. Every written integer is
/// folded into the state through one full mixing round; byte slices (rare in
/// this workspace — ids are integers) are consumed in 8-byte chunks.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]-backed maps.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by workspace ids with the fast word mixer.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::BuildHasher;

    #[test]
    fn mix64_is_injective_on_a_sample_and_avalanches() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
        // Dense inputs must spread over low bits (shard selection uses them).
        let mut low6 = [0u32; 64];
        for i in 0..64_000u64 {
            low6[(mix64(i) & 63) as usize] += 1;
        }
        let (min, max) = (low6.iter().min().unwrap(), low6.iter().max().unwrap());
        assert!(*min > 700 && *max < 1_300, "low-bit skew: min {min}, max {max}");
    }

    #[test]
    fn fast_map_roundtrips_u64_and_tuple_keys() {
        let mut map: FastMap<u64, u64> = FastMap::default();
        for k in 0..1_000u64 {
            map.insert(k, k * 2);
        }
        assert_eq!(map.get(&500), Some(&1_000));

        let mut tuples: FastMap<crate::TupleId, u32> = FastMap::default();
        let t = crate::TupleId::new(crate::TableId(3), 77);
        tuples.insert(t, 9);
        assert_eq!(tuples.get(&t), Some(&9));
    }

    #[test]
    fn hasher_consumes_byte_slices_chunkwise() {
        let build = FastBuildHasher::default();
        let a = build.hash_one("hello world");
        let b = build.hash_one("hello worlc");
        assert_ne!(a, b);
        // Equal inputs hash equal (determinism, no per-process randomness).
        assert_eq!(a, build.hash_one("hello world"));
    }

    #[test]
    fn integer_writes_match_across_widths_when_equal_values() {
        // Not a requirement of Hasher, but our id newtypes rely on write_uXX
        // folding through the same path; spot-check determinism.
        let build = FastBuildHasher::default();
        let h1 = build.hash_one(42u64);
        let h2 = build.hash_one(42u64);
        assert_eq!(h1, h2);
    }
}
