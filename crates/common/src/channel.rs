//! A small in-house MPMC channel.
//!
//! The build environment has no access to crates.io, so the message fabric
//! cannot use `crossbeam::channel`. This module provides the subset the
//! system needs: an unbounded multi-producer multi-consumer queue with
//! cloneable senders *and* receivers, non-blocking and timed receives, and
//! crossbeam-compatible disconnect semantics (a send fails once every
//! receiver is gone; a receive fails once every sender is gone *and* the
//! queue is drained).
//!
//! The implementation is a `Mutex<VecDeque>` plus a `Condvar`. That is not
//! lock-free, but the fabric's queues are short (the switch drains its
//! ingress continuously) and the critical sections are a few dozen
//! instructions, so the mutex never becomes the bottleneck next to the
//! imposed wire latency — see `p4db-net::latency`.

use crate::sync::unpoison;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the rejected message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders still exist.
    Empty,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv`]: every sender has been dropped and
/// the queue is drained.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvError;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A panic while holding this mutex can only happen on an allocation
        // failure inside `VecDeque::push_back`; the queue itself is never
        // left half-updated, so the poisoned state is safe to adopt.
        unpoison(self.state.lock())
    }
}

/// The sending half. Cloning produces another producer on the same queue.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloning produces another consumer on the same queue
/// (each message is delivered to exactly one consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        available: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues a message. Fails (returning the message) only when every
    /// receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Enqueues a whole batch of messages under **one** lock acquisition and
    /// one wake-up — the channel-level half of the fabric's frame batching.
    /// The batch is delivered in order, contiguously (no other producer's
    /// message can interleave inside it). Fails (returning the batch) only
    /// when every receiver has been dropped; an empty batch is a no-op.
    pub fn send_batch(&self, values: Vec<T>) -> Result<(), SendError<Vec<T>>> {
        if values.is_empty() {
            return Ok(());
        }
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(values));
        }
        state.queue.extend(values);
        drop(state);
        // One notify per frame: consumers drain multiple messages per
        // wake-up via `recv_many_timeout`/`try_recv_many`.
        self.shared.available.notify_all();
        Ok(())
    }

    /// Number of queued messages (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake blocked receivers so they can observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(v) => Ok(v),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive: returns an error only when every sender is gone and
    /// the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = unpoison(self.shared.available.wait(state));
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = unpoison(self.shared.available.wait_timeout(state, deadline - now));
            state = guard;
        }
    }

    /// Non-blocking batch receive: pops up to `max` queued messages under one
    /// lock acquisition. Returns an empty vector when nothing is queued (the
    /// disconnect state is *not* reported here; use the blocking variants).
    pub fn try_recv_many(&self, max: usize) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut state = self.shared.lock();
        let n = state.queue.len().min(max);
        state.queue.drain(..n).collect()
    }

    /// Blocking batch receive: waits until at least one message is available
    /// (or the timeout/disconnect), then drains up to `max` messages in the
    /// same lock acquisition — the receiving half of frame batching.
    pub fn recv_many_timeout(&self, timeout: Duration, max: usize) -> Result<Vec<T>, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if !state.queue.is_empty() {
                let n = state.queue.len().min(max.max(1));
                return Ok(state.queue.drain(..n).collect());
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = unpoison(self.shared.available.wait_timeout(state, deadline - now));
            state = guard;
        }
    }

    /// Number of queued messages (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // No consumer will ever drain these; free them eagerly so a
            // shut-down mailbox does not pin large envelopes.
            state.queue.clear();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").field("len", &self.len()).finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn mpmc_fan_in_fan_out_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        tx.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let received = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                let received = Arc::clone(&received);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    while let Ok(v) = rx.recv() {
                        received.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v as usize, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(received.load(Ordering::Relaxed), 4_000);
        // Each message delivered exactly once: the sum identifies the set.
        let expected: usize = (0..4u64).flat_map(|p| (0..1_000).map(move |i| (p * 1_000 + i) as usize)).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn recv_timeout_expires_when_no_message_arrives() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(30));
        drop(tx);
    }

    #[test]
    fn recv_timeout_wakes_on_message() {
        let (tx, rx) = unbounded();
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        sender.join().unwrap();
    }

    #[test]
    fn dropping_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        // A sender is still alive: empty means Empty once drained.
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx2.send(2).unwrap();
        drop(tx2);
        // Queued messages survive the disconnect, then it surfaces.
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn dropping_all_receivers_fails_sends() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn blocked_recv_wakes_on_sender_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let waiter = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_batch_is_contiguous_and_ordered() {
        let (tx, rx) = unbounded();
        tx.send(0u64).unwrap();
        tx.send_batch(vec![1, 2, 3]).unwrap();
        tx.send_batch(Vec::new()).unwrap(); // empty batch is a no-op
        tx.send(4).unwrap();
        let got = rx.try_recv_many(16);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(rx.try_recv_many(4).is_empty());
    }

    #[test]
    fn send_batch_fails_when_all_receivers_are_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send_batch(vec![1, 2]), Err(SendError(vec![1, 2])));
    }

    #[test]
    fn recv_many_timeout_drains_up_to_max() {
        let (tx, rx) = unbounded();
        tx.send_batch((0..10u64).collect()).unwrap();
        assert_eq!(rx.recv_many_timeout(Duration::from_secs(1), 4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(rx.recv_many_timeout(Duration::from_secs(1), 100).unwrap(), (4..10).collect::<Vec<_>>());
        assert_eq!(rx.recv_many_timeout(Duration::from_millis(5), 4), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_many_timeout(Duration::from_millis(5), 4), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn recv_many_timeout_wakes_on_batched_send() {
        let (tx, rx) = unbounded();
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send_batch(vec![7u32, 8, 9]).unwrap();
        });
        let got = rx.recv_many_timeout(Duration::from_secs(5), 8).unwrap();
        assert_eq!(got, vec![7, 8, 9]);
        sender.join().unwrap();
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = unbounded();
        assert!(rx.is_empty());
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        assert_eq!(tx.len(), 5);
        let _ = rx.try_recv();
        assert_eq!(rx.len(), 4);
    }
}
