//! Throughput counters, latency histograms and per-phase latency breakdowns.
//!
//! Workers record into thread-local [`WorkerStats`]; the experiment driver
//! merges them into a [`RunStats`] at the end of a run. Nothing here is
//! shared between threads during measurement, so recording is branch-cheap
//! and lock-free.

use crate::error::AbortReason;
use std::time::Duration;

/// Classification of a committed transaction, matching the paper's
/// terminology: *hot* = switch-only, *cold* = host-only, *warm* = spans both.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TxnClass {
    Hot,
    Cold,
    Warm,
}

impl TxnClass {
    pub fn label(self) -> &'static str {
        match self {
            TxnClass::Hot => "hot",
            TxnClass::Cold => "cold",
            TxnClass::Warm => "warm",
        }
    }
}

/// The execution phases used in the Fig 18a latency breakdown.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Time spent acquiring (and waiting on) row locks.
    LockAcquisition,
    /// Local reads/writes on the executing node.
    LocalAccess,
    /// Remote reads/writes on other nodes (includes the network round trips).
    RemoteAccess,
    /// Round trip to the switch plus pipeline execution.
    SwitchTxn,
    /// Everything else: parameter generation, commit bookkeeping, logging.
    TxnEngine,
}

pub const PHASES: [Phase; 5] =
    [Phase::LockAcquisition, Phase::LocalAccess, Phase::RemoteAccess, Phase::SwitchTxn, Phase::TxnEngine];

impl Phase {
    pub fn label(self) -> &'static str {
        match self {
            Phase::LockAcquisition => "Lock Acquisition",
            Phase::LocalAccess => "Local Access",
            Phase::RemoteAccess => "Remote Access",
            Phase::SwitchTxn => "Switch Txn",
            Phase::TxnEngine => "Txn Engine",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::LockAcquisition => 0,
            Phase::LocalAccess => 1,
            Phase::RemoteAccess => 2,
            Phase::SwitchTxn => 3,
            Phase::TxnEngine => 4,
        }
    }
}

/// A fixed-bucket log-scale latency histogram (nanoseconds). Buckets are
/// powers of two from 64 ns to ~8 s, which covers everything from a switch
/// pass to a pathological multi-second stall.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

const HIST_BUCKETS: usize = 28;
const HIST_BASE_SHIFT: u32 = 6; // first bucket: < 2^6 = 64 ns

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: vec![0; HIST_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = if ns < (1 << HIST_BASE_SHIFT) {
            0
        } else {
            let log = 63 - ns.leading_zeros();
            ((log - HIST_BASE_SHIFT + 1) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        match self.sum_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Approximate quantile (upper bucket bound of the bucket containing the
    /// q-quantile sample).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let bound_ns = 1u64 << (HIST_BASE_SHIFT + i as u32);
                return Duration::from_nanos(bound_ns);
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-worker statistics, merged into [`RunStats`] after a run.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    pub committed_hot: u64,
    pub committed_cold: u64,
    pub committed_warm: u64,
    pub aborts_lock_conflict: u64,
    pub aborts_wait_die: u64,
    pub aborts_remote_vote: u64,
    pub aborts_constraint: u64,
    pub aborts_other: u64,
    pub commit_latency: LatencyHistogram,
    /// Per-phase accumulated time (ns), Fig 18a.
    pub phase_ns: [u64; 5],
    /// Number of single-pass / multi-pass switch transactions issued.
    pub switch_single_pass: u64,
    pub switch_multi_pass: u64,
    /// Committed transactions whose hot set spanned more than one switch and
    /// therefore fell back to the host path (one sub-transaction per owning
    /// switch). Always 0 on single-switch topologies.
    pub cross_switch_fallback: u64,
    /// Read-only transactions that completed on the lock-free snapshot read
    /// path (they also count in `committed_cold`; this counter attributes
    /// them to the MVCC fast path).
    pub snapshot_reads: u64,
    /// Retry rounds: aborted attempts that were re-executed after a jittered
    /// exponential backoff (one per wait, not per abort — a transaction that
    /// exhausts its budget waits one time fewer than it aborted).
    pub retry_rounds: u64,
    /// Switch sub-transactions that ended in a timeout / in-doubt outcome —
    /// the health signal the per-switch circuit breaker trips on.
    pub switch_timeouts: u64,
    /// Hot operations demoted to the host 2PL path because their owning
    /// switch is in degraded mode (breaker open, authority on the host rows).
    pub degraded_hot: u64,
    /// Circuit-breaker trips observed by this worker (Closed → Open edges).
    pub breaker_trips: u64,
}

impl WorkerStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed transaction of the given class with its end-to-end
    /// latency.
    #[inline]
    pub fn record_commit(&mut self, class: TxnClass, latency: Duration) {
        match class {
            TxnClass::Hot => self.committed_hot += 1,
            TxnClass::Cold => self.committed_cold += 1,
            TxnClass::Warm => self.committed_warm += 1,
        }
        self.commit_latency.record(latency);
    }

    /// Records an abort attempt (the transaction will usually be retried).
    #[inline]
    pub fn record_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::LockConflict { .. } => self.aborts_lock_conflict += 1,
            AbortReason::WaitDieDied { .. } => self.aborts_wait_die += 1,
            AbortReason::RemoteVoteAbort { .. } => self.aborts_remote_vote += 1,
            AbortReason::ConstraintViolation => self.aborts_constraint += 1,
            AbortReason::RetryBudgetExhausted => self.aborts_other += 1,
            AbortReason::SwitchUnavailable { .. } => self.aborts_other += 1,
        }
    }

    /// Adds time to one of the Fig 18a phases.
    #[inline]
    pub fn record_phase(&mut self, phase: Phase, d: Duration) {
        self.phase_ns[phase.index()] += d.as_nanos().min(u128::from(u64::MAX)) as u64;
    }

    pub fn committed_total(&self) -> u64 {
        self.committed_hot + self.committed_cold + self.committed_warm
    }

    pub fn aborts_total(&self) -> u64 {
        self.aborts_lock_conflict
            + self.aborts_wait_die
            + self.aborts_remote_vote
            + self.aborts_constraint
            + self.aborts_other
    }

    /// Merges another worker's stats into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.committed_hot += other.committed_hot;
        self.committed_cold += other.committed_cold;
        self.committed_warm += other.committed_warm;
        self.aborts_lock_conflict += other.aborts_lock_conflict;
        self.aborts_wait_die += other.aborts_wait_die;
        self.aborts_remote_vote += other.aborts_remote_vote;
        self.aborts_constraint += other.aborts_constraint;
        self.aborts_other += other.aborts_other;
        self.commit_latency.merge(&other.commit_latency);
        for i in 0..self.phase_ns.len() {
            self.phase_ns[i] += other.phase_ns[i];
        }
        self.switch_single_pass += other.switch_single_pass;
        self.switch_multi_pass += other.switch_multi_pass;
        self.cross_switch_fallback += other.cross_switch_fallback;
        self.snapshot_reads += other.snapshot_reads;
        self.retry_rounds += other.retry_rounds;
        self.switch_timeouts += other.switch_timeouts;
        self.degraded_hot += other.degraded_hot;
        self.breaker_trips += other.breaker_trips;
    }
}

/// Aggregated statistics for one experiment run (one bar / one data point in
/// the paper's figures).
#[derive(Clone, Debug)]
pub struct RunStats {
    pub merged: WorkerStats,
    pub wall_time: Duration,
}

impl RunStats {
    pub fn from_workers<'a>(workers: impl IntoIterator<Item = &'a WorkerStats>, wall_time: Duration) -> Self {
        let mut merged = WorkerStats::new();
        for w in workers {
            merged.merge(w);
        }
        RunStats { merged, wall_time }
    }

    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.wall_time.is_zero() {
            return 0.0;
        }
        self.merged.committed_total() as f64 / self.wall_time.as_secs_f64()
    }

    /// Abort rate: aborted attempts / (aborted attempts + commits).
    pub fn abort_rate(&self) -> f64 {
        let aborts = self.merged.aborts_total() as f64;
        let commits = self.merged.committed_total() as f64;
        if aborts + commits == 0.0 {
            0.0
        } else {
            aborts / (aborts + commits)
        }
    }

    /// Fraction of committed transactions that were hot (switch-only).
    pub fn hot_fraction(&self) -> f64 {
        let total = self.merged.committed_total() as f64;
        if total == 0.0 {
            0.0
        } else {
            self.merged.committed_hot as f64 / total
        }
    }

    /// Mean commit latency.
    pub fn mean_latency(&self) -> Duration {
        self.merged.commit_latency.mean()
    }

    /// Per-phase mean time per committed transaction, Fig 18a.
    pub fn phase_breakdown(&self) -> Vec<(Phase, Duration)> {
        let commits = self.merged.committed_total().max(1);
        PHASES.iter().map(|&p| (p, Duration::from_nanos(self.merged.phase_ns[p.index()] / commits))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{TableId, TupleId};

    #[test]
    fn histogram_mean_and_quantile_are_plausible() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let mean = h.mean();
        assert!(mean >= Duration::from_micros(25) && mean <= Duration::from_micros(35));
        assert!(h.quantile(1.0) >= Duration::from_micros(50));
        assert!(h.quantile(0.0) >= Duration::from_micros(8));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Duration::from_micros(500));
    }

    #[test]
    fn worker_stats_classify_commits_and_aborts() {
        let mut w = WorkerStats::new();
        w.record_commit(TxnClass::Hot, Duration::from_micros(3));
        w.record_commit(TxnClass::Cold, Duration::from_micros(30));
        w.record_commit(TxnClass::Warm, Duration::from_micros(50));
        w.record_abort(AbortReason::LockConflict { tuple: TupleId::new(TableId(0), 1) });
        w.record_abort(AbortReason::ConstraintViolation);
        assert_eq!(w.committed_total(), 3);
        assert_eq!(w.aborts_total(), 2);
        assert_eq!(w.committed_hot, 1);
        assert_eq!(w.aborts_lock_conflict, 1);
        assert_eq!(w.aborts_constraint, 1);
    }

    #[test]
    fn run_stats_throughput_uses_wall_time() {
        let mut w = WorkerStats::new();
        for _ in 0..1000 {
            w.record_commit(TxnClass::Cold, Duration::from_micros(10));
        }
        let run = RunStats::from_workers([&w], Duration::from_secs(2));
        assert!((run.throughput() - 500.0).abs() < 1e-6);
        assert_eq!(run.abort_rate(), 0.0);
    }

    #[test]
    fn run_stats_merges_multiple_workers() {
        let mut a = WorkerStats::new();
        let mut b = WorkerStats::new();
        a.record_commit(TxnClass::Hot, Duration::from_micros(1));
        b.record_commit(TxnClass::Cold, Duration::from_micros(1));
        b.record_abort(AbortReason::ConstraintViolation);
        let run = RunStats::from_workers([&a, &b], Duration::from_secs(1));
        assert_eq!(run.merged.committed_total(), 2);
        assert!((run.hot_fraction() - 0.5).abs() < f64::EPSILON);
        assert!(run.abort_rate() > 0.0);
    }

    #[test]
    fn phase_breakdown_is_per_commit() {
        let mut w = WorkerStats::new();
        w.record_commit(TxnClass::Cold, Duration::from_micros(10));
        w.record_commit(TxnClass::Cold, Duration::from_micros(10));
        w.record_phase(Phase::LockAcquisition, Duration::from_micros(8));
        let run = RunStats::from_workers([&w], Duration::from_secs(1));
        let breakdown = run.phase_breakdown();
        let lock = breakdown.iter().find(|(p, _)| *p == Phase::LockAcquisition).unwrap().1;
        assert_eq!(lock, Duration::from_micros(4));
    }
}
