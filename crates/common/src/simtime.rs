//! Simulated network/hardware delays.
//!
//! The reproduction replaces the physical 10G network and the Tofino pipeline
//! with in-process components, but the paper's results hinge on *relative*
//! latencies (switch reachable in ½ RTT, pipeline pass ≪ host lock hold time).
//! [`spin_for`] imposes such delays precisely at sub-microsecond granularity
//! by busy-waiting; `thread::sleep` cannot be used because its granularity on
//! Linux (~50µs once descheduled) is far coarser than the latencies being
//! modelled.

use std::time::{Duration, Instant};

/// Busy-waits for `d`. Zero durations return immediately, which is what the
/// functional tests use ([`crate::LatencyConfig::zero`]).
#[inline]
pub fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Threshold above which [`wait_for`] yields the CPU instead of spinning.
/// Below it, `thread::sleep`'s wake-up granularity would distort the delay.
pub const SLEEP_THRESHOLD: Duration = Duration::from_micros(100);

/// Waits for `d`, choosing the mechanism by magnitude: short delays are
/// busy-waited (precision), long delays sleep (so that a cluster with many
/// worker threads can be simulated on a machine with few cores — the
/// "slow-motion" benchmark profile, see `LatencyConfig::bench_profile`).
#[inline]
pub fn wait_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d >= SLEEP_THRESHOLD {
        std::thread::sleep(d);
    } else {
        spin_for(d);
    }
}

/// A simple stopwatch for latency-breakdown measurements (Fig 18a). Each
/// worker owns one; `lap` returns the time since the previous lap and resets
/// the reference point, so consecutive phases of a transaction can be
/// attributed without nested timers.
#[derive(Debug)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch { last: Instant::now() }
    }

    /// Time elapsed since start or the previous lap; resets the lap point.
    #[inline]
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last;
        self.last = now;
        d
    }

    /// Resets the lap point without reporting.
    #[inline]
    pub fn reset(&mut self) {
        self.last = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_for_zero_is_instant() {
        let start = Instant::now();
        spin_for(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn spin_for_waits_at_least_the_requested_time() {
        let start = Instant::now();
        spin_for(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn stopwatch_laps_are_monotonic() {
        let mut sw = Stopwatch::start();
        spin_for(Duration::from_micros(50));
        let first = sw.lap();
        assert!(first >= Duration::from_micros(50));
        let second = sw.lap();
        // The second lap starts after the first lap's reset, so it must be
        // (much) smaller than the first.
        assert!(second <= first);
    }
}
