//! Cluster- and experiment-level configuration shared by all crates.

use std::time::Duration;

/// Which system variant the cluster runs. These are the three systems compared
/// throughout the paper's evaluation (§7.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SystemMode {
    /// Baseline: the switch only forwards packets; all transactions are
    /// executed by the host DBMS with 2PL + 2PC.
    NoSwitch,
    /// The switch acts as a central lock manager for hot tuples (NetLock-style
    /// baseline, reference \[69\] in the paper): lock requests travel ½ RTT,
    /// data stays on the nodes.
    LmSwitch,
    /// Full P4DB: hot tuples are stored and processed on the switch.
    P4db,
}

impl SystemMode {
    /// Short label used in benchmark output, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemMode::NoSwitch => "No-Switch",
            SystemMode::LmSwitch => "LM-Switch",
            SystemMode::P4db => "P4DB",
        }
    }
}

/// Host concurrency-control variant for cold/warm transactions (§7.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CcScheme {
    /// Abort immediately when a lock request is denied.
    NoWait,
    /// Wait if the lock owner is younger than the requester, otherwise abort
    /// (die).
    WaitDie,
}

impl CcScheme {
    pub fn label(self) -> &'static str {
        match self {
            CcScheme::NoWait => "NO_WAIT",
            CcScheme::WaitDie => "WAIT_DIE",
        }
    }
}

/// Network latency model. The paper's core latency argument is relative: a
/// database node reaches the ToR switch in *half* the latency it needs to
/// reach another node (one hop vs. two hops through the same switch). The
/// defaults below are calibrated so that experiments finish quickly while the
/// ½-RTT ratio and the contention-window effects are preserved.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LatencyConfig {
    /// One-way latency node → switch (and switch → node), in nanoseconds.
    /// A node-to-node message therefore costs `2 * one_way_ns` each way.
    pub one_way_ns: u64,
    /// Fixed per-message software overhead (serialisation, DPDK poll), ns.
    pub sw_overhead_ns: u64,
    /// Time the switch pipeline needs to process one packet (one pass),
    /// in nanoseconds. Real Tofino forwards at line rate; this models the
    /// per-pass pipeline delay seen by a single packet.
    pub switch_pass_ns: u64,
}

impl LatencyConfig {
    /// Latency model used by the benchmark harness: scaled-down but with the
    /// paper's relative proportions (switch reachable in ½ the node-to-node
    /// latency, switch pass ≪ host work).
    pub const fn realistic() -> Self {
        LatencyConfig { one_way_ns: 1_000, sw_overhead_ns: 150, switch_pass_ns: 60 }
    }

    /// Zero latency, used by functional tests where wall-clock time is
    /// irrelevant.
    pub const fn zero() -> Self {
        LatencyConfig { one_way_ns: 0, sw_overhead_ns: 0, switch_pass_ns: 0 }
    }

    /// The "slow-motion" profile used by the benchmark harness.
    ///
    /// The paper's cluster has ~2µs node-to-node RTTs; reproducing those with
    /// real threads requires one core per worker, which the evaluation
    /// machine may not have. Scaling every latency up by ~500× keeps all the
    /// *ratios* the evaluation depends on (switch reachable in ½ the node
    /// RTT, pipeline pass ≪ lock hold times, contention windows proportional
    /// to access latency) while letting tens of worker threads time-share a
    /// single core: workers spend almost all wall-clock time sleeping in the
    /// latency model rather than burning cycles. Absolute throughput numbers
    /// are correspondingly ~500× lower than the paper's; speedups and curve
    /// shapes are preserved (see EXPERIMENTS.md).
    pub const fn bench_profile() -> Self {
        LatencyConfig { one_way_ns: 250_000, sw_overhead_ns: 25_000, switch_pass_ns: 5_000 }
    }

    /// One-way node → switch delay.
    #[inline]
    pub fn to_switch(&self) -> Duration {
        Duration::from_nanos(self.one_way_ns + self.sw_overhead_ns)
    }

    /// One-way node → node delay (always routed through the switch, so two
    /// hops).
    #[inline]
    pub fn to_node(&self) -> Duration {
        Duration::from_nanos(2 * self.one_way_ns + self.sw_overhead_ns)
    }

    /// Full round trip node → node → node.
    #[inline]
    pub fn node_rtt(&self) -> Duration {
        Duration::from_nanos(2 * (2 * self.one_way_ns + self.sw_overhead_ns))
    }

    /// Full round trip node → switch → node (half the node RTT plus the
    /// pipeline pass).
    #[inline]
    pub fn switch_rtt(&self) -> Duration {
        Duration::from_nanos(2 * (self.one_way_ns + self.sw_overhead_ns) + self.switch_pass_ns)
    }

    /// Per-pass pipeline delay.
    #[inline]
    pub fn switch_pass(&self) -> Duration {
        Duration::from_nanos(self.switch_pass_ns)
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::realistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_is_reachable_in_half_the_node_latency() {
        let lat = LatencyConfig { one_way_ns: 1_000, sw_overhead_ns: 0, switch_pass_ns: 0 };
        assert_eq!(lat.to_switch().as_nanos() * 2, lat.to_node().as_nanos());
        assert_eq!(lat.switch_rtt().as_nanos() * 2, lat.node_rtt().as_nanos());
    }

    #[test]
    fn zero_config_is_zero() {
        let lat = LatencyConfig::zero();
        assert_eq!(lat.node_rtt(), Duration::ZERO);
        assert_eq!(lat.switch_rtt(), Duration::ZERO);
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(SystemMode::NoSwitch.label(), "No-Switch");
        assert_eq!(SystemMode::LmSwitch.label(), "LM-Switch");
        assert_eq!(SystemMode::P4db.label(), "P4DB");
        assert_eq!(CcScheme::NoWait.label(), "NO_WAIT");
        assert_eq!(CcScheme::WaitDie.label(), "WAIT_DIE");
    }
}
