//! Workload randomness: a fast per-worker PRNG, Zipf-distributed key
//! selection, and helpers for hot/cold key picks.
//!
//! The workload generators need to draw millions of keys per second per
//! worker, so everything here is allocation-free after construction and does
//! not depend on the `rand` crate's distribution machinery on the hot path
//! (the `rand` crate is still used for seeding and in tests).

/// A small, fast xorshift* PRNG. Deterministic per seed, which keeps workload
/// runs reproducible for a given `(node, worker, seed)` triple.
#[derive(Clone, Debug)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has a fixed point at zero.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        FastRng { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna). Good enough statistical quality for workload
        // key selection, and only a handful of instructions.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection-free mapping is fine here: the
        // slight modulo bias of a plain remainder is irrelevant for workload
        // key draws, but multiply-shift is also faster than `%`.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform choice of an element index from a non-empty slice length.
    #[inline]
    pub fn pick(&mut self, len: usize) -> usize {
        self.gen_range(len as u64) as usize
    }
}

/// Zipf-distributed generator over `0..n` with exponent `theta`, using the
/// standard Gray/Jim Gray "scrambled zipfian" construction from the YCSB
/// paper. Used by the microbenchmarks that vary skew continuously; the main
/// YCSB/SmallBank experiments instead use the paper's explicit hot-set model
/// (fixed hot-set size + hot-access probability) which is implemented by
/// [`HotSetChooser`].
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Builds a Zipf generator over `0..n` with skew `theta` (0 = uniform,
    /// 0.99 = classic YCSB default, larger = more skewed).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not finite / negative / `>= 1.0` is
    /// allowed but `theta == 1.0` exactly is rejected (harmonic divergence).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires a non-empty key space");
        assert!(theta.is_finite() && theta >= 0.0 && (theta - 1.0).abs() > 1e-9, "invalid theta {theta}");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation: n is at most a few million in our workloads and
        // construction happens once per worker, so O(n) here is acceptable.
        // For the billion-key YCSB table we approximate with the integral
        // beyond a cutoff, which keeps construction O(1e6).
        const EXACT_CUTOFF: u64 = 2_000_000;
        let exact_n = n.min(EXACT_CUTOFF);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact_n {
            // ∫_{cutoff}^{n} x^-theta dx
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (exact_n as f64).powf(a)) / a;
        }
        sum
    }

    /// Draws a value in `0..n`.
    pub fn sample(&self, rng: &mut FastRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Unused but kept for introspection in tests.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    #[allow(dead_code)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// The paper's skew model for YCSB and SmallBank (§7.2): a fixed number of
/// hot keys per node receives a fixed share of all accesses; the remaining
/// accesses are uniform over the cold keys.
#[derive(Clone, Debug)]
pub struct HotSetChooser {
    /// Number of hot keys (cluster-wide, already multiplied by node count).
    hot_keys: u64,
    /// Total key-space size.
    total_keys: u64,
    /// Probability that an access hits the hot set.
    hot_probability: f64,
}

impl HotSetChooser {
    /// Creates a chooser.
    ///
    /// # Panics
    /// Panics if `hot_keys > total_keys` or `total_keys == 0`.
    pub fn new(hot_keys: u64, total_keys: u64, hot_probability: f64) -> Self {
        assert!(total_keys > 0, "empty key space");
        assert!(hot_keys <= total_keys, "hot set larger than key space");
        assert!((0.0..=1.0).contains(&hot_probability), "invalid probability");
        HotSetChooser { hot_keys, total_keys, hot_probability }
    }

    /// Draws a key. Keys `0..hot_keys` are the hot keys (the workload crates
    /// map them onto per-node hot tuples); keys `hot_keys..total_keys` are
    /// cold.
    #[inline]
    pub fn sample(&self, rng: &mut FastRng) -> u64 {
        if self.hot_keys > 0 && rng.gen_bool(self.hot_probability) {
            rng.gen_range(self.hot_keys)
        } else if self.total_keys > self.hot_keys {
            self.hot_keys + rng.gen_range(self.total_keys - self.hot_keys)
        } else {
            rng.gen_range(self.total_keys)
        }
    }

    /// Whether a key drawn by [`Self::sample`] belongs to the hot range.
    #[inline]
    pub fn is_hot(&self, key: u64) -> bool {
        key < self.hot_keys
    }

    pub fn hot_keys(&self) -> u64 {
        self.hot_keys
    }

    pub fn total_keys(&self) -> u64 {
        self.total_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_rng_is_deterministic_per_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fast_rng_range_respects_bound() {
        let mut rng = FastRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.gen_range(10) < 10);
        }
    }

    #[test]
    fn fast_rng_bool_probability_is_sane() {
        let mut rng = FastRng::new(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn zipf_is_skewed_towards_small_keys() {
        let zipf = Zipf::new(1_000, 0.99);
        let mut rng = FastRng::new(3);
        let mut top10 = 0usize;
        let draws = 50_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With theta=0.99 the top-1% of keys should receive far more than 1%
        // of accesses.
        assert!(top10 as f64 / draws as f64 > 0.3, "top10 fraction {}", top10 as f64 / draws as f64);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = FastRng::new(11);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 3.0, "max={max} min={min}");
    }

    #[test]
    fn zipf_handles_large_keyspaces() {
        // The billion-row YCSB table: construction must stay fast and samples
        // must stay in range.
        let zipf = Zipf::new(1_000_000_000, 0.9);
        let mut rng = FastRng::new(5);
        for _ in 0..1_000 {
            assert!(zipf.sample(&mut rng) < 1_000_000_000);
        }
    }

    #[test]
    fn hot_set_chooser_respects_hot_probability() {
        let chooser = HotSetChooser::new(400, 1_000_000, 0.75);
        let mut rng = FastRng::new(9);
        let draws = 200_000;
        let hot = (0..draws).filter(|_| chooser.is_hot(chooser.sample(&mut rng))).count();
        let frac = hot as f64 / draws as f64;
        assert!((frac - 0.75).abs() < 0.01, "hot fraction {frac}");
    }

    #[test]
    fn hot_set_chooser_with_zero_hot_keys_is_all_cold() {
        let chooser = HotSetChooser::new(0, 1_000, 0.9);
        let mut rng = FastRng::new(2);
        for _ in 0..1_000 {
            assert!(!chooser.is_hot(chooser.sample(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "hot set larger")]
    fn hot_set_chooser_rejects_oversized_hot_set() {
        let _ = HotSetChooser::new(10, 5, 0.5);
    }
}
