//! Strongly-typed identifiers used across the system.
//!
//! All identifiers are small `Copy` newtypes over integers so that they can be
//! embedded in switch packets, lock-table entries and log records without
//! allocation, while still preventing accidental mixups (e.g. passing a
//! [`NodeId`] where a [`TableId`] is expected).

use std::fmt;

/// Identifier of a database node (server) in the cluster.
///
/// Node ids are dense: a cluster of `n` nodes uses ids `0..n`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the raw index, convenient for indexing per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a programmable switch in the topology.
///
/// Switch ids are dense: a topology of `n` switches uses ids `0..n`. The
/// single-switch configuration is `SwitchId(0)` everywhere.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchId(pub u16);

impl SwitchId {
    /// Returns the raw index, convenient for indexing per-switch vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "switch{}", self.0)
    }
}

/// Identifier of a worker thread within a node.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WorkerId(pub u16);

impl WorkerId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker{}", self.0)
    }
}

/// Identifier of a horizontal partition of a table. In the shared-nothing
/// host DBMS each partition is owned by exactly one node.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PartitionId(pub u16);

impl PartitionId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a table in the schema.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u16);

impl TableId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally unique identifier of a tuple: `(table, primary key)`.
///
/// TPC-C style composite keys are encoded into the 64-bit `key` field by the
/// workload crates (see `p4db-workloads::tpcc::keys`); the encoding is
/// workload-local, the rest of the system treats the key as opaque.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TupleId {
    pub table: TableId,
    pub key: u64,
}

impl TupleId {
    #[inline]
    pub const fn new(table: TableId, key: u64) -> Self {
        Self { table, key }
    }

    /// One full-avalanche hash of the tuple id. The lock table and the row
    /// store both derive their shard from this value, so admission-time
    /// footprint resolution computes it once per tuple per transaction and
    /// reuses it for every sharded structure the tuple touches.
    #[inline]
    pub fn mix(self) -> u64 {
        crate::hash::mix64(self.key ^ ((self.table.0 as u64) << 48))
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}:{}", self.table.0, self.key)
    }
}

/// Identifier of a transaction issued by a host node, unique within the
/// cluster run. Encodes the issuing node and worker so that WAIT_DIE
/// timestamps are totally ordered and ties are broken deterministically.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Builds a transaction id from a monotonically increasing per-worker
    /// sequence number plus the worker's coordinates.
    ///
    /// Layout (high to low): 32-bit sequence, 16-bit node, 16-bit worker.
    /// The sequence occupies the high bits so that *older* transactions
    /// (smaller sequence numbers) compare as smaller, which is exactly the
    /// priority order WAIT_DIE needs.
    #[inline]
    pub fn compose(seq: u32, node: NodeId, worker: WorkerId) -> Self {
        TxnId(((seq as u64) << 32) | ((node.0 as u64) << 16) | worker.0 as u64)
    }

    #[inline]
    pub fn sequence(self) -> u32 {
        (self.0 >> 32) as u32
    }

    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(((self.0 >> 16) & 0xffff) as u16)
    }

    #[inline]
    pub fn worker(self) -> WorkerId {
        WorkerId((self.0 & 0xffff) as u16)
    }

    /// WAIT_DIE priority: smaller ids are *older* and therefore have higher
    /// priority.
    #[inline]
    pub fn is_older_than(self, other: TxnId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}@{}/{}", self.sequence(), self.node(), self.worker())
    }
}

/// Globally-unique, serially-ordered transaction id assigned by the switch to
/// every switch (sub-)transaction it executes (§6.1 of the paper). The switch
/// increments it once per executed packet, so the numeric order *is* the
/// serial execution order and it can be used to replay switch transactions
/// during recovery.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalTxnId(pub u64);

impl GlobalTxnId {
    pub const UNASSIGNED: GlobalTxnId = GlobalTxnId(u64::MAX);

    #[inline]
    pub fn is_assigned(self) -> bool {
        self != Self::UNASSIGNED
    }
}

impl fmt::Display for GlobalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_assigned() {
            write!(f, "gid{}", self.0)
        } else {
            write!(f, "gid?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_roundtrips_components() {
        let id = TxnId::compose(42, NodeId(7), WorkerId(19));
        assert_eq!(id.sequence(), 42);
        assert_eq!(id.node(), NodeId(7));
        assert_eq!(id.worker(), WorkerId(19));
    }

    #[test]
    fn txn_id_orders_by_sequence_first() {
        let older = TxnId::compose(1, NodeId(7), WorkerId(3));
        let newer = TxnId::compose(2, NodeId(0), WorkerId(0));
        assert!(older.is_older_than(newer));
        assert!(!newer.is_older_than(older));
    }

    #[test]
    fn txn_id_breaks_ties_by_node_then_worker() {
        let a = TxnId::compose(5, NodeId(1), WorkerId(0));
        let b = TxnId::compose(5, NodeId(2), WorkerId(0));
        let c = TxnId::compose(5, NodeId(2), WorkerId(1));
        assert!(a.is_older_than(b));
        assert!(b.is_older_than(c));
    }

    #[test]
    fn global_txn_id_unassigned_sentinel() {
        assert!(!GlobalTxnId::UNASSIGNED.is_assigned());
        assert!(GlobalTxnId(0).is_assigned());
    }

    #[test]
    fn tuple_id_equality_and_display() {
        let a = TupleId::new(TableId(3), 99);
        let b = TupleId::new(TableId(3), 99);
        let c = TupleId::new(TableId(4), 99);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "t3:99");
    }
}
