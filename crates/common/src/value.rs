//! Tuple value representation.
//!
//! P4DB's switch stores hot tuples in register arrays whose cells are
//! fixed-width machine words (8 bytes on the Tofino generation used in the
//! paper, §2.3). The host DBMS in the paper is a main-memory store with
//! fixed-size rows. We mirror both: a [`Value`] is a small fixed-capacity
//! vector of 64-bit fields. Field 0 is the field that gets offloaded to a
//! switch register when the tuple is hot (the "switch column" of §7.5, e.g.
//! `d_next_o_id`, `w_ytd` or an account balance); the remaining fields model
//! the payload that stays on the host node and determines the tuple width
//! used in the capacity experiment (Fig 17).

/// Maximum number of 8-byte fields a row can carry. TPC-C's widest offloaded
/// rows in the paper (stock quantity + payload) fit comfortably; workloads
/// that need wider rows (the Fig 17 tuple-width sweep) use multiple logical
/// fields up to this cap.
pub const MAX_FIELDS: usize = 16;

/// A fixed-width row value: `width` live 64-bit fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Value {
    fields: [u64; MAX_FIELDS],
    width: u8,
}

impl Value {
    /// Creates a single-field value, the common case for YCSB and for switch
    /// registers.
    #[inline]
    pub fn scalar(v: u64) -> Self {
        let mut fields = [0u64; MAX_FIELDS];
        fields[0] = v;
        Self { fields, width: 1 }
    }

    /// Creates a zero-initialised value with `width` fields.
    ///
    /// # Panics
    /// Panics if `width` is zero or exceeds [`MAX_FIELDS`].
    #[inline]
    pub fn zeroed(width: usize) -> Self {
        assert!((1..=MAX_FIELDS).contains(&width), "invalid value width {width}");
        Self { fields: [0u64; MAX_FIELDS], width: width as u8 }
    }

    /// Creates a value from a slice of fields.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`MAX_FIELDS`].
    pub fn from_fields(fields: &[u64]) -> Self {
        assert!(!fields.is_empty() && fields.len() <= MAX_FIELDS, "invalid value width {}", fields.len());
        let mut buf = [0u64; MAX_FIELDS];
        buf[..fields.len()].copy_from_slice(fields);
        Self { fields: buf, width: fields.len() as u8 }
    }

    /// Number of live fields.
    #[inline]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Width in bytes (8 bytes per field), used by the switch control plane
    /// when computing how many rows fit into the register SRAM (Fig 17).
    #[inline]
    pub fn byte_width(&self) -> usize {
        self.width() * 8
    }

    /// Reads a field.
    ///
    /// # Panics
    /// Panics if `idx >= self.width()`.
    #[inline]
    pub fn field(&self, idx: usize) -> u64 {
        assert!(idx < self.width(), "field index {idx} out of range (width {})", self.width);
        self.fields[idx]
    }

    /// Writes a field.
    ///
    /// # Panics
    /// Panics if `idx >= self.width()`.
    #[inline]
    pub fn set_field(&mut self, idx: usize, v: u64) {
        assert!(idx < self.width(), "field index {idx} out of range (width {})", self.width);
        self.fields[idx] = v;
    }

    /// The switch column (field 0): the single 64-bit word that is offloaded
    /// to a switch register when this tuple is in the hot set.
    #[inline]
    pub fn switch_word(&self) -> u64 {
        self.fields[0]
    }

    /// Overwrites the switch column.
    #[inline]
    pub fn set_switch_word(&mut self, v: u64) {
        self.fields[0] = v;
    }

    /// Live fields as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.fields[..self.width()]
    }

    /// Interprets the switch column as a signed balance (SmallBank stores
    /// balances as two's-complement fixed-point integers on the switch, which
    /// is how the paper's constrained-writes check `balance >= 0`).
    #[inline]
    pub fn signed(&self) -> i64 {
        self.fields[0] as i64
    }

    /// Sets the switch column from a signed quantity.
    #[inline]
    pub fn set_signed(&mut self, v: i64) {
        self.fields[0] = v as u64;
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::scalar(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_width_one() {
        let v = Value::scalar(17);
        assert_eq!(v.width(), 1);
        assert_eq!(v.field(0), 17);
        assert_eq!(v.byte_width(), 8);
    }

    #[test]
    fn from_fields_preserves_contents() {
        let v = Value::from_fields(&[1, 2, 3, 4]);
        assert_eq!(v.width(), 4);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(v.byte_width(), 32);
    }

    #[test]
    fn set_field_updates_only_target() {
        let mut v = Value::zeroed(3);
        v.set_field(1, 42);
        assert_eq!(v.as_slice(), &[0, 42, 0]);
    }

    #[test]
    fn signed_roundtrip() {
        let mut v = Value::scalar(0);
        v.set_signed(-1234);
        assert_eq!(v.signed(), -1234);
        v.set_signed(99);
        assert_eq!(v.signed(), 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn field_out_of_range_panics() {
        let v = Value::scalar(1);
        let _ = v.field(1);
    }

    #[test]
    #[should_panic(expected = "invalid value width")]
    fn zeroed_rejects_zero_width() {
        let _ = Value::zeroed(0);
    }

    #[test]
    #[should_panic(expected = "invalid value width")]
    fn from_fields_rejects_too_wide() {
        let _ = Value::from_fields(&[0u64; MAX_FIELDS + 1]);
    }
}
