//! The envelope wrapping every message on the fabric.

use crate::endpoint::EndpointId;

/// A message in flight: source, destination and an opaque payload.
///
/// The fabric is generic over the payload so that the switch crate can ship
/// its packed packet representation and the transaction engine can ship its
/// 2PC control messages without this crate knowing about either.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    pub src: EndpointId,
    pub dst: EndpointId,
    pub payload: M,
}

impl<M> Envelope<M> {
    pub fn new(src: EndpointId, dst: EndpointId, payload: M) -> Self {
        Envelope { src, dst, payload }
    }

    /// Maps the payload, keeping addressing intact.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Envelope<N> {
        Envelope { src: self.src, dst: self.dst, payload: f(self.payload) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, SwitchId};

    #[test]
    fn map_preserves_addressing() {
        let e = Envelope::new(EndpointId::Node(NodeId(1)), EndpointId::Switch(SwitchId(0)), 41u32);
        let e = e.map(|v| v + 1);
        assert_eq!(e.payload, 42);
        assert_eq!(e.src, EndpointId::Node(NodeId(1)));
        assert_eq!(e.dst, EndpointId::Switch(SwitchId(0)));
    }
}
