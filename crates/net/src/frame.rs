//! Frame batching: the sender-side accumulator and the wire codec.
//!
//! Batching amortises per-message costs — one channel operation, one wake-up,
//! one (modelled) NIC doorbell per *frame* instead of per message. Two pieces
//! live here:
//!
//! * [`FrameBatcher`] — a per-destination accumulation buffer with a size
//!   trigger (`batch_size`) and a flush deadline (`flush_after`), used by the
//!   switch reply path and available to any fabric client. It never sends by
//!   itself; it hands full frames back to the caller, which routes them
//!   through [`crate::Fabric::send_frame_no_latency`].
//! * [`encode_frame`] / [`decode_frame_prefix`] — the versioned, checksummed
//!   byte encoding a frame would have on a real wire. The simulator fabric
//!   passes typed messages and does not need it to function, but the codec
//!   pins down the contract a torn frame must obey: like the WAL's torn-record
//!   rule, a frame truncated at *any* byte boundary decodes to exactly its
//!   intact envelope prefix and a structured error — never to a corrupted
//!   extra envelope. The property tests sweep every split point.

use crate::endpoint::EndpointId;
use crate::message::Envelope;
use p4db_common::{NodeId, SwitchId, WorkerId};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// FrameBatcher
// ---------------------------------------------------------------------------

/// Accumulates payloads per destination and releases them as frames of up to
/// `batch_size`, or whenever the oldest buffered payload exceeds the flush
/// deadline. `batch_size <= 1` degenerates to pass-through: every push
/// immediately returns a one-payload frame, reproducing unbatched behaviour
/// exactly.
#[derive(Debug)]
pub struct FrameBatcher<M> {
    batch_size: usize,
    flush_after: Duration,
    buffers: HashMap<EndpointId, Vec<M>>,
    /// Instant of the oldest buffered payload (drives the flush deadline).
    oldest: Option<Instant>,
    buffered: usize,
}

impl<M> FrameBatcher<M> {
    pub fn new(batch_size: usize, flush_after: Duration) -> Self {
        FrameBatcher { batch_size: batch_size.max(1), flush_after, buffers: HashMap::new(), oldest: None, buffered: 0 }
    }

    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Buffers one payload for `dst`. Returns a full frame (ready to send)
    /// when the destination's buffer reaches the batch size.
    pub fn push(&mut self, dst: EndpointId, payload: M) -> Option<(EndpointId, Vec<M>)> {
        if self.batch_size <= 1 {
            return Some((dst, vec![payload]));
        }
        let buffer = self.buffers.entry(dst).or_default();
        buffer.push(payload);
        if buffer.len() >= self.batch_size {
            let frame = std::mem::take(buffer);
            self.buffered -= frame.len() - 1; // the payload just pushed was never counted
            if self.buffered == 0 {
                // Nothing left waiting: a stale deadline would force the
                // *next* buffered payload out as a premature singleton frame.
                // (With several destinations still buffered the timestamp
                // stays — possibly older than their true oldest payload,
                // which only ever flushes early, never late.)
                self.oldest = None;
            }
            return Some((dst, frame));
        }
        self.buffered += 1;
        if self.oldest.is_none() {
            self.oldest = Some(Instant::now());
        }
        None
    }

    /// Whether the oldest buffered payload has waited longer than the flush
    /// deadline. Callers check this once per scheduling quantum.
    pub fn deadline_expired(&self, now: Instant) -> bool {
        match self.oldest {
            Some(oldest) => now.duration_since(oldest) >= self.flush_after,
            None => false,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Takes every partially filled frame, emptying the batcher.
    pub fn flush_all(&mut self) -> Vec<(EndpointId, Vec<M>)> {
        self.oldest = None;
        self.buffered = 0;
        let mut frames: Vec<(EndpointId, Vec<M>)> =
            self.buffers.drain().filter(|(_, frame)| !frame.is_empty()).collect();
        // Deterministic flush order keeps batched runs reproducible per seed.
        frames.sort_by_key(|(dst, _)| endpoint_key(*dst));
        frames
    }
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// First bytes of every encoded frame: magic + format version.
const FRAME_MAGIC: &[u8; 5] = b"P4FB\x01";

/// A parse failure while decoding a frame, pointing at the byte offset where
/// decoding stopped. Torn trailing envelopes — a frame cut mid-flight —
/// surface here as a regular error, with every intact envelope before the
/// tear already decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameCodecError {
    pub offset: usize,
    pub message: String,
}

impl FrameCodecError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        FrameCodecError { offset, message: message.into() }
    }
}

impl fmt::Display for FrameCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for FrameCodecError {}

/// FNV-1a 64-bit over a byte slice — the same per-record checksum the WAL
/// uses, here guarding each envelope of a frame against torn or bit-flipped
/// tails that would otherwise decode as a shorter but well-formed envelope.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn endpoint_key(ep: EndpointId) -> (u8, u16, u16) {
    match ep {
        EndpointId::Node(n) => (0, n.0, 0),
        EndpointId::Worker(n, w) => (1, n.0, w.0),
        EndpointId::Switch(s) => (2, s.0, 0),
    }
}

fn encode_endpoint(out: &mut Vec<u8>, ep: EndpointId) {
    let (tag, a, b) = endpoint_key(ep);
    out.push(tag);
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
}

fn decode_endpoint(bytes: &[u8], at: usize) -> Result<EndpointId, FrameCodecError> {
    let tag = bytes[at];
    let a = u16::from_le_bytes([bytes[at + 1], bytes[at + 2]]);
    let b = u16::from_le_bytes([bytes[at + 3], bytes[at + 4]]);
    match tag {
        0 => Ok(EndpointId::Node(NodeId(a))),
        1 => Ok(EndpointId::Worker(NodeId(a), WorkerId(b))),
        2 => Ok(EndpointId::Switch(SwitchId(a))),
        other => Err(FrameCodecError::new(at, format!("unknown endpoint tag {other}"))),
    }
}

/// Bytes occupied by an encoded endpoint (tag + two u16s).
const ENDPOINT_BYTES: usize = 5;

/// Encodes a batch of byte-payload envelopes into the frame wire format:
/// a 5-byte header (`P4FB` + version) followed by one record per envelope —
/// src, dst, payload length (u32 LE), payload bytes, FNV-1a-64 checksum of
/// everything before it in the record (u64 LE).
pub fn encode_frame(envelopes: &[Envelope<Vec<u8>>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + envelopes.len() * 32);
    out.extend_from_slice(FRAME_MAGIC);
    for env in envelopes {
        let record_start = out.len();
        encode_endpoint(&mut out, env.src);
        encode_endpoint(&mut out, env.dst);
        out.extend_from_slice(&(env.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&env.payload);
        let crc = fnv1a(&out[record_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }
    out
}

/// Decodes a (possibly truncated) frame, returning every envelope whose
/// record is fully intact before the first tear or corruption, plus the
/// error that terminated decoding, if any. The checksum is verified before
/// the record is accepted, so a tear that leaves a shorter-but-well-formed
/// record behind is still rejected.
pub fn decode_frame_prefix(bytes: &[u8]) -> (Vec<Envelope<Vec<u8>>>, Option<FrameCodecError>) {
    let mut envelopes = Vec::new();
    if bytes.is_empty() {
        return (envelopes, None);
    }
    if bytes.len() < FRAME_MAGIC.len() {
        return (envelopes, Some(FrameCodecError::new(0, "truncated frame header")));
    }
    if &bytes[..FRAME_MAGIC.len()] != FRAME_MAGIC {
        return (envelopes, Some(FrameCodecError::new(0, "bad frame magic or unsupported version")));
    }
    let mut at = FRAME_MAGIC.len();
    while at < bytes.len() {
        let record_start = at;
        // Fixed-size prefix: src + dst + payload length.
        let fixed = 2 * ENDPOINT_BYTES + 4;
        if bytes.len() - at < fixed {
            return (envelopes, Some(FrameCodecError::new(record_start, "torn record: truncated envelope header")));
        }
        let len_at = at + 2 * ENDPOINT_BYTES;
        let payload_len =
            u32::from_le_bytes([bytes[len_at], bytes[len_at + 1], bytes[len_at + 2], bytes[len_at + 3]]) as usize;
        let body_end = at + fixed + payload_len;
        let record_end = body_end + 8;
        if bytes.len() < record_end {
            return (envelopes, Some(FrameCodecError::new(record_start, "torn record: truncated payload or checksum")));
        }
        let stored = u64::from_le_bytes(bytes[body_end..record_end].try_into().expect("8 checksum bytes"));
        let actual = fnv1a(&bytes[record_start..body_end]);
        if stored != actual {
            return (
                envelopes,
                Some(FrameCodecError::new(
                    record_start,
                    format!(
                        "checksum mismatch (stored {stored:016x}, computed {actual:016x}) — torn or corrupt record"
                    ),
                )),
            );
        }
        let src = match decode_endpoint(bytes, at) {
            Ok(ep) => ep,
            Err(e) => return (envelopes, Some(e)),
        };
        let dst = match decode_endpoint(bytes, at + ENDPOINT_BYTES) {
            Ok(ep) => ep,
            Err(e) => return (envelopes, Some(e)),
        };
        envelopes.push(Envelope::new(src, dst, bytes[at + fixed..body_end].to_vec()));
        at = record_end;
    }
    (envelopes, None)
}

/// Like [`decode_frame_prefix`] but all-or-nothing.
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<Envelope<Vec<u8>>>, FrameCodecError> {
    match decode_frame_prefix(bytes) {
        (envelopes, None) => Ok(envelopes),
        (_, Some(err)) => Err(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(key: u8) -> Envelope<Vec<u8>> {
        Envelope::new(
            EndpointId::Worker(NodeId(key as u16), WorkerId(7)),
            EndpointId::Switch(SwitchId(key as u16 % 3)),
            vec![key, key.wrapping_add(1), 0xAB],
        )
    }

    #[test]
    fn frame_roundtrip_is_exact() {
        let frame = vec![
            env(1),
            env(2),
            Envelope::new(EndpointId::Switch(SwitchId(1)), EndpointId::Node(NodeId(3)), Vec::new()),
        ];
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
        // Empty frames round-trip too.
        assert_eq!(decode_frame(&encode_frame(&[])).unwrap(), Vec::new());
        assert_eq!(decode_frame(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn torn_frame_recovers_the_intact_prefix() {
        let frame = vec![env(1), env(2), env(3)];
        let bytes = encode_frame(&frame);
        // Cut in the middle of the last record.
        let cut = bytes.len() - 4;
        let (prefix, err) = decode_frame_prefix(&bytes[..cut]);
        assert_eq!(prefix, frame[..2].to_vec());
        assert!(err.is_some());
    }

    #[test]
    fn flipped_payload_byte_is_detected() {
        let frame = vec![env(9)];
        let mut bytes = encode_frame(&frame);
        let flip_at = bytes.len() - 10; // inside the payload
        bytes[flip_at] ^= 0x40;
        let err = decode_frame(&bytes).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode_frame(b"NOPE\x01").unwrap_err();
        assert!(err.message.contains("magic"), "{err}");
        let err = decode_frame(b"P4").unwrap_err();
        assert!(err.message.contains("truncated frame header"), "{err}");
    }

    #[test]
    fn batcher_passthrough_at_batch_size_one() {
        let mut b: FrameBatcher<u64> = FrameBatcher::new(1, Duration::from_micros(50));
        let dst = EndpointId::Node(NodeId(0));
        assert_eq!(b.push(dst, 7), Some((dst, vec![7])));
        assert!(b.is_empty());
        assert!(b.flush_all().is_empty());
    }

    #[test]
    fn batcher_releases_full_frames_and_flushes_partials() {
        let mut b: FrameBatcher<u64> = FrameBatcher::new(3, Duration::from_secs(10));
        let a = EndpointId::Node(NodeId(0));
        let c = EndpointId::Node(NodeId(1));
        assert_eq!(b.push(a, 1), None);
        assert_eq!(b.push(c, 10), None);
        assert_eq!(b.push(a, 2), None);
        assert_eq!(b.push(a, 3), Some((a, vec![1, 2, 3])));
        assert!(!b.is_empty(), "c still has a partial frame");
        assert_eq!(b.flush_all(), vec![(c, vec![10])]);
        assert!(b.is_empty());
    }

    #[test]
    fn full_frame_release_clears_the_deadline_when_batcher_empties() {
        let mut b: FrameBatcher<u64> = FrameBatcher::new(2, Duration::from_millis(1));
        let dst = EndpointId::Switch(SwitchId(0));
        let t0 = Instant::now();
        b.push(dst, 1);
        assert!(b.push(dst, 2).is_some(), "second push completes the frame");
        // Emptied by the full frame: no stale deadline may linger, and a
        // fresh payload must start its own deadline rather than inherit one.
        assert!(!b.deadline_expired(t0 + Duration::from_secs(10)));
        b.push(dst, 3);
        assert!(!b.deadline_expired(Instant::now()), "fresh payload inherited a stale deadline");
    }

    #[test]
    fn batcher_deadline_tracks_the_oldest_payload() {
        let mut b: FrameBatcher<u64> = FrameBatcher::new(8, Duration::from_millis(1));
        let dst = EndpointId::Switch(SwitchId(0));
        let now = Instant::now();
        assert!(!b.deadline_expired(now));
        b.push(dst, 1);
        assert!(!b.deadline_expired(now), "deadline counts from the push");
        assert!(b.deadline_expired(now + Duration::from_millis(5)));
        b.flush_all();
        assert!(!b.deadline_expired(now + Duration::from_secs(1)), "flushing clears the deadline");
    }
}
