//! The rack latency model and per-worker network statistics.

use crate::endpoint::EndpointId;
use p4db_common::simtime::wait_for;
use p4db_common::LatencyConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters describing the traffic a component generated on the simulated
/// network. Shared via `Arc`, updated with relaxed atomics (counts only, no
/// ordering requirements).
#[derive(Debug, Default)]
pub struct NetStats {
    pub messages_to_switch: AtomicU64,
    pub messages_to_nodes: AtomicU64,
    pub multicasts: AtomicU64,
}

impl NetStats {
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.messages_to_switch.load(Ordering::Relaxed),
            self.messages_to_nodes.load(Ordering::Relaxed),
            self.multicasts.load(Ordering::Relaxed),
        )
    }
}

/// Imposes the paper's relative latencies on every simulated hop.
///
/// A clone is cheap (it shares the stats), so every worker can own one.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    config: LatencyConfig,
    stats: Arc<NetStats>,
}

impl LatencyModel {
    pub fn new(config: LatencyConfig) -> Self {
        LatencyModel { config, stats: Arc::new(NetStats::default()) }
    }

    pub fn config(&self) -> LatencyConfig {
        self.config
    }

    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Delay for one hop between the given endpoints, following the rack
    /// topology: node → switch is one hop, node → node is two hops (through
    /// the switch), switch → node is one hop. Messages between endpoints on
    /// the same node are free (shared memory).
    pub fn one_way(&self, src: EndpointId, dst: EndpointId) -> Duration {
        match (src.node(), dst.node()) {
            // node -> switch or switch -> node: single hop.
            (Some(_), None) | (None, Some(_)) => self.config.to_switch(),
            // switch -> switch does not exist, treat as free.
            (None, None) => Duration::ZERO,
            (Some(a), Some(b)) => {
                if a == b {
                    Duration::ZERO
                } else {
                    self.config.to_node()
                }
            }
        }
    }

    /// Blocks the caller for the one-way delay of this hop and counts it.
    pub fn impose(&self, src: EndpointId, dst: EndpointId) {
        let d = self.one_way(src, dst);
        match dst {
            EndpointId::Switch(_) => {
                self.stats.messages_to_switch.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.stats.messages_to_nodes.fetch_add(1, Ordering::Relaxed);
            }
        }
        wait_for(d);
    }

    /// Blocks the caller for a full remote round trip between two distinct
    /// nodes (used by the direct-call model for remote tuple accesses).
    pub fn impose_node_rtt(&self) {
        self.stats.messages_to_nodes.fetch_add(2, Ordering::Relaxed);
        wait_for(self.config.node_rtt());
    }

    /// Blocks the caller for a full switch round trip *excluding* the pipeline
    /// pass (the switch simulator accounts for its own pass delay).
    pub fn impose_switch_rtt_wire(&self) {
        self.stats.messages_to_switch.fetch_add(1, Ordering::Relaxed);
        wait_for(Duration::from_nanos(2 * (self.config.one_way_ns + self.config.sw_overhead_ns)));
    }

    /// Counts a multicast (switch → all nodes) without blocking: the multicast
    /// happens on the switch's egress path, concurrently with the caller.
    pub fn count_multicast(&self) {
        self.stats.multicasts.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, SwitchId, WorkerId};
    use std::time::Instant;

    fn endpoints() -> (EndpointId, EndpointId, EndpointId, EndpointId) {
        (
            EndpointId::Node(NodeId(0)),
            EndpointId::Node(NodeId(1)),
            EndpointId::Worker(NodeId(0), WorkerId(2)),
            EndpointId::Switch(SwitchId(0)),
        )
    }

    #[test]
    fn switch_hop_is_half_of_node_hop() {
        let lat = LatencyModel::new(LatencyConfig { one_way_ns: 1_000, sw_overhead_ns: 0, switch_pass_ns: 0 });
        let (n0, n1, _, sw) = endpoints();
        let to_switch = lat.one_way(n0, sw);
        let to_node = lat.one_way(n0, n1);
        assert_eq!(to_switch.as_nanos() * 2, to_node.as_nanos());
    }

    #[test]
    fn same_node_messages_are_free() {
        let lat = LatencyModel::new(LatencyConfig::realistic());
        let (n0, _, w0, _) = endpoints();
        assert_eq!(lat.one_way(n0, w0), Duration::ZERO);
    }

    #[test]
    fn impose_counts_traffic() {
        let lat = LatencyModel::new(LatencyConfig::zero());
        let (n0, n1, _, sw) = endpoints();
        lat.impose(n0, sw);
        lat.impose(sw, n0);
        lat.impose(n0, n1);
        lat.count_multicast();
        let (to_switch, to_nodes, mc) = lat.stats().snapshot();
        assert_eq!(to_switch, 1);
        assert_eq!(to_nodes, 2);
        assert_eq!(mc, 1);
    }

    #[test]
    fn impose_actually_waits() {
        let lat = LatencyModel::new(LatencyConfig { one_way_ns: 100_000, sw_overhead_ns: 0, switch_pass_ns: 0 });
        let (n0, n1, _, _) = endpoints();
        let start = Instant::now();
        lat.impose(n0, n1);
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn zero_config_never_blocks() {
        let lat = LatencyModel::new(LatencyConfig::zero());
        let start = Instant::now();
        for _ in 0..1000 {
            lat.impose_node_rtt();
            lat.impose_switch_rtt_wire();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
