//! A typed, multi-endpoint message fabric backed by lock-free channels.
//!
//! Endpoints register once at cluster construction time; afterwards sending
//! is wait-free apart from the imposed wire latency. Receivers own a
//! [`Mailbox`] and poll or block on it. The switch's ingress port, every
//! worker's response port, and every node's 2PC control port are fabric
//! endpoints.

use crate::endpoint::EndpointId;
use crate::latency::LatencyModel;
use crate::message::Envelope;
use p4db_common::channel::{unbounded, Receiver, Sender};
use p4db_common::sync::unpoison;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// The receiving end of a fabric endpoint.
#[derive(Debug)]
pub struct Mailbox<M> {
    id: EndpointId,
    rx: Receiver<Envelope<M>>,
}

impl<M> Mailbox<M> {
    /// The endpoint this mailbox belongs to.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with a timeout. Returns `None` on timeout or if all
    /// senders disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Blocking receive; returns `None` only when every sender is gone.
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.rx.recv().ok()
    }

    /// Number of queued messages (approximate).
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

struct Registry<M> {
    endpoints: HashMap<EndpointId, Sender<Envelope<M>>>,
}

/// The fabric: a registry of endpoints plus the latency model. Cloning is
/// cheap and shares the registry, so every worker and the switch thread hold
/// their own handle.
pub struct Fabric<M> {
    registry: Arc<RwLock<Registry<M>>>,
    latency: LatencyModel,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric { registry: Arc::clone(&self.registry), latency: self.latency.clone() }
    }
}

impl<M> Fabric<M> {
    pub fn new(latency: LatencyModel) -> Self {
        Fabric { registry: Arc::new(RwLock::new(Registry { endpoints: HashMap::new() })), latency }
    }

    /// The latency model this fabric uses (shared with direct-call accesses).
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Registers an endpoint and returns its mailbox.
    ///
    /// # Panics
    /// Panics if the endpoint is already registered — endpoint identity is a
    /// construction-time invariant of the cluster.
    pub fn register(&self, id: EndpointId) -> Mailbox<M> {
        let (tx, rx) = unbounded();
        let mut reg = unpoison(self.registry.write());
        let prev = reg.endpoints.insert(id, tx);
        assert!(prev.is_none(), "endpoint {id} registered twice");
        Mailbox { id, rx }
    }

    /// Whether an endpoint exists.
    pub fn is_registered(&self, id: EndpointId) -> bool {
        unpoison(self.registry.read()).endpoints.contains_key(&id)
    }

    /// Sends `payload` from `src` to `dst`, imposing the one-way wire latency
    /// on the *caller* (the sending thread models the NIC serialisation +
    /// propagation delay; the receiver does not pay it again).
    ///
    /// Returns `false` if the destination endpoint is not registered or its
    /// mailbox has been dropped (cluster shutdown).
    pub fn send(&self, src: EndpointId, dst: EndpointId, payload: M) -> bool {
        self.latency.impose(src, dst);
        self.send_no_latency(src, dst, payload)
    }

    /// Sends without imposing latency. Used by the switch egress path, which
    /// accounts for its own delays, and by tests.
    pub fn send_no_latency(&self, src: EndpointId, dst: EndpointId, payload: M) -> bool {
        let reg = unpoison(self.registry.read());
        match reg.endpoints.get(&dst) {
            Some(tx) => tx.send(Envelope::new(src, dst, payload)).is_ok(),
            None => false,
        }
    }

    /// All currently registered endpoints (used by the switch multicast).
    pub fn endpoints(&self) -> Vec<EndpointId> {
        unpoison(self.registry.read()).endpoints.keys().copied().collect()
    }
}

impl<M: Clone> Fabric<M> {
    /// Multicasts `payload` from the switch to every node endpoint
    /// (`EndpointId::Node(_)`), the way the switch broadcasts the commit
    /// decision + results of a warm transaction (Fig 10). Counted as a single
    /// multicast, no per-destination latency is imposed on the caller.
    pub fn multicast_to_nodes(&self, src: EndpointId, payload: M) -> usize {
        self.latency.count_multicast();
        let reg = unpoison(self.registry.read());
        let mut sent = 0;
        for (id, tx) in reg.endpoints.iter() {
            if matches!(id, EndpointId::Node(_)) && tx.send(Envelope::new(src, *id, payload.clone())).is_ok() {
                sent += 1;
            }
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{LatencyConfig, NodeId, WorkerId};
    use std::thread;

    fn fabric() -> Fabric<u64> {
        Fabric::new(LatencyModel::new(LatencyConfig::zero()))
    }

    #[test]
    fn send_and_receive_roundtrip() {
        let f = fabric();
        let switch_mb = f.register(EndpointId::Switch);
        let node = EndpointId::Node(NodeId(0));
        let _node_mb = f.register(node);
        assert!(f.send(node, EndpointId::Switch, 7));
        let env = switch_mb.try_recv().expect("message delivered");
        assert_eq!(env.payload, 7);
        assert_eq!(env.src, node);
    }

    #[test]
    fn send_to_unregistered_endpoint_fails() {
        let f = fabric();
        let node = EndpointId::Node(NodeId(0));
        let _mb = f.register(node);
        assert!(!f.send(node, EndpointId::Switch, 1));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let f = fabric();
        let _a = f.register(EndpointId::Switch);
        let _b = f.register(EndpointId::Switch);
    }

    #[test]
    fn multicast_reaches_all_nodes_but_not_workers() {
        let f = fabric();
        let n0 = f.register(EndpointId::Node(NodeId(0)));
        let n1 = f.register(EndpointId::Node(NodeId(1)));
        let w = f.register(EndpointId::Worker(NodeId(0), WorkerId(0)));
        let sent = f.multicast_to_nodes(EndpointId::Switch, 99);
        assert_eq!(sent, 2);
        assert_eq!(n0.try_recv().unwrap().payload, 99);
        assert_eq!(n1.try_recv().unwrap().payload, 99);
        assert!(w.try_recv().is_none());
    }

    #[test]
    fn mailbox_blocks_until_message_arrives() {
        let f = fabric();
        let mb = f.register(EndpointId::Switch);
        let sender = f.clone();
        let handle = thread::spawn(move || {
            let node = EndpointId::Node(NodeId(4));
            let _mb = sender.register(node);
            sender.send(node, EndpointId::Switch, 1234)
        });
        let env = mb.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(env.payload, 1234);
        assert!(handle.join().unwrap());
    }

    #[test]
    fn mailbox_len_tracks_backlog() {
        let f = fabric();
        let mb = f.register(EndpointId::Switch);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        for i in 0..5 {
            f.send(node, EndpointId::Switch, i);
        }
        assert_eq!(mb.len(), 5);
        assert!(!mb.is_empty());
        while mb.try_recv().is_some() {}
        assert!(mb.is_empty());
    }
}
