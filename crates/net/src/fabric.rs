//! A typed, multi-endpoint message fabric backed by lock-free channels.
//!
//! Endpoints register once at cluster construction time; afterwards sending
//! is wait-free apart from the imposed wire latency. Receivers own a
//! [`Mailbox`] and poll or block on it. The switch's ingress port, every
//! worker's response port, and every node's 2PC control port are fabric
//! endpoints.
//!
//! The fabric is also the chaos-testing injection point for network faults:
//! when constructed with [`Fabric::with_faults`], every unicast send consults
//! a seeded [`FaultInjector`] which may drop the message (the sender still
//! sees success, exactly like a lost packet), delay it, or hold it back until
//! the next message to the same destination (a reordering).

use crate::endpoint::EndpointId;
use crate::latency::LatencyModel;
use crate::message::Envelope;
use p4db_common::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use p4db_common::faults::{FaultAction, FaultEvent, FaultInjector};
use p4db_common::simtime::wait_for;
use p4db_common::sync::unpoison;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Outcome of a timed receive, distinguishing "nothing arrived in time" from
/// "no sender can ever deliver again". The distinction matters to
/// fault-injection clients: a timeout means the request (or its reply) may
/// have been lost on the wire and the transaction is *in doubt*, while a
/// disconnect means the cluster is shutting down.
#[derive(Debug, PartialEq)]
pub enum RecvOutcome<M> {
    /// A message arrived.
    Msg(Envelope<M>),
    /// The timeout elapsed with senders still connected.
    TimedOut,
    /// Every sender has been dropped and the queue is drained.
    Disconnected,
}

impl<M> RecvOutcome<M> {
    /// The received envelope, if any — convenient for tests and callers that
    /// treat both failure modes alike.
    pub fn msg(self) -> Option<Envelope<M>> {
        match self {
            RecvOutcome::Msg(env) => Some(env),
            RecvOutcome::TimedOut | RecvOutcome::Disconnected => None,
        }
    }

    pub fn is_timeout(&self) -> bool {
        matches!(self, RecvOutcome::TimedOut)
    }

    pub fn is_disconnected(&self) -> bool {
        matches!(self, RecvOutcome::Disconnected)
    }
}

/// Outcome of a timed **batch** receive ([`Mailbox::recv_batch_timeout`]):
/// like [`RecvOutcome`], but a successful receive carries a whole frame of
/// envelopes drained in one channel operation. The frame is never empty.
#[derive(Debug, PartialEq)]
pub enum BatchRecvOutcome<M> {
    /// At least one message arrived; up to `max` were drained together.
    Frame(Vec<Envelope<M>>),
    /// The timeout elapsed with senders still connected.
    TimedOut,
    /// Every sender has been dropped and the queue is drained.
    Disconnected,
}

impl<M> BatchRecvOutcome<M> {
    pub fn is_disconnected(&self) -> bool {
        matches!(self, BatchRecvOutcome::Disconnected)
    }
}

/// The receiving end of a fabric endpoint.
#[derive(Debug)]
pub struct Mailbox<M> {
    id: EndpointId,
    rx: Receiver<Envelope<M>>,
}

impl<M> Mailbox<M> {
    /// The endpoint this mailbox belongs to.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with a timeout, reporting timeout and sender
    /// disconnect as distinct outcomes.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvOutcome<M> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => RecvOutcome::Msg(env),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Disconnected,
        }
    }

    /// Blocking receive; returns `None` only when every sender is gone.
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.rx.recv().ok()
    }

    /// Non-blocking batch receive: drains up to `max` queued envelopes in a
    /// single channel operation. The batched counterpart of [`Mailbox::try_recv`].
    pub fn drain_batch(&self, max: usize) -> Vec<Envelope<M>> {
        self.rx.try_recv_many(max)
    }

    /// Blocking batch receive: waits for at least one envelope (up to
    /// `timeout`), then drains up to `max` envelopes in the same channel
    /// operation. This is how the switch ingress pulls a whole frame of
    /// packets per scheduling quantum instead of paying one lock + wake-up
    /// per packet.
    pub fn recv_batch_timeout(&self, timeout: Duration, max: usize) -> BatchRecvOutcome<M> {
        match self.rx.recv_many_timeout(timeout, max) {
            Ok(frame) => BatchRecvOutcome::Frame(frame),
            Err(RecvTimeoutError::Timeout) => BatchRecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => BatchRecvOutcome::Disconnected,
        }
    }

    /// Number of queued messages (approximate).
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

struct Registry<M> {
    endpoints: HashMap<EndpointId, Sender<Envelope<M>>>,
    /// Cached senders of every `EndpointId::Node(_)` endpoint, maintained by
    /// [`Fabric::register`], so the warm-decision multicast does not allocate
    /// (or filter the whole registry) on every call.
    node_senders: Vec<(EndpointId, Sender<Envelope<M>>)>,
}

/// Chaos-testing state attached to a fabric: the seeded fault decision
/// stream plus the per-destination holdback buffer implementing reorders.
struct ChaosState<M> {
    injector: Arc<FaultInjector>,
    held: Mutex<HashMap<EndpointId, Vec<Envelope<M>>>>,
}

/// The fabric: a registry of endpoints plus the latency model. Cloning is
/// cheap and shares the registry, so every worker and the switch thread hold
/// their own handle.
pub struct Fabric<M> {
    registry: Arc<RwLock<Registry<M>>>,
    latency: LatencyModel,
    chaos: Option<Arc<ChaosState<M>>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric { registry: Arc::clone(&self.registry), latency: self.latency.clone(), chaos: self.chaos.clone() }
    }
}

impl<M> Fabric<M> {
    pub fn new(latency: LatencyModel) -> Self {
        Fabric {
            registry: Arc::new(RwLock::new(Registry { endpoints: HashMap::new(), node_senders: Vec::new() })),
            latency,
            chaos: None,
        }
    }

    /// A fabric that routes every unicast send through `injector`.
    pub fn with_faults(latency: LatencyModel, injector: Arc<FaultInjector>) -> Self {
        Fabric {
            registry: Arc::new(RwLock::new(Registry { endpoints: HashMap::new(), node_senders: Vec::new() })),
            latency,
            chaos: Some(Arc::new(ChaosState { injector, held: Mutex::new(HashMap::new()) })),
        }
    }

    /// The latency model this fabric uses (shared with direct-call accesses).
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The fault trace recorded so far (empty without fault injection).
    pub fn fault_trace(&self) -> Vec<FaultEvent> {
        self.chaos.as_ref().map(|c| c.injector.trace()).unwrap_or_default()
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.chaos.as_ref().map(|c| c.injector.injected()).unwrap_or(0)
    }

    /// Messages swallowed by a blackholed switch so far (separate from the
    /// probabilistic fault budget).
    pub fn blackhole_drops(&self) -> u64 {
        self.chaos.as_ref().map(|c| c.injector.blackhole_drops()).unwrap_or(0)
    }

    /// Clears any blackhole targeting `switch` — invoked by switch recovery
    /// / re-admission, the model of replacing the dead hardware.
    pub fn heal_switch(&self, switch: u16) {
        if let Some(chaos) = self.chaos.as_ref() {
            chaos.injector.heal_blackhole(switch);
        }
    }

    /// Whether a blackhole swallows this message. Requests *to* a switch
    /// count toward activation; once active, both directions are dark.
    fn blackholed(&self, chaos: &ChaosState<M>, src: EndpointId, dst: EndpointId, link: &dyn Fn() -> String) -> bool {
        match (src, dst) {
            (_, EndpointId::Switch(s)) => chaos.injector.blackhole_decide(s.0, true, link),
            (EndpointId::Switch(s), _) => chaos.injector.blackhole_decide(s.0, false, link),
            _ => false,
        }
    }

    /// Registers an endpoint and returns its mailbox.
    ///
    /// # Panics
    /// Panics if the endpoint is already registered — endpoint identity is a
    /// construction-time invariant of the cluster.
    pub fn register(&self, id: EndpointId) -> Mailbox<M> {
        let (tx, rx) = unbounded();
        let mut reg = unpoison(self.registry.write());
        let prev = reg.endpoints.insert(id, tx.clone());
        assert!(prev.is_none(), "endpoint {id} registered twice");
        // Keep the multicast cache in sync: registering a node endpoint is
        // the only event that can change the node sender set.
        if matches!(id, EndpointId::Node(_)) {
            reg.node_senders.push((id, tx));
        }
        Mailbox { id, rx }
    }

    /// Whether an endpoint exists.
    pub fn is_registered(&self, id: EndpointId) -> bool {
        unpoison(self.registry.read()).endpoints.contains_key(&id)
    }

    /// Sends `payload` from `src` to `dst`, imposing the one-way wire latency
    /// on the *caller* (the sending thread models the NIC serialisation +
    /// propagation delay; the receiver does not pay it again).
    ///
    /// Returns `false` if the destination endpoint is not registered or its
    /// mailbox has been dropped (cluster shutdown).
    pub fn send(&self, src: EndpointId, dst: EndpointId, payload: M) -> bool {
        self.latency.impose(src, dst);
        self.send_no_latency(src, dst, payload)
    }

    /// Sends without imposing latency. Used by the switch egress path, which
    /// accounts for its own delays, and by tests.
    ///
    /// Under fault injection a message may be dropped (the send still
    /// reports success — a lost packet is invisible to the sender), delayed,
    /// or delivered after the next message to the same destination.
    pub fn send_no_latency(&self, src: EndpointId, dst: EndpointId, payload: M) -> bool {
        let Some(chaos) = self.chaos.as_ref() else {
            return self.deliver(src, dst, payload);
        };
        if self.blackholed(chaos, src, dst, &|| format!("{src}->{dst}")) {
            return true;
        }
        match chaos.injector.decide(&|| format!("{src}->{dst}")) {
            FaultAction::Deliver => {}
            FaultAction::Drop => return true,
            FaultAction::Delay(d) => wait_for(d),
            FaultAction::HoldBack => {
                unpoison(chaos.held.lock()).entry(dst).or_default().push(Envelope::new(src, dst, payload));
                return true;
            }
        }
        let sent = self.deliver(src, dst, payload);
        // Release any held messages for this destination *after* the fresh
        // one: the held message has now been overtaken — a reordering.
        let held = unpoison(chaos.held.lock()).remove(&dst);
        if let Some(envelopes) = held {
            for env in envelopes {
                self.deliver(env.src, env.dst, env.payload);
            }
        }
        sent
    }

    /// Sends a whole frame of payloads from `src` to `dst`, imposing the wire
    /// latency **once** for the frame: batching is exactly the amortisation of
    /// per-message costs over a frame, both in the simulator (one channel
    /// operation, one wake-up) and on the modelled wire (one NIC doorbell).
    ///
    /// An empty frame is a no-op that reports success.
    pub fn send_frame(&self, src: EndpointId, dst: EndpointId, payloads: Vec<M>) -> bool {
        if payloads.is_empty() {
            return true;
        }
        self.latency.impose(src, dst);
        self.send_frame_no_latency(src, dst, payloads)
    }

    /// Sends a frame without imposing latency (switch egress path, tests).
    ///
    /// Under fault injection the **whole frame** is the unit of damage: one
    /// injector decision drops, delays or holds back all of its envelopes
    /// together — a lost or reordered frame on a real wire loses or reorders
    /// every transaction it carries. The differential chaos tests rely on
    /// this to prove whole-frame faults never double-apply intents.
    pub fn send_frame_no_latency(&self, src: EndpointId, dst: EndpointId, payloads: Vec<M>) -> bool {
        if payloads.is_empty() {
            return true;
        }
        let Some(chaos) = self.chaos.as_ref() else {
            return self.deliver_frame(src, dst, payloads);
        };
        if self.blackholed(chaos, src, dst, &|| format!("{src}->{dst} (frame of {})", payloads.len())) {
            return true;
        }
        match chaos.injector.decide(&|| format!("{src}->{dst} (frame of {})", payloads.len())) {
            FaultAction::Deliver => {}
            FaultAction::Drop => return true,
            FaultAction::Delay(d) => wait_for(d),
            FaultAction::HoldBack => {
                let mut held = unpoison(chaos.held.lock());
                let buffer = held.entry(dst).or_default();
                buffer.extend(payloads.into_iter().map(|p| Envelope::new(src, dst, p)));
                return true;
            }
        }
        let sent = self.deliver_frame(src, dst, payloads);
        // Release held-back messages for this destination *after* the fresh
        // frame, exactly like the unicast path: an overtaking reorder.
        let held = unpoison(chaos.held.lock()).remove(&dst);
        if let Some(envelopes) = held {
            for env in envelopes {
                self.deliver(env.src, env.dst, env.payload);
            }
        }
        sent
    }

    /// Delivers every held-back message (end of a chaos wave, so reordered
    /// messages are not retroactively turned into drops).
    pub fn flush_faults(&self) {
        let Some(chaos) = self.chaos.as_ref() else { return };
        let held: Vec<Envelope<M>> = unpoison(chaos.held.lock()).drain().flat_map(|(_, envelopes)| envelopes).collect();
        for env in held {
            self.deliver(env.src, env.dst, env.payload);
        }
    }

    fn deliver(&self, src: EndpointId, dst: EndpointId, payload: M) -> bool {
        let reg = unpoison(self.registry.read());
        match reg.endpoints.get(&dst) {
            Some(tx) => tx.send(Envelope::new(src, dst, payload)).is_ok(),
            None => false,
        }
    }

    /// Delivers a whole frame in one registry lookup + one channel operation.
    fn deliver_frame(&self, src: EndpointId, dst: EndpointId, payloads: Vec<M>) -> bool {
        let reg = unpoison(self.registry.read());
        match reg.endpoints.get(&dst) {
            Some(tx) => tx.send_batch(payloads.into_iter().map(|p| Envelope::new(src, dst, p)).collect()).is_ok(),
            None => false,
        }
    }

    /// All currently registered endpoints (used by the switch multicast).
    pub fn endpoints(&self) -> Vec<EndpointId> {
        unpoison(self.registry.read()).endpoints.keys().copied().collect()
    }
}

impl<M: Clone> Fabric<M> {
    /// Multicasts `payload` from the switch to every node endpoint
    /// (`EndpointId::Node(_)`), the way the switch broadcasts the commit
    /// decision + results of a warm transaction (Fig 10). Counted as a single
    /// multicast, no per-destination latency is imposed on the caller.
    /// Multicasts bypass fault injection: the warm-decision broadcast is
    /// advisory and injecting faults there would only hide message faults on
    /// the paths the invariants actually depend on.
    pub fn multicast_to_nodes(&self, src: EndpointId, payload: M) -> usize {
        self.latency.count_multicast();
        let reg = unpoison(self.registry.read());
        let mut sent = 0;
        for (id, tx) in reg.node_senders.iter() {
            if tx.send(Envelope::new(src, *id, payload.clone())).is_ok() {
                sent += 1;
            }
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::faults::{BlackholeFault, FaultKind, FaultPlan, NetFaultConfig};
    use p4db_common::{LatencyConfig, NodeId, SwitchId, WorkerId};
    use std::thread;

    /// The tests use a single-switch topology: switch 0 everywhere.
    const SW: EndpointId = EndpointId::Switch(SwitchId(0));

    fn fabric() -> Fabric<u64> {
        Fabric::new(LatencyModel::new(LatencyConfig::zero()))
    }

    #[test]
    fn send_and_receive_roundtrip() {
        let f = fabric();
        let switch_mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _node_mb = f.register(node);
        assert!(f.send(node, SW, 7));
        let env = switch_mb.try_recv().expect("message delivered");
        assert_eq!(env.payload, 7);
        assert_eq!(env.src, node);
    }

    #[test]
    fn send_to_unregistered_endpoint_fails() {
        let f = fabric();
        let node = EndpointId::Node(NodeId(0));
        let _mb = f.register(node);
        assert!(!f.send(node, SW, 1));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let f = fabric();
        let _a = f.register(SW);
        let _b = f.register(SW);
    }

    #[test]
    fn multicast_reaches_all_nodes_but_not_workers() {
        let f = fabric();
        let n0 = f.register(EndpointId::Node(NodeId(0)));
        let n1 = f.register(EndpointId::Node(NodeId(1)));
        let w = f.register(EndpointId::Worker(NodeId(0), WorkerId(0)));
        let sent = f.multicast_to_nodes(SW, 99);
        assert_eq!(sent, 2);
        assert_eq!(n0.try_recv().unwrap().payload, 99);
        assert_eq!(n1.try_recv().unwrap().payload, 99);
        assert!(w.try_recv().is_none());
    }

    #[test]
    fn mailbox_blocks_until_message_arrives() {
        let f = fabric();
        let mb = f.register(SW);
        let sender = f.clone();
        let handle = thread::spawn(move || {
            let node = EndpointId::Node(NodeId(4));
            let _mb = sender.register(node);
            sender.send(node, SW, 1234)
        });
        let env = mb.recv_timeout(Duration::from_secs(5)).msg().expect("delivered");
        assert_eq!(env.payload, 1234);
        assert!(handle.join().unwrap());
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        let f = fabric();
        let mb = f.register(SW);
        // Senders (fabric clones) still alive: a short wait times out.
        assert!(mb.recv_timeout(Duration::from_millis(5)).is_timeout());
        // Dropping the whole fabric (all senders) disconnects the mailbox.
        drop(f);
        assert!(mb.recv_timeout(Duration::from_millis(5)).is_disconnected());
    }

    #[test]
    fn mailbox_len_tracks_backlog() {
        let f = fabric();
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        for i in 0..5 {
            f.send(node, SW, i);
        }
        assert_eq!(mb.len(), 5);
        assert!(!mb.is_empty());
        while mb.try_recv().is_some() {}
        assert!(mb.is_empty());
    }

    #[test]
    fn send_frame_delivers_in_order_and_drains_as_a_batch() {
        let f = fabric();
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        assert!(f.send_frame(node, SW, vec![1, 2, 3]));
        assert!(f.send_frame(node, SW, Vec::new()), "empty frame is a no-op");
        assert!(f.send(node, SW, 4));
        match mb.recv_batch_timeout(Duration::from_secs(5), 16) {
            BatchRecvOutcome::Frame(envs) => {
                assert_eq!(envs.iter().map(|e| e.payload).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
                assert!(envs.iter().all(|e| e.src == node));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(mb.recv_batch_timeout(Duration::from_millis(5), 16), BatchRecvOutcome::TimedOut);
        drop(f);
        assert!(mb.recv_batch_timeout(Duration::from_millis(5), 16).is_disconnected());
    }

    #[test]
    fn send_frame_to_unregistered_endpoint_fails() {
        let f = fabric();
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        assert!(!f.send_frame(node, SW, vec![1]));
    }

    #[test]
    fn recv_batch_caps_at_max() {
        let f = fabric();
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        f.send_frame(node, SW, (0..10).collect());
        match mb.recv_batch_timeout(Duration::from_secs(1), 4) {
            BatchRecvOutcome::Frame(envs) => assert_eq!(envs.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(mb.drain_batch(100).len(), 6);
        assert!(mb.drain_batch(100).is_empty());
    }

    fn chaos_fabric(net: NetFaultConfig) -> Fabric<u64> {
        let plan = FaultPlan { net, ..FaultPlan::seeded(1) };
        Fabric::with_faults(LatencyModel::new(LatencyConfig::zero()), Arc::new(FaultInjector::new(&plan)))
    }

    #[test]
    fn dropped_messages_report_success_but_never_arrive() {
        let f = chaos_fabric(NetFaultConfig { drop_prob: 1.0, max_faults: u64::MAX, ..NetFaultConfig::none() });
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        for i in 0..10 {
            assert!(f.send(node, SW, i), "drops are invisible to the sender");
        }
        assert!(mb.is_empty());
        assert_eq!(f.faults_injected(), 10);
        assert!(f.fault_trace().iter().all(|e| e.kind == FaultKind::Drop));
    }

    #[test]
    fn held_back_message_is_delivered_after_the_next_one() {
        let f = chaos_fabric(NetFaultConfig { reorder_prob: 1.0, max_faults: 1, ..NetFaultConfig::none() });
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        // First send is held back (budget 1), second is delivered and
        // releases the first: arrival order is 2, 1.
        assert!(f.send(node, SW, 1));
        assert!(mb.is_empty());
        assert!(f.send(node, SW, 2));
        assert_eq!(mb.try_recv().unwrap().payload, 2);
        assert_eq!(mb.try_recv().unwrap().payload, 1);
    }

    #[test]
    fn flush_faults_delivers_stranded_holdbacks() {
        let f = chaos_fabric(NetFaultConfig { reorder_prob: 1.0, max_faults: 1, ..NetFaultConfig::none() });
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        assert!(f.send(node, SW, 7));
        assert!(mb.is_empty());
        f.flush_faults();
        assert_eq!(mb.try_recv().unwrap().payload, 7);
        // Flushing twice is harmless.
        f.flush_faults();
        assert!(mb.is_empty());
    }

    #[test]
    fn dropped_frames_vanish_whole() {
        let f = chaos_fabric(NetFaultConfig { drop_prob: 1.0, max_faults: 1, ..NetFaultConfig::none() });
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        // One fault budget: the first frame is dropped in its entirety, the
        // second arrives in its entirety.
        assert!(f.send_frame(node, SW, vec![1, 2, 3]));
        assert!(f.send_frame(node, SW, vec![4, 5]));
        let got: Vec<u64> = std::iter::from_fn(|| mb.try_recv().map(|e| e.payload)).collect();
        assert_eq!(got, vec![4, 5], "frames are the unit of loss: no partial delivery");
        assert_eq!(f.faults_injected(), 1);
    }

    #[test]
    fn held_back_frames_stay_contiguous_when_released() {
        let f = chaos_fabric(NetFaultConfig { reorder_prob: 1.0, max_faults: 1, ..NetFaultConfig::none() });
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        assert!(f.send_frame(node, SW, vec![1, 2]));
        assert!(mb.is_empty(), "whole frame held back");
        assert!(f.send_frame(node, SW, vec![3, 4]));
        let got: Vec<u64> = std::iter::from_fn(|| mb.try_recv().map(|e| e.payload)).collect();
        assert_eq!(got, vec![3, 4, 1, 2], "overtaken frame is released intact, after the fresh one");
    }

    #[test]
    fn budget_exhaustion_restores_normal_delivery() {
        let f = chaos_fabric(NetFaultConfig { drop_prob: 1.0, max_faults: 3, ..NetFaultConfig::none() });
        let mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let _n = f.register(node);
        for i in 0..10 {
            f.send(node, SW, i);
        }
        // The first three were dropped; everything after the budget arrives.
        let received: Vec<u64> = std::iter::from_fn(|| mb.try_recv().map(|e| e.payload)).collect();
        assert_eq!(received, vec![3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn blackholed_switch_swallows_both_directions_until_healed() {
        let plan = FaultPlan {
            blackhole: Some(BlackholeFault { switch: 0, after_messages: 2, heal_after_drops: 0 }),
            ..FaultPlan::quiet(1)
        };
        let f: Fabric<u64> =
            Fabric::with_faults(LatencyModel::new(LatencyConfig::zero()), Arc::new(FaultInjector::new(&plan)));
        let sw_mb = f.register(SW);
        let node = EndpointId::Node(NodeId(0));
        let node_mb = f.register(node);

        // First request toward the switch still gets through (activation
        // threshold 2): only the *count* of request-direction messages arms it.
        assert!(f.send(node, SW, 1));
        assert_eq!(sw_mb.try_recv().unwrap().payload, 1);

        // Second request activates the hole and is swallowed — and so is the
        // reply direction and every whole frame after it.
        assert!(f.send(node, SW, 2), "blackhole drops are invisible to the sender");
        assert!(f.send(SW, node, 3));
        assert!(f.send_frame(node, SW, vec![4, 5]));
        assert!(sw_mb.is_empty());
        assert!(node_mb.try_recv().is_none());
        assert_eq!(f.blackhole_drops(), 3, "a frame is one swallowed message");
        assert_eq!(f.faults_injected(), 0, "blackhole drops are not charged to the fault budget");

        // Node-to-node traffic is unaffected throughout.
        let other = EndpointId::Node(NodeId(1));
        let other_mb = f.register(other);
        assert!(f.send(node, other, 9));
        assert_eq!(other_mb.try_recv().unwrap().payload, 9);

        // Healing (hardware replaced) restores delivery permanently.
        f.heal_switch(0);
        assert!(f.send(node, SW, 6));
        assert_eq!(sw_mb.try_recv().unwrap().payload, 6);
        assert!(f.send(SW, node, 7));
        assert_eq!(node_mb.try_recv().unwrap().payload, 7);
    }
}
