//! # p4db-net
//!
//! The in-process stand-in for the paper's data-center network (8 nodes, 10G
//! NICs, DPDK, all connected to one Top-of-Rack switch).
//!
//! Two things matter to P4DB's evaluation and both are preserved here:
//!
//! 1. **Relative latency** — a node reaches the switch in ½ the latency it
//!    needs to reach another node (one hop vs. two hops through the same
//!    switch). [`latency::LatencyModel`] imposes exactly that, by busy-waiting
//!    for calibrated sub-microsecond delays.
//! 2. **Message passing** — switch transactions are network packets sent to
//!    the switch and answered asynchronously, possibly after recirculation.
//!    [`fabric::Fabric`] is a typed, multi-endpoint message fabric (backed by
//!    lock-free channels) used for the node ⇄ switch path and for the
//!    switch-side result multicast of warm transactions (Fig 10).
//!
//! Remote *data* accesses between nodes are modelled as direct calls into the
//! owning node's partition plus the corresponding [`latency::LatencyModel`]
//! delay (see `p4db-txn::executor`); routing them through the fabric as well
//! would only add queueing that the real system does not have (DPDK polls the
//! NIC from the worker thread itself).

pub mod endpoint;
pub mod fabric;
pub mod frame;
pub mod latency;
pub mod message;

pub use endpoint::EndpointId;
pub use fabric::{BatchRecvOutcome, Fabric, Mailbox, RecvOutcome};
pub use frame::{decode_frame, decode_frame_prefix, encode_frame, FrameBatcher, FrameCodecError};
pub use latency::{LatencyModel, NetStats};
pub use message::Envelope;
