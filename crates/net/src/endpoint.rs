//! Network endpoints: every addressable entity on the simulated rack network.

use p4db_common::{NodeId, SwitchId, WorkerId};
use std::fmt;

/// An addressable endpoint on the rack network.
///
/// Worker endpoints exist because switch transaction *responses* are routed
/// back to the issuing worker thread (the paper keeps all transaction state on
/// the issuing database node, §5.4); giving every worker its own mailbox means
/// responses never need demultiplexing locks.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EndpointId {
    /// A database node's control endpoint (2PC votes, recovery traffic).
    Node(NodeId),
    /// A specific worker thread on a node (switch transaction responses).
    Worker(NodeId, WorkerId),
    /// A programmable switch's packet-processing engine. Multi-switch
    /// topologies register one such endpoint per switch.
    Switch(SwitchId),
}

impl EndpointId {
    /// Whether this endpoint lives on a switch.
    pub fn is_switch(self) -> bool {
        matches!(self, EndpointId::Switch(_))
    }

    /// The node this endpoint belongs to (`None` for switches).
    pub fn node(self) -> Option<NodeId> {
        match self {
            EndpointId::Node(n) | EndpointId::Worker(n, _) => Some(n),
            EndpointId::Switch(_) => None,
        }
    }

    /// The switch this endpoint belongs to (`None` for host endpoints).
    pub fn switch(self) -> Option<SwitchId> {
        match self {
            EndpointId::Switch(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointId::Node(n) => write!(f, "{n}"),
            EndpointId::Worker(n, w) => write!(f, "{n}/{w}"),
            EndpointId::Switch(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_node_extraction() {
        assert_eq!(EndpointId::Node(NodeId(3)).node(), Some(NodeId(3)));
        assert_eq!(EndpointId::Worker(NodeId(1), WorkerId(4)).node(), Some(NodeId(1)));
        assert_eq!(EndpointId::Switch(SwitchId(0)).node(), None);
        assert_eq!(EndpointId::Switch(SwitchId(2)).switch(), Some(SwitchId(2)));
        assert_eq!(EndpointId::Node(NodeId(0)).switch(), None);
        assert!(EndpointId::Switch(SwitchId(0)).is_switch());
        assert!(!EndpointId::Node(NodeId(0)).is_switch());
    }

    #[test]
    fn endpoints_are_distinct_hash_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(EndpointId::Node(NodeId(0)));
        set.insert(EndpointId::Worker(NodeId(0), WorkerId(0)));
        set.insert(EndpointId::Switch(SwitchId(0)));
        set.insert(EndpointId::Switch(SwitchId(1)));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn switch_endpoints_display_their_id() {
        assert_eq!(EndpointId::Switch(SwitchId(0)).to_string(), "switch0");
        assert_eq!(EndpointId::Switch(SwitchId(3)).to_string(), "switch3");
    }
}
