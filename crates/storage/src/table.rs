//! In-memory tables of the host DBMS.
//!
//! The host DBMS in the paper is a shared-nothing main-memory store; each
//! node owns one horizontal partition per table. A [`Table`] here is one such
//! partition: a hash map from the 64-bit primary key to a row protected by a
//! lightweight reader-writer latch. Latches protect *physical* consistency of
//! a row only; *logical* (transactional) consistency is enforced by the 2PL
//! lock table in [`crate::locks`].

use p4db_common::sync::unpoison;
use p4db_common::{Error, Result, TableId, TupleId, Value};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A single row: the value behind a latch.
#[derive(Debug)]
pub struct Row {
    value: RwLock<Value>,
}

impl Row {
    fn new(value: Value) -> Self {
        Row { value: RwLock::new(value) }
    }

    /// Reads the row.
    pub fn read(&self) -> Value {
        *unpoison(self.value.read())
    }

    /// Overwrites the row.
    pub fn write(&self, value: Value) {
        *unpoison(self.value.write()) = value;
    }

    /// Applies a closure to the row under the write latch and returns its
    /// result (used for read-modify-write operations like balance updates).
    ///
    /// Unlike the other `unpoison` sites, the closure here can panic halfway
    /// through a multi-field mutation and leave a torn value behind.
    /// Adopting that state anyway is deliberate: it matches the seed's
    /// `parking_lot` semantics (no poisoning), and a worker that panics does
    /// so while holding the tuple's *logical* 2PL lock, which is never
    /// released — so no committing transaction can observe the torn row.
    pub fn update<R>(&self, f: impl FnOnce(&mut Value) -> R) -> R {
        let mut guard = unpoison(self.value.write());
        f(&mut guard)
    }
}

/// One partition of one table.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    rows: RwLock<HashMap<u64, Arc<Row>>>,
}

impl Table {
    pub fn new(id: TableId) -> Self {
        Table { id, rows: RwLock::new(HashMap::new()) }
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    /// Number of rows in this partition.
    pub fn len(&self) -> usize {
        unpoison(self.rows.read()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts (or replaces) a row. Used by the loaders and by inserting
    /// transactions (TPC-C NewOrder).
    pub fn insert(&self, key: u64, value: Value) {
        unpoison(self.rows.write()).insert(key, Arc::new(Row::new(value)));
    }

    /// Bulk-load helper: inserts many rows while holding the map latch once.
    pub fn bulk_load(&self, rows: impl IntoIterator<Item = (u64, Value)>) {
        let mut map = unpoison(self.rows.write());
        for (key, value) in rows {
            map.insert(key, Arc::new(Row::new(value)));
        }
    }

    /// Looks up a row handle. The returned `Arc` keeps the row alive even if
    /// it is concurrently deleted, which keeps readers safe.
    pub fn get(&self, key: u64) -> Option<Arc<Row>> {
        unpoison(self.rows.read()).get(&key).cloned()
    }

    /// Looks up a row handle or returns a typed error.
    pub fn get_or_err(&self, key: u64) -> Result<Arc<Row>> {
        self.get(key).ok_or(Error::TupleNotFound(TupleId::new(self.id, key)))
    }

    /// Reads a row's value directly.
    pub fn read(&self, key: u64) -> Result<Value> {
        Ok(self.get_or_err(key)?.read())
    }

    /// Writes a row's value directly (the row must exist).
    pub fn write(&self, key: u64, value: Value) -> Result<()> {
        self.get_or_err(key)?.write(value);
        Ok(())
    }

    /// Removes a row; returns whether it existed.
    pub fn remove(&self, key: u64) -> bool {
        unpoison(self.rows.write()).remove(&key).is_some()
    }

    /// Iterates a snapshot of the current keys (used by loaders and tests;
    /// not a consistent scan).
    pub fn keys(&self) -> Vec<u64> {
        unpoison(self.rows.read()).keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(TableId(1))
    }

    #[test]
    fn insert_read_write_roundtrip() {
        let t = table();
        t.insert(7, Value::scalar(10));
        assert_eq!(t.read(7).unwrap().switch_word(), 10);
        t.write(7, Value::scalar(20)).unwrap();
        assert_eq!(t.read(7).unwrap().switch_word(), 20);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn missing_key_yields_typed_error() {
        let t = table();
        match t.read(99) {
            Err(Error::TupleNotFound(tid)) => {
                assert_eq!(tid, TupleId::new(TableId(1), 99));
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn update_applies_read_modify_write() {
        let t = table();
        t.insert(1, Value::scalar(100));
        let row = t.get(1).unwrap();
        let old = row.update(|v| {
            let old = v.switch_word();
            v.set_switch_word(old + 5);
            old
        });
        assert_eq!(old, 100);
        assert_eq!(t.read(1).unwrap().switch_word(), 105);
    }

    #[test]
    fn bulk_load_inserts_everything() {
        let t = table();
        t.bulk_load((0..100).map(|k| (k, Value::scalar(k))));
        assert_eq!(t.len(), 100);
        assert_eq!(t.read(42).unwrap().switch_word(), 42);
    }

    #[test]
    fn remove_deletes_row() {
        let t = table();
        t.insert(1, Value::scalar(1));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert!(t.read(1).is_err());
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let t = Arc::new(table());
        t.insert(0, Value::scalar(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let row = t.get(0).unwrap();
                        row.update(|v| v.set_switch_word(v.switch_word() + 1));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.read(0).unwrap().switch_word(), 8000);
    }
}
