//! In-memory tables of the host DBMS.
//!
//! The host DBMS in the paper is a shared-nothing main-memory store; each
//! node owns one horizontal partition per table. A [`Table`] here is one such
//! partition — and, since PR 5, a *hash-sharded* one: the single map latch
//! the seed engine funnelled every tuple access through is replaced by a
//! fixed power-of-two array of shards (the same pattern the 2PL `LockTable`
//! has always used), each an independent latch + fast word-mixer map, so
//! unrelated accesses never touch the same cache line, let alone the same
//! lock. The seed layout survives as an explicit flavor
//! ([`Table::seed_single_latch`]): one latch, one std SipHash map — the
//! baseline arm of the node-scaling benchmark pays exactly the seed's
//! per-access cost.
//!
//! Lookups hand out [`RowHandle`]s (`Arc<Row>`): a handle stays valid for the
//! life of the row — across concurrent inserts, shard-map growth and even
//! removal of the row itself (the `Arc` keeps the storage alive; the row just
//! stops being reachable through the table). The transaction engine resolves
//! a transaction's whole footprint into handles once at admission and never
//! touches the maps again for that transaction.
//!
//! Latches protect *physical* consistency only; *logical* (transactional)
//! consistency is enforced by the 2PL lock table in [`crate::locks`].

use p4db_common::hash::FastBuildHasher;
use p4db_common::sync::unpoison;
use p4db_common::{Error, Result, TableId, TupleId, Value};
use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockWriteGuard};

/// Default shard count of a table partition. Matches the 2PL lock table:
/// large enough that a handful of workers rarely collide, small enough that
/// per-shard iteration stays cheap.
pub const DEFAULT_TABLE_SHARDS: usize = 64;

/// A single row: the live value behind a latch, plus (since PR 9) a chain
/// of committed versions for lock-free snapshot readers.
///
/// The live `value` is what the 2PL path reads and writes; it can hold
/// uncommitted data while the writer's locks pin it. Snapshot readers never
/// touch it. They see only `base` (the row's pre-history: the load-time
/// switch word, or `None` for rows created by an inserting transaction) and
/// `versions`, which committing writers append to *while still holding
/// their exclusive locks* — so per-row version timestamps are strictly
/// increasing and consistent with the 2PL serialization order.
#[derive(Debug)]
pub struct Row {
    value: RwLock<Value>,
    /// What a snapshot older than every committed version sees: the
    /// load-time switch word, or `None` when the row did not exist before
    /// the transaction that inserted it (such a snapshot gets
    /// tuple-not-found, exactly like a 2PL read would have).
    base: Option<u64>,
    versions: RwLock<VersionChain>,
}

/// A row's committed version history, oldest first. `entries` holds
/// `(commit_ts, switch_word)` pairs; `trimmed` counts versions reclaimed
/// from the front by GC (the invariant checker uses it to know whether the
/// `base -> first entry` transition is still checkable).
#[derive(Debug, Default)]
struct VersionChain {
    entries: Vec<(u64, u64)>,
    trimmed: u64,
}

/// A stable reference to one row. Cloning is one atomic increment; the
/// handle keeps the row alive (and readable/writable) for as long as it is
/// held, independent of what happens to the table maps.
pub type RowHandle = Arc<Row>;

impl Row {
    fn new(value: Value) -> Self {
        let base = Some(value.switch_word());
        Row { value: RwLock::new(value), base, versions: RwLock::new(VersionChain::default()) }
    }

    /// A row created by an inserting *transaction* (as opposed to a loader):
    /// it has no pre-history, so snapshots older than the insert's commit
    /// timestamp must not see it.
    fn new_fresh(value: Value) -> Self {
        Row { value: RwLock::new(value), base: None, versions: RwLock::new(VersionChain::default()) }
    }

    /// Reads the row.
    pub fn read(&self) -> Value {
        *unpoison(self.value.read())
    }

    /// Overwrites the row.
    pub fn write(&self, value: Value) {
        *unpoison(self.value.write()) = value;
    }

    /// Applies a closure to the row under the write latch and returns its
    /// result (used for read-modify-write operations like balance updates).
    ///
    /// Unlike the other `unpoison` sites, the closure here can panic halfway
    /// through a multi-field mutation and leave a torn value behind.
    /// Adopting that state anyway is deliberate: it matches the seed's
    /// `parking_lot` semantics (no poisoning), and a worker that panics does
    /// so while holding the tuple's *logical* 2PL lock, which is never
    /// released — so no committing transaction can observe the torn row.
    pub fn update<R>(&self, f: impl FnOnce(&mut Value) -> R) -> R {
        let mut guard = unpoison(self.value.write());
        f(&mut guard)
    }

    /// Snapshot read: the newest committed switch word at or below `snap`,
    /// or `None` when the row did not yet exist at `snap`. Never touches
    /// the live `value`, so it can run with zero lock-table interaction.
    ///
    /// Falling back to `base` when every retained entry is newer than
    /// `snap` is sound because GC only reclaims entries *dominated by a
    /// retained entry at or below the low-watermark* — and any snapshot a
    /// live reader holds is at least that watermark, so "all retained
    /// entries above `snap`" implies the chain never had an entry at or
    /// below `snap` at all.
    pub fn read_at(&self, snap: u64) -> Option<u64> {
        let chain = unpoison(self.versions.read());
        for &(ts, word) in chain.entries.iter().rev() {
            if ts <= snap {
                return Some(word);
            }
        }
        self.base
    }

    /// Appends a committed version. Called at commit time while the writer
    /// still holds the tuple's exclusive 2PL lock, which serializes
    /// installers and keeps per-row timestamps strictly increasing. A
    /// transaction that wrote the row more than once installs under one
    /// timestamp — the later install overwrites the earlier word, so the
    /// chain holds the transaction's *net* effect. Returns the chain length
    /// so the caller can decide to trim.
    pub fn install_version(&self, ts: u64, word: u64) -> usize {
        let mut chain = unpoison(self.versions.write());
        if let Some(last) = chain.entries.last_mut() {
            debug_assert!(last.0 <= ts, "version timestamps must be non-decreasing per row");
            if last.0 == ts {
                last.1 = word;
                return chain.entries.len();
            }
        }
        chain.entries.push((ts, word));
        chain.entries.len()
    }

    /// Reclaims versions strictly dominated by a newer version at or below
    /// `watermark`: the newest entry with `ts <= watermark` is kept (some
    /// active snapshot may still resolve to it), everything older goes.
    /// Returns the number of versions reclaimed.
    pub fn trim_versions_below(&self, watermark: u64) -> usize {
        let mut chain = unpoison(self.versions.write());
        let keep_from = match chain.entries.iter().rposition(|&(ts, _)| ts <= watermark) {
            Some(index) => index,
            None => return 0, // nothing at or below the watermark: nothing is dominated
        };
        chain.trimmed += keep_from as u64;
        chain.entries.drain(..keep_from).count()
    }

    /// The row's pre-history word (`None` for transaction-inserted rows).
    pub fn base_word(&self) -> Option<u64> {
        self.base
    }

    /// A consistent copy of the version chain plus the count of versions GC
    /// has reclaimed from its front — the invariant checker's view.
    pub fn version_chain(&self) -> (Vec<(u64, u64)>, u64) {
        let chain = unpoison(self.versions.read());
        (chain.entries.clone(), chain.trimmed)
    }

    /// Retained chain length (diagnostic).
    pub fn version_count(&self) -> usize {
        unpoison(self.versions.read()).entries.len()
    }
}

type Shard<S> = RwLock<HashMap<u64, RowHandle, S>>;
/// A held shard write-latch during a grouped bulk load, tagged with its
/// shard index so consecutive same-shard keys reuse it.
type HeldShard<'a, S> = Option<(usize, RwLockWriteGuard<'a, HashMap<u64, RowHandle, S>>)>;

/// The two map flavors behind one `Table` API: the sharded fast word-mixer
/// store, or the seed's latch + SipHash map layout.
#[derive(Debug)]
enum ShardSet {
    Fast(Box<[Shard<FastBuildHasher>]>),
    Seed(Box<[Shard<RandomState>]>),
}

/// One partition of one table: a fixed array of latch-protected map shards.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    shards: ShardSet,
    /// Power-of-two shard mask; shard of key `k` is `mix(k) & mask`.
    mask: u64,
    /// Live row count, maintained on insert/remove so `len()` never has to
    /// sweep the shards.
    rows: AtomicUsize,
}

fn build_shards<S: BuildHasher + Default>(count: usize) -> Box<[Shard<S>]> {
    (0..count).map(|_| RwLock::new(HashMap::with_hasher(S::default()))).collect()
}

impl Table {
    /// A partition with the default shard count.
    pub fn new(id: TableId) -> Self {
        Self::with_shards(id, DEFAULT_TABLE_SHARDS)
    }

    /// A partition with an explicit shard count. `shards` is rounded up to
    /// the next power of two (minimum 1).
    pub fn with_shards(id: TableId, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Table { id, shards: ShardSet::Fast(build_shards(shards)), mask: shards as u64 - 1, rows: AtomicUsize::new(0) }
    }

    /// The seed's layout, preserved as the node-scaling baseline: a single
    /// latch in front of a single std SipHash map — the structure every
    /// tuple access paid before the sharded store existed. (The shared code
    /// path still computes the shard mix before masking it away, a few ns
    /// per access the true seed did not pay; negligible against the SipHash
    /// probes, and it biases the gated comparison *against* the seed arm by
    /// well under the gate's tolerance.)
    pub fn seed_single_latch(id: TableId) -> Self {
        Table { id, shards: ShardSet::Seed(build_shards(1)), mask: 0, rows: AtomicUsize::new(0) }
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        match &self.shards {
            ShardSet::Fast(s) => s.len(),
            ShardSet::Seed(s) => s.len(),
        }
    }

    /// The hash a key shards under: [`TupleId::mix`] of `(self.id, key)`,
    /// the exact value the admission path precomputes — `get` and
    /// `get_prehashed` always probe the same shard.
    #[inline]
    fn key_hash(&self, key: u64) -> u64 {
        TupleId::new(self.id, key).mix()
    }

    /// Number of rows in this partition.
    pub fn len(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts (or replaces) a row. Used by the loaders and by inserting
    /// transactions (TPC-C NewOrder). Returns the handle of the fresh row so
    /// the caller can keep operating on it without a second lookup.
    pub fn insert(&self, key: u64, value: Value) -> RowHandle {
        // The count moves while the shard latch is still held: updating it
        // after the guard drops would let a concurrent remove of the same
        // key decrement first and underflow the counter.
        fn insert_in<S: BuildHasher>(table: &Table, shard: &Shard<S>, key: u64, handle: &RowHandle) {
            let mut guard = unpoison(shard.write());
            if guard.insert(key, Arc::clone(handle)).is_none() {
                table.rows.fetch_add(1, Ordering::Relaxed);
            }
        }
        let handle = Arc::new(Row::new(value));
        let index = (self.key_hash(key) & self.mask) as usize;
        match &self.shards {
            ShardSet::Fast(s) => insert_in(self, &s[index], key, &handle),
            ShardSet::Seed(s) => insert_in(self, &s[index], key, &handle),
        }
        handle
    }

    /// Like [`Table::insert`], but for rows created *by a transaction*
    /// rather than a loader: the row has no pre-history, so snapshot reads
    /// older than the inserting transaction's commit see tuple-not-found
    /// instead of the load-time value. The 2PL path is unaffected (the live
    /// value is identical).
    pub fn insert_fresh(&self, key: u64, value: Value) -> RowHandle {
        fn insert_in<S: BuildHasher>(table: &Table, shard: &Shard<S>, key: u64, handle: &RowHandle) {
            let mut guard = unpoison(shard.write());
            if guard.insert(key, Arc::clone(handle)).is_none() {
                table.rows.fetch_add(1, Ordering::Relaxed);
            }
        }
        let handle = Arc::new(Row::new_fresh(value));
        let index = (self.key_hash(key) & self.mask) as usize;
        match &self.shards {
            ShardSet::Fast(s) => insert_in(self, &s[index], key, &handle),
            ShardSet::Seed(s) => insert_in(self, &s[index], key, &handle),
        }
        handle
    }

    /// Version-chain GC sweep: trims every row's chain against `watermark`,
    /// one shard latch at a time — no global pause, concurrent readers and
    /// writers in other shards keep moving. Returns the number of versions
    /// reclaimed. The caller supplies the cluster low-watermark
    /// (`min(active snapshots, stable clock)`); see
    /// [`crate::mvcc::SnapshotRegistry::low_watermark`].
    pub fn collect_versions(&self, watermark: u64) -> usize {
        let mut reclaimed = 0;
        for shard in 0..self.shard_count() {
            self.for_each_in_shard(shard, |_, row| {
                reclaimed += row.trim_versions_below(watermark);
            });
        }
        reclaimed
    }

    /// Bulk-load helper: takes each shard latch once per consecutive run of
    /// same-shard keys rather than once per row. At most one shard is ever
    /// latched at a time (holding one latch while acquiring another could
    /// deadlock against a concurrent multi-shard operation).
    pub fn bulk_load(&self, rows: impl IntoIterator<Item = (u64, Value)>) {
        fn load<S: BuildHasher>(table: &Table, shards: &[Shard<S>], rows: impl IntoIterator<Item = (u64, Value)>) {
            let mut held: HeldShard<'_, S> = None;
            for (key, value) in rows {
                let index = (table.key_hash(key) & table.mask) as usize;
                let mut guard = match held.take() {
                    Some((held_index, guard)) if held_index == index => guard,
                    other => {
                        // Release the previously held shard *before* locking
                        // the next one.
                        drop(other);
                        unpoison(shards[index].write())
                    }
                };
                if guard.insert(key, Arc::new(Row::new(value))).is_none() {
                    // Under the latch, like `insert` — see the comment there.
                    table.rows.fetch_add(1, Ordering::Relaxed);
                }
                held = Some((index, guard));
            }
        }
        match &self.shards {
            ShardSet::Fast(s) => load(self, s, rows),
            ShardSet::Seed(s) => load(self, s, rows),
        }
    }

    /// Looks up a row handle. The returned handle keeps the row alive even if
    /// it is concurrently deleted, which keeps readers safe.
    pub fn get(&self, key: u64) -> Option<RowHandle> {
        self.get_prehashed(self.key_hash(key), key)
    }

    /// Looks up a row handle with a precomputed tuple hash (admission-time
    /// resolution: the same hash already selected the lock-table shard).
    #[inline]
    pub fn get_prehashed(&self, hash: u64, key: u64) -> Option<RowHandle> {
        let index = (hash & self.mask) as usize;
        match &self.shards {
            ShardSet::Fast(s) => unpoison(s[index].read()).get(&key).cloned(),
            ShardSet::Seed(s) => unpoison(s[index].read()).get(&key).cloned(),
        }
    }

    /// Looks up a row handle or returns a typed error.
    pub fn get_or_err(&self, key: u64) -> Result<RowHandle> {
        self.get(key).ok_or(Error::TupleNotFound(TupleId::new(self.id, key)))
    }

    /// Reads a row's value directly.
    pub fn read(&self, key: u64) -> Result<Value> {
        Ok(self.get_or_err(key)?.read())
    }

    /// Writes a row's value directly (the row must exist).
    pub fn write(&self, key: u64, value: Value) -> Result<()> {
        self.get_or_err(key)?.write(value);
        Ok(())
    }

    /// Removes a row; returns whether it existed. Handles already resolved
    /// to the row stay valid — the row is merely unreachable for new lookups.
    pub fn remove(&self, key: u64) -> bool {
        fn remove_in<S: BuildHasher>(table: &Table, shard: &Shard<S>, key: u64) -> bool {
            let mut guard = unpoison(shard.write());
            let removed = guard.remove(&key).is_some();
            if removed {
                // Under the latch, like `insert` — see the comment there.
                table.rows.fetch_sub(1, Ordering::Relaxed);
            }
            removed
        }
        let index = (self.key_hash(key) & self.mask) as usize;
        match &self.shards {
            ShardSet::Fast(s) => remove_in(self, &s[index], key),
            ShardSet::Seed(s) => remove_in(self, &s[index], key),
        }
    }

    /// Visits every row, one shard at a time, without materializing a key
    /// vector. Each shard's latch is held only while that shard is visited;
    /// rows inserted or removed concurrently in other shards may or may not
    /// be seen (same non-snapshot semantics the seed's `keys()` had, minus
    /// the full-table allocation).
    pub fn for_each(&self, mut f: impl FnMut(u64, &Row)) {
        fn visit<S: BuildHasher>(shards: &[Shard<S>], f: &mut impl FnMut(u64, &Row)) {
            for shard in shards {
                let guard = unpoison(shard.read());
                for (&key, row) in guard.iter() {
                    f(key, row);
                }
            }
        }
        match &self.shards {
            ShardSet::Fast(s) => visit(s, &mut f),
            ShardSet::Seed(s) => visit(s, &mut f),
        }
    }

    /// Visits every row of **one** shard under that shard's read latch — the
    /// unit of a fuzzy checkpoint scan: each shard is snapshotted
    /// independently, so the table as a whole is never paused. The shard's
    /// rows are physically consistent (the latch is held for the visit);
    /// rows in other shards keep moving.
    pub fn for_each_in_shard(&self, shard: usize, mut f: impl FnMut(u64, &Row)) {
        fn visit<S: BuildHasher>(shard: &Shard<S>, f: &mut impl FnMut(u64, &Row)) {
            let guard = unpoison(shard.read());
            for (&key, row) in guard.iter() {
                f(key, row);
            }
        }
        match &self.shards {
            ShardSet::Fast(s) => visit(&s[shard], &mut f),
            ShardSet::Seed(s) => visit(&s[shard], &mut f),
        }
    }

    /// The shard a tuple key lives in (`mix(table, key) & mask`) — the index
    /// checkpoint-tail recovery uses to route a WAL record to the shard that
    /// owns its row.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        (self.key_hash(key) & self.mask) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(TableId(1))
    }

    #[test]
    fn insert_read_write_roundtrip() {
        let t = table();
        t.insert(7, Value::scalar(10));
        assert_eq!(t.read(7).unwrap().switch_word(), 10);
        t.write(7, Value::scalar(20)).unwrap();
        assert_eq!(t.read(7).unwrap().switch_word(), 20);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn missing_key_yields_typed_error() {
        let t = table();
        match t.read(99) {
            Err(Error::TupleNotFound(tid)) => {
                assert_eq!(tid, TupleId::new(TableId(1), 99));
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn update_applies_read_modify_write() {
        let t = table();
        t.insert(1, Value::scalar(100));
        let row = t.get(1).unwrap();
        let old = row.update(|v| {
            let old = v.switch_word();
            v.set_switch_word(old + 5);
            old
        });
        assert_eq!(old, 100);
        assert_eq!(t.read(1).unwrap().switch_word(), 105);
    }

    #[test]
    fn bulk_load_inserts_everything() {
        let t = table();
        t.bulk_load((0..100).map(|k| (k, Value::scalar(k))));
        assert_eq!(t.len(), 100);
        assert_eq!(t.read(42).unwrap().switch_word(), 42);
    }

    #[test]
    fn remove_deletes_row() {
        let t = table();
        t.insert(1, Value::scalar(1));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert!(t.read(1).is_err());
    }

    #[test]
    fn len_tracks_replacing_inserts_and_removes() {
        let t = table();
        t.insert(1, Value::scalar(1));
        t.insert(1, Value::scalar(2)); // replacement, not growth
        assert_eq!(t.len(), 1);
        t.bulk_load([(1, Value::scalar(3)), (2, Value::scalar(4))]);
        assert_eq!(t.len(), 2);
        t.remove(1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn seed_single_latch_flavor_behaves_identically() {
        let t = Table::seed_single_latch(TableId(1));
        assert_eq!(t.shard_count(), 1);
        t.bulk_load((0..50).map(|k| (k, Value::scalar(k))));
        assert_eq!(t.len(), 50);
        assert_eq!(t.read(30).unwrap().switch_word(), 30);
        assert!(t.remove(30));
        assert_eq!(t.len(), 49);
        let mut visited = 0;
        t.for_each(|_, _| visited += 1);
        assert_eq!(visited, 49);
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(Table::with_shards(TableId(0), 3).shard_count(), 4);
        assert_eq!(Table::with_shards(TableId(0), 0).shard_count(), 1);
        assert_eq!(Table::with_shards(TableId(0), 64).shard_count(), 64);
    }

    #[test]
    fn for_each_visits_every_row_exactly_once() {
        let t = table();
        t.bulk_load((0..500).map(|k| (k, Value::scalar(k + 1))));
        let mut seen = vec![false; 500];
        let mut sum = 0u64;
        t.for_each(|key, row| {
            assert!(!seen[key as usize], "key {key} visited twice");
            seen[key as usize] = true;
            sum += row.read().switch_word();
        });
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sum, (1..=500).sum::<u64>());
    }

    #[test]
    fn prehashed_get_agrees_with_plain_get() {
        let t = table();
        t.bulk_load((0..200).map(|k| (k, Value::scalar(k))));
        for k in 0..200u64 {
            let hash = TupleId::new(t.id(), k).mix();
            let a = t.get_prehashed(hash, k).expect("present");
            let b = t.get(k).expect("present");
            assert!(Arc::ptr_eq(&a, &b), "handles for key {k} disagree");
        }
    }

    #[test]
    fn handles_stay_valid_across_removal() {
        let t = table();
        let handle = t.insert(9, Value::scalar(42));
        assert!(t.remove(9));
        // The row is unreachable through the table but the handle still
        // reads and writes the same storage.
        assert_eq!(handle.read().switch_word(), 42);
        handle.write(Value::scalar(43));
        assert_eq!(handle.read().switch_word(), 43);
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let t = Arc::new(table());
        t.insert(0, Value::scalar(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let row = t.get(0).unwrap();
                        row.update(|v| v.set_switch_word(v.switch_word() + 1));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.read(0).unwrap().switch_word(), 8000);
    }
}
