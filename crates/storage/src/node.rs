//! Per-node storage assembly: the tables of the node's partition, its lock
//! table, secondary indexes and write-ahead log.

use crate::index::SecondaryIndex;
use crate::locks::LockTable;
use crate::table::Table;
use crate::wal::Wal;
use p4db_common::{Error, NodeId, Result, TableId};
use std::collections::HashMap;

/// All storage owned by one database node.
#[derive(Debug)]
pub struct NodeStorage {
    node: NodeId,
    tables: HashMap<TableId, Table>,
    secondary: HashMap<TableId, SecondaryIndex>,
    locks: LockTable,
    wal: Wal,
}

impl NodeStorage {
    /// Creates storage for `node` with the given (empty) tables.
    pub fn new(node: NodeId, table_ids: impl IntoIterator<Item = TableId>) -> Self {
        let tables = table_ids.into_iter().map(|id| (id, Table::new(id))).collect();
        NodeStorage { node, tables, secondary: HashMap::new(), locks: LockTable::new(), wal: Wal::new() }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's partition of `table`.
    pub fn table(&self, table: TableId) -> Result<&Table> {
        self.tables
            .get(&table)
            .ok_or_else(|| Error::InvalidConfig(format!("table {table:?} not declared on {}", self.node)))
    }

    /// All declared table ids.
    pub fn table_ids(&self) -> Vec<TableId> {
        let mut ids: Vec<_> = self.tables.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Registers (or returns) a secondary index for `table`.
    pub fn secondary_index_mut(&mut self, table: TableId) -> &mut SecondaryIndex {
        self.secondary.entry(table).or_default()
    }

    /// Looks up a secondary index.
    pub fn secondary_index(&self, table: TableId) -> Option<&SecondaryIndex> {
        self.secondary.get(&table)
    }

    /// The node's 2PL lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The node's write-ahead log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Total number of rows stored on this node (all tables).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::Value;

    #[test]
    fn node_storage_exposes_declared_tables() {
        let storage = NodeStorage::new(NodeId(2), [TableId(0), TableId(1)]);
        assert_eq!(storage.node(), NodeId(2));
        assert_eq!(storage.table_ids(), vec![TableId(0), TableId(1)]);
        assert!(storage.table(TableId(0)).is_ok());
        assert!(storage.table(TableId(7)).is_err());
    }

    #[test]
    fn rows_and_secondary_indexes_work_together() {
        let mut storage = NodeStorage::new(NodeId(0), [TableId(0)]);
        storage.table(TableId(0)).unwrap().insert(11, Value::scalar(100));
        storage.secondary_index_mut(TableId(0)).insert(555, 11);
        let primary = storage.secondary_index(TableId(0)).unwrap().lookup_unique(555).unwrap();
        assert_eq!(storage.table(TableId(0)).unwrap().read(primary).unwrap().switch_word(), 100);
        assert_eq!(storage.total_rows(), 1);
    }

    #[test]
    fn wal_and_locks_are_per_node() {
        let storage = NodeStorage::new(NodeId(0), [TableId(0)]);
        assert!(storage.wal().is_empty());
        assert_eq!(storage.locks().locked_count(), 0);
    }
}
