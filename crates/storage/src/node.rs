//! Per-node storage assembly: the tables of the node's partition, its lock
//! table, secondary indexes and write-ahead log.
//!
//! Table ids are small and dense in every workload, so the table directory
//! is a plain vector indexed by `TableId` — the admission path resolves a
//! tuple's table with one bounds-checked load instead of a map probe.

use crate::checkpoint::CheckpointStore;
use crate::index::SecondaryIndex;
use crate::locks::LockTable;
use crate::table::{RowHandle, Table};
use crate::wal::Wal;
use p4db_common::{CcScheme, Error, NodeId, Result, TableId, TupleId, TxnId};
use std::collections::HashMap;

use crate::locks::LockMode;

/// All storage owned by one database node.
#[derive(Debug)]
pub struct NodeStorage {
    node: NodeId,
    /// Dense table directory indexed by `TableId`; `None` = undeclared.
    tables: Vec<Option<Table>>,
    /// Seed flavor only: the pre-sharding engine resolved tables through a
    /// SipHash map, so the baseline arm pays that probe per access too.
    seed_directory: Option<HashMap<TableId, u16>>,
    secondary: HashMap<TableId, SecondaryIndex>,
    /// Shard count for secondary indexes created on this node (matches the
    /// tables: the configured count, or 1 in the seed flavor).
    index_shards: usize,
    locks: LockTable,
    wal: Wal,
    checkpoints: CheckpointStore,
}

impl NodeStorage {
    /// Creates storage for `node` with the given (empty) tables, using the
    /// default shard count per table.
    pub fn new(node: NodeId, table_ids: impl IntoIterator<Item = TableId>) -> Self {
        Self::with_shards(node, table_ids, crate::table::DEFAULT_TABLE_SHARDS)
    }

    /// Creates storage with an explicit per-table shard count
    /// (non-powers-of-two round up).
    pub fn with_shards(node: NodeId, table_ids: impl IntoIterator<Item = TableId>, shards: usize) -> Self {
        Self::with_shards_and_segments(node, table_ids, shards, crate::wal::DEFAULT_SEGMENT_RECORDS)
    }

    /// [`NodeStorage::with_shards`] with an explicit WAL segment capacity
    /// (records per sealed segment; clamps to at least 1).
    pub fn with_shards_and_segments(
        node: NodeId,
        table_ids: impl IntoIterator<Item = TableId>,
        shards: usize,
        segment_records: usize,
    ) -> Self {
        let mut tables: Vec<Option<Table>> = Vec::new();
        for id in table_ids {
            if tables.len() <= id.index() {
                tables.resize_with(id.index() + 1, || None);
            }
            tables[id.index()] = Some(Table::with_shards(id, shards));
        }
        NodeStorage {
            node,
            tables,
            seed_directory: None,
            secondary: HashMap::new(),
            index_shards: shards,
            locks: LockTable::new(),
            wal: Wal::with_segment_capacity(segment_records),
            checkpoints: CheckpointStore::new(),
        }
    }

    /// Rebuilds the *seed's* storage exactly: one latch + one SipHash map
    /// per table, a SipHash table directory, and the seed-flavor lock table.
    /// The single-latch baseline arm of the node-scaling benchmark.
    pub fn seed_single_latch(node: NodeId, table_ids: impl IntoIterator<Item = TableId>) -> Self {
        let mut tables: Vec<Option<Table>> = Vec::new();
        let mut directory = HashMap::new();
        for id in table_ids {
            if tables.len() <= id.index() {
                tables.resize_with(id.index() + 1, || None);
            }
            tables[id.index()] = Some(Table::seed_single_latch(id));
            directory.insert(id, id.0);
        }
        NodeStorage {
            node,
            tables,
            seed_directory: Some(directory),
            secondary: HashMap::new(),
            index_shards: 1,
            locks: LockTable::seed_flavor(),
            wal: Wal::new(),
            checkpoints: CheckpointStore::new(),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's partition of `table`.
    #[inline]
    pub fn table(&self, table: TableId) -> Result<&Table> {
        if let Some(directory) = &self.seed_directory {
            // Seed shape: one map probe per resolution, like the pre-sharding
            // engine's `HashMap<TableId, Table>` directory.
            if directory.get(&table).is_none() {
                return Err(Error::InvalidConfig(format!("table {table:?} not declared on {}", self.node)));
            }
        }
        match self.tables.get(table.index()) {
            Some(Some(t)) => Ok(t),
            _ => Err(Error::InvalidConfig(format!("table {table:?} not declared on {}", self.node))),
        }
    }

    /// All declared table ids.
    pub fn table_ids(&self) -> Vec<TableId> {
        self.tables.iter().flatten().map(Table::id).collect()
    }

    /// Registers (or returns) a secondary index for `table`, sharded like
    /// the node's tables.
    pub fn secondary_index_mut(&mut self, table: TableId) -> &mut SecondaryIndex {
        let shards = self.index_shards;
        self.secondary.entry(table).or_insert_with(|| SecondaryIndex::with_shards(shards))
    }

    /// Looks up a secondary index.
    pub fn secondary_index(&self, table: TableId) -> Option<&SecondaryIndex> {
        self.secondary.get(&table)
    }

    /// The node's 2PL lock table.
    #[inline]
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The node's write-ahead log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The node's retained checkpoint generations (see
    /// [`crate::checkpoint`]).
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Admission-time footprint resolution: acquires the 2PL lock on `tuple`
    /// and resolves its [`RowHandle`] in one step, hashing the tuple exactly
    /// once — the mix feeds both the lock-table shard and the row-store
    /// shard. Returns `Ok(None)` when the lock was granted but no row exists
    /// under the key (an inserting operation, or a caller-level
    /// tuple-not-found); lock conflicts and WAIT_DIE deaths surface as the
    /// usual abort errors *without* a granted lock.
    #[inline]
    pub fn admit(&self, txn: TxnId, tuple: TupleId, mode: LockMode, scheme: CcScheme) -> Result<Option<RowHandle>> {
        let hash = tuple.mix();
        self.locks.acquire_prehashed(hash, txn, tuple, mode, scheme)?;
        match self.table(tuple.table) {
            Ok(table) => Ok(table.get_prehashed(hash, tuple.key)),
            Err(e) => {
                // An undeclared table must not leak the just-granted lock
                // (the error contract promises no lock on any `Err`).
                self.locks.release(txn, tuple);
                Err(e)
            }
        }
    }

    /// Snapshot-path resolution: resolves a tuple's [`RowHandle`] with the
    /// same single hash the 2PL admission path uses, but with **zero
    /// lock-table interaction** — the read-only fast path. Returns
    /// `Ok(None)` when no row exists under the key.
    #[inline]
    pub fn peek(&self, tuple: TupleId) -> Result<Option<RowHandle>> {
        let table = self.table(tuple.table)?;
        Ok(table.get_prehashed(tuple.mix(), tuple.key))
    }

    /// Version-chain GC across every table on this node; returns the number
    /// of versions reclaimed (see [`Table::collect_versions`]).
    pub fn collect_versions(&self, watermark: u64) -> usize {
        self.tables.iter().flatten().map(|t| t.collect_versions(watermark)).sum()
    }

    /// Every table stored on this node (checkers and sweepers).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter().flatten()
    }

    /// Total number of rows stored on this node (all tables).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().flatten().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::Value;

    #[test]
    fn node_storage_exposes_declared_tables() {
        let storage = NodeStorage::new(NodeId(2), [TableId(0), TableId(1)]);
        assert_eq!(storage.node(), NodeId(2));
        assert_eq!(storage.table_ids(), vec![TableId(0), TableId(1)]);
        assert!(storage.table(TableId(0)).is_ok());
        assert!(storage.table(TableId(7)).is_err());
    }

    #[test]
    fn sparse_table_ids_resolve_correctly() {
        let storage = NodeStorage::new(NodeId(0), [TableId(5), TableId(2)]);
        assert_eq!(storage.table_ids(), vec![TableId(2), TableId(5)]);
        assert!(storage.table(TableId(2)).is_ok());
        assert!(storage.table(TableId(3)).is_err());
        assert!(storage.table(TableId(6)).is_err());
    }

    #[test]
    fn rows_and_secondary_indexes_work_together() {
        let mut storage = NodeStorage::new(NodeId(0), [TableId(0)]);
        storage.table(TableId(0)).unwrap().insert(11, Value::scalar(100));
        storage.secondary_index_mut(TableId(0)).insert(555, 11);
        let primary = storage.secondary_index(TableId(0)).unwrap().lookup_unique(555).unwrap();
        assert_eq!(storage.table(TableId(0)).unwrap().read(primary).unwrap().switch_word(), 100);
        assert_eq!(storage.total_rows(), 1);
    }

    #[test]
    fn admit_locks_and_resolves_in_one_step() {
        use p4db_common::WorkerId;
        let storage = NodeStorage::new(NodeId(0), [TableId(0)]);
        storage.table(TableId(0)).unwrap().insert(7, Value::scalar(70));
        let txn = TxnId::compose(1, NodeId(0), WorkerId(0));
        let tuple = TupleId::new(TableId(0), 7);

        let handle = storage.admit(txn, tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
        assert_eq!(handle.expect("row exists").read().switch_word(), 70);
        assert!(storage.locks().is_locked(tuple));

        // Missing row: lock granted, no handle (the Insert admission shape).
        let missing = TupleId::new(TableId(0), 999);
        let none = storage.admit(txn, missing, LockMode::Exclusive, CcScheme::NoWait).unwrap();
        assert!(none.is_none());
        assert!(storage.locks().is_locked(missing));

        // A conflicting admission aborts without resolving.
        let other = TxnId::compose(2, NodeId(0), WorkerId(1));
        assert!(storage.admit(other, tuple, LockMode::Exclusive, CcScheme::NoWait).is_err());
        storage.locks().release_all(txn, &[tuple, missing]);

        // An undeclared table errors *and* leaves no lock behind.
        let foreign = TupleId::new(TableId(9), 1);
        assert!(storage.admit(txn, foreign, LockMode::Exclusive, CcScheme::NoWait).is_err());
        assert!(!storage.locks().is_locked(foreign), "admit leaked a lock on an undeclared table");
    }

    #[test]
    fn secondary_indexes_inherit_the_node_shard_layout() {
        let mut sharded = NodeStorage::with_shards(NodeId(0), [TableId(0)], 16);
        assert_eq!(sharded.secondary_index_mut(TableId(0)).shard_count(), 16);
        let mut seed = NodeStorage::seed_single_latch(NodeId(0), [TableId(0)]);
        assert_eq!(seed.secondary_index_mut(TableId(0)).shard_count(), 1);
    }

    #[test]
    fn wal_and_locks_are_per_node() {
        let storage = NodeStorage::new(NodeId(0), [TableId(0)]);
        assert!(storage.wal().is_empty());
        assert_eq!(storage.locks().locked_count(), 0);
    }
}
