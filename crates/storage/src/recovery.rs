//! Recovery of the switch state and of node state from the per-node
//! write-ahead logs (§6.1, §6.2 and appendix A.3).
//!
//! Switch transactions never abort, so every `SwitchIntent` in any node's log
//! denotes work that must be reflected in the recovered switch state. Most of
//! them also have a `SwitchResult` record carrying the switch-assigned GID,
//! which fixes their position in the serial order. *In-flight* transactions
//! (intent logged, reply lost because the node and/or switch crashed) have no
//! GID; their position is reconstructed from data dependencies: if a
//! completed transaction's recorded read/write results are only explainable
//! when the in-flight transaction ran before it, it is ordered first —
//! otherwise any order is valid (the paper's Figure 9 scenario).

use crate::wal::{LogRecord, LoggedSwitchOp, Wal};
use p4db_common::{TupleId, TxnId, Value};
use p4db_switch::apply_op;
use std::collections::{HashMap, HashSet};

/// A switch transaction reconstructed from the logs.
#[derive(Clone, Debug)]
struct RecoveredTxn {
    txn: TxnId,
    ops: Vec<LoggedSwitchOp>,
    /// `Some((gid, results))` for completed transactions.
    outcome: Option<(u64, Vec<(TupleId, u64)>)>,
}

/// Result of switch recovery.
#[derive(Clone, Debug, Default)]
pub struct SwitchRecoveryOutcome {
    /// The recovered value of every hot tuple touched by any logged switch
    /// transaction (tuples never touched keep their offload-time value).
    pub values: HashMap<TupleId, u64>,
    /// Completed switch transactions replayed (had a GID).
    pub completed: usize,
    /// In-flight switch transactions whose position was inferred from
    /// read/write-set dependencies.
    pub inflight_ordered: usize,
    /// In-flight switch transactions appended at the end because no
    /// dependency constrained their position.
    pub inflight_unordered: usize,
    /// Completed transactions whose recorded results could not be reproduced
    /// exactly (should be zero; non-zero indicates log corruption).
    pub inconsistencies: usize,
}

/// Effect of replaying one logged operation: everything a replayer (the
/// recovery repair loop, the chaos invariant checker) needs to track state
/// changes, reported values and constrained-write outcomes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoggedOpEffect {
    /// Cell value before the operation.
    pub previous: u64,
    /// Cell value after the operation.
    pub new: u64,
    /// Value the switch would report for this operation.
    pub value: u64,
    /// Whether a constrained write's predicate held (always `true` for
    /// unconditional opcodes).
    pub applied: bool,
}

/// Replays one logged operation against a shadow state, mirroring the switch
/// ALU exactly — including operand forwarding from earlier results of the
/// same transaction.
pub fn replay_logged_op(
    state: &mut HashMap<TupleId, u64>,
    results_so_far: &[u64],
    op: &LoggedSwitchOp,
) -> LoggedOpEffect {
    let current = state.get(&op.tuple).copied().unwrap_or(0);
    let operand = match op.operand_from {
        Some(src) if (src as usize) < results_so_far.len() => results_so_far[src as usize],
        _ => op.operand,
    };
    let (new, result) = apply_op(current, op.op, operand);
    state.insert(op.tuple, new);
    LoggedOpEffect { previous: current, new, value: result.value, applied: result.applied }
}

/// Replays a whole logged transaction; returns the per-op result values.
pub fn replay_logged_txn(state: &mut HashMap<TupleId, u64>, ops: &[LoggedSwitchOp]) -> Vec<u64> {
    let mut results = Vec::with_capacity(ops.len());
    for op in ops {
        let effect = replay_logged_op(state, &results, op);
        results.push(effect.value);
    }
    results
}

/// Checks whether replaying `ops` on a *copy* of `state` reproduces the
/// recorded `expected` results.
fn replay_matches(state: &HashMap<TupleId, u64>, ops: &[LoggedSwitchOp], expected: &[(TupleId, u64)]) -> bool {
    let mut scratch = state.clone();
    let results = replay_logged_txn(&mut scratch, ops);
    if results.len() != expected.len() {
        return false;
    }
    results.iter().zip(expected.iter()).all(|(got, (_, want))| got == want)
}

/// Recovers the switch state after a switch failure from the logs of all
/// database nodes (§A.3, case 1 and case 3).
///
/// `initial` is the offload-time value of every hot tuple (the state the
/// switch was initialised with); `logs` are the write-ahead logs of all
/// nodes.
pub fn recover_switch_state(initial: &HashMap<TupleId, u64>, logs: &[&Wal]) -> SwitchRecoveryOutcome {
    // -- Collect switch transactions from all logs ---------------------------
    let mut txns: HashMap<TxnId, RecoveredTxn> = HashMap::new();
    for wal in logs {
        for record in wal.records() {
            match record {
                LogRecord::SwitchIntent { txn, ops } => {
                    txns.entry(txn).or_insert_with(|| RecoveredTxn { txn, ops: Vec::new(), outcome: None }).ops = ops;
                }
                LogRecord::SwitchResult { txn, gid, results } => {
                    txns.entry(txn).or_insert_with(|| RecoveredTxn { txn, ops: Vec::new(), outcome: None }).outcome =
                        Some((gid.0, results));
                }
                _ => {}
            }
        }
    }

    let mut completed: Vec<RecoveredTxn> = txns.values().filter(|t| t.outcome.is_some()).cloned().collect();
    completed.sort_by_key(|t| t.outcome.as_ref().map(|(gid, _)| *gid).unwrap_or(u64::MAX));
    let mut inflight: Vec<RecoveredTxn> = txns.values().filter(|t| t.outcome.is_none()).cloned().collect();
    inflight.sort_by_key(|t| t.txn); // deterministic order

    let mut outcome = SwitchRecoveryOutcome { completed: completed.len(), ..Default::default() };

    // -- Iterative repair ------------------------------------------------------
    // Start from the offload-time state and replay completed transactions in
    // GID order, verifying their recorded results. When a mismatch is found,
    // an in-flight transaction touching the mismatching tuples must have
    // executed earlier: pull one in, apply it before the completed replay and
    // start over. Bounded by the number of in-flight transactions.
    let mut applied_early: Vec<RecoveredTxn> = Vec::new();
    'repair: loop {
        let mut state = initial.clone();
        for t in &applied_early {
            replay_logged_txn(&mut state, &t.ops);
        }
        for t in &completed {
            let (_, expected) = t.outcome.as_ref().expect("completed txns carry results");
            if !replay_matches(&state, &t.ops, expected) {
                // Find an in-flight transaction that touches any tuple this
                // completed transaction touches and promote it.
                let touched: Vec<TupleId> = t.ops.iter().map(|o| o.tuple).collect();
                if let Some(pos) = inflight.iter().position(|inf| inf.ops.iter().any(|o| touched.contains(&o.tuple))) {
                    applied_early.push(inflight.remove(pos));
                    continue 'repair;
                }
                // No candidate: record the inconsistency and keep going with
                // whatever the replay produces.
                outcome.inconsistencies += 1;
            }
            replay_logged_txn(&mut state, &t.ops);
        }
        // Remaining in-flight transactions have no ordering constraint:
        // append them at the end (any order is valid, §A.3).
        for t in &inflight {
            replay_logged_txn(&mut state, &t.ops);
        }
        outcome.inflight_ordered = applied_early.len();
        outcome.inflight_unordered = inflight.len();
        outcome.values = state;
        break;
    }
    outcome
}

/// Recovers the *cold* state of one node from its own log: after-images of
/// all committed transactions are redone; writes of transactions without a
/// commit record are undone via their before-images (§A.3, case 2).
pub fn recover_cold_state(wal: &Wal) -> HashMap<TupleId, Value> {
    recover_cold_records(&wal.records())
}

/// [`recover_cold_state`] over a record slice — the checkpoint-aware
/// recovery path replays only the segment tail since the checkpoint fence,
/// which group-atomic commit/abort records make self-contained: a
/// transaction's cold writes always share one group append with their
/// `Commit`/`Abort`, so a tail never splits a write from its verdict.
pub fn recover_cold_records(records: &[LogRecord]) -> HashMap<TupleId, Value> {
    let mut committed: HashMap<TxnId, bool> = HashMap::new();
    for r in records {
        match r {
            LogRecord::Commit { txn } => {
                committed.insert(*txn, true);
            }
            LogRecord::Abort { txn } => {
                committed.insert(*txn, false);
            }
            // A switch intent marks the transaction as pre-committed: its
            // cold part must be treated as committed even without an explicit
            // commit record (the paper's "counts as committed" rule).
            LogRecord::SwitchIntent { txn, .. } => {
                committed.entry(*txn).or_insert(true);
            }
            _ => {}
        }
    }
    let mut state: HashMap<TupleId, Value> = HashMap::new();
    // An undone transaction's pre-image is the *first* before-image it
    // logged for a tuple — a second write to the same tuple carries the
    // first write's after-image as its "before", which is exactly the torn
    // intermediate the undo must erase. (2PL keeps a tuple's writers
    // serialized and a transaction's records share one group append, so
    // skipping the duplicates cannot skip another transaction's image.)
    let mut undone: HashSet<(TxnId, TupleId)> = HashSet::new();
    for r in records {
        if let LogRecord::ColdWrite { txn, tuple, before, after } = r {
            let is_committed = committed.get(txn).copied().unwrap_or(false);
            if is_committed {
                state.insert(*tuple, *after);
            } else if undone.insert((*txn, *tuple)) {
                state.insert(*tuple, *before);
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{GlobalTxnId, NodeId, TableId, WorkerId};
    use p4db_switch::OpCode;

    fn txn(seq: u32, node: u16) -> TxnId {
        TxnId::compose(seq, NodeId(node), WorkerId(0))
    }

    fn tuple(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn add_op(key: u64, delta: u64) -> LoggedSwitchOp {
        LoggedSwitchOp { tuple: tuple(key), op: OpCode::Add, operand: delta, operand_from: None }
    }

    #[test]
    fn completed_txns_are_replayed_in_gid_order() {
        // x starts at 1; T_a executes x*? no — adds; GID order: T_a (gid 0,
        // x+=2 → 3), T_b (gid 1, x+=3 → 6).
        let wal = Wal::new();
        wal.append(LogRecord::SwitchIntent { txn: txn(1, 0), ops: vec![add_op(1, 2)] });
        wal.append(LogRecord::SwitchResult { txn: txn(1, 0), gid: GlobalTxnId(0), results: vec![(tuple(1), 3)] });
        wal.append(LogRecord::SwitchIntent { txn: txn(2, 0), ops: vec![add_op(1, 3)] });
        wal.append(LogRecord::SwitchResult { txn: txn(2, 0), gid: GlobalTxnId(1), results: vec![(tuple(1), 6)] });

        let initial = HashMap::from([(tuple(1), 1u64)]);
        let out = recover_switch_state(&initial, &[&wal]);
        assert_eq!(out.values[&tuple(1)], 6);
        assert_eq!(out.completed, 2);
        assert_eq!(out.inconsistencies, 0);
    }

    #[test]
    fn figure9_scenario_orders_inflight_txn_before_dependent_completed_txn() {
        // Node1 crashed before receiving T1's reply: its log only has the
        // intent (x += 2). Node2 committed T2 (x += 3) and recorded x = 6.
        // Starting from x = 1, T2's recorded result is only explainable if T1
        // ran first.
        let node1 = Wal::new();
        node1.append(LogRecord::SwitchIntent { txn: txn(1, 1), ops: vec![add_op(7, 2)] });

        let node2 = Wal::new();
        node2.append(LogRecord::SwitchIntent { txn: txn(1, 2), ops: vec![add_op(7, 3)] });
        node2.append(LogRecord::SwitchResult { txn: txn(1, 2), gid: GlobalTxnId(5), results: vec![(tuple(7), 6)] });

        let initial = HashMap::from([(tuple(7), 1u64)]);
        let out = recover_switch_state(&initial, &[&node1, &node2]);
        assert_eq!(out.values[&tuple(7)], 6, "x must end at 1 + 2 + 3");
        assert_eq!(out.inflight_ordered, 1);
        assert_eq!(out.inflight_unordered, 0);
        assert_eq!(out.inconsistencies, 0);
    }

    #[test]
    fn independent_inflight_txn_is_applied_in_any_order() {
        // The in-flight transaction touches a different tuple: no dependency,
        // it is simply applied at the end.
        let node1 = Wal::new();
        node1.append(LogRecord::SwitchIntent { txn: txn(1, 1), ops: vec![add_op(50, 10)] });

        let node2 = Wal::new();
        node2.append(LogRecord::SwitchIntent { txn: txn(1, 2), ops: vec![add_op(7, 3)] });
        node2.append(LogRecord::SwitchResult { txn: txn(1, 2), gid: GlobalTxnId(0), results: vec![(tuple(7), 4)] });

        let initial = HashMap::from([(tuple(7), 1u64), (tuple(50), 100u64)]);
        let out = recover_switch_state(&initial, &[&node1, &node2]);
        assert_eq!(out.values[&tuple(7)], 4);
        assert_eq!(out.values[&tuple(50)], 110);
        assert_eq!(out.inflight_unordered, 1);
        assert_eq!(out.inflight_ordered, 0);
    }

    #[test]
    fn corrupted_results_are_reported_not_fatal() {
        let wal = Wal::new();
        wal.append(LogRecord::SwitchIntent { txn: txn(1, 0), ops: vec![add_op(1, 2)] });
        // Recorded result is impossible given the initial state.
        wal.append(LogRecord::SwitchResult { txn: txn(1, 0), gid: GlobalTxnId(0), results: vec![(tuple(1), 999)] });
        let initial = HashMap::from([(tuple(1), 1u64)]);
        let out = recover_switch_state(&initial, &[&wal]);
        assert_eq!(out.inconsistencies, 1);
        assert_eq!(out.values[&tuple(1)], 3, "replay still applies the op");
    }

    #[test]
    fn untouched_tuples_keep_their_initial_values() {
        let wal = Wal::new();
        let initial = HashMap::from([(tuple(1), 11u64), (tuple(2), 22u64)]);
        let out = recover_switch_state(&initial, &[&wal]);
        assert_eq!(out.values, initial);
    }

    #[test]
    fn read_dependent_writes_replay_with_forwarded_operands() {
        // Amalgamate-style: read account A, credit B with the value read.
        let wal = Wal::new();
        let ops = vec![
            LoggedSwitchOp { tuple: tuple(1), op: OpCode::Read, operand: 0, operand_from: None },
            LoggedSwitchOp { tuple: tuple(2), op: OpCode::Add, operand: 0, operand_from: Some(0) },
        ];
        wal.append(LogRecord::SwitchIntent { txn: txn(1, 0), ops: ops.clone() });
        wal.append(LogRecord::SwitchResult {
            txn: txn(1, 0),
            gid: GlobalTxnId(0),
            results: vec![(tuple(1), 40), (tuple(2), 45)],
        });
        let initial = HashMap::from([(tuple(1), 40u64), (tuple(2), 5u64)]);
        let out = recover_switch_state(&initial, &[&wal]);
        assert_eq!(out.values[&tuple(2)], 45);
        assert_eq!(out.inconsistencies, 0);
    }

    #[test]
    fn cold_recovery_redoes_committed_and_undoes_uncommitted() {
        let wal = Wal::new();
        let committed = txn(1, 0);
        let aborted = txn(2, 0);
        let in_doubt = txn(3, 0);
        wal.append(LogRecord::ColdWrite {
            txn: committed,
            tuple: tuple(1),
            before: Value::scalar(0),
            after: Value::scalar(10),
        });
        wal.append(LogRecord::Commit { txn: committed });
        wal.append(LogRecord::ColdWrite {
            txn: aborted,
            tuple: tuple(2),
            before: Value::scalar(5),
            after: Value::scalar(50),
        });
        wal.append(LogRecord::Abort { txn: aborted });
        // No commit record but a switch intent: pre-committed, must be redone.
        wal.append(LogRecord::ColdWrite {
            txn: in_doubt,
            tuple: tuple(3),
            before: Value::scalar(7),
            after: Value::scalar(70),
        });
        wal.append(LogRecord::SwitchIntent { txn: in_doubt, ops: vec![add_op(9, 1)] });

        let state = recover_cold_state(&wal);
        assert_eq!(state[&tuple(1)].switch_word(), 10);
        assert_eq!(state[&tuple(2)].switch_word(), 5);
        assert_eq!(state[&tuple(3)].switch_word(), 70);
    }

    #[test]
    fn undo_of_a_double_writing_aborted_txn_restores_the_first_before_image() {
        // T writes tuple 1 twice (5 → 50 → 70) and aborts: the recovered
        // value must be 5, not the torn intermediate 50 carried as the
        // second record's before-image.
        let wal = Wal::new();
        let t = txn(1, 0);
        wal.append_group([
            LogRecord::ColdWrite { txn: t, tuple: tuple(1), before: Value::scalar(5), after: Value::scalar(50) },
            LogRecord::ColdWrite { txn: t, tuple: tuple(1), before: Value::scalar(50), after: Value::scalar(70) },
            LogRecord::Abort { txn: t },
        ]);
        let state = recover_cold_state(&wal);
        assert_eq!(state[&tuple(1)].switch_word(), 5);

        // The committed twin redoes to the *last* after-image.
        let wal = Wal::new();
        let t = txn(2, 0);
        wal.append_group([
            LogRecord::ColdWrite { txn: t, tuple: tuple(1), before: Value::scalar(5), after: Value::scalar(50) },
            LogRecord::ColdWrite { txn: t, tuple: tuple(1), before: Value::scalar(50), after: Value::scalar(70) },
            LogRecord::Commit { txn: t },
        ]);
        assert_eq!(recover_cold_state(&wal)[&tuple(1)].switch_word(), 70);
    }

    #[test]
    fn tail_only_replay_matches_full_replay_when_groups_are_atomic() {
        // Build a log where a checkpoint fence falls between two atomic
        // groups; replaying only the tail must reproduce the tail's writes
        // exactly (commit status is self-contained per group).
        let wal = Wal::new();
        let a = txn(1, 0);
        let b = txn(2, 0);
        wal.append_group([
            LogRecord::ColdWrite { txn: a, tuple: tuple(1), before: Value::scalar(0), after: Value::scalar(10) },
            LogRecord::Commit { txn: a },
        ]);
        let fence = wal.len();
        wal.append_group([
            LogRecord::ColdWrite { txn: b, tuple: tuple(1), before: Value::scalar(10), after: Value::scalar(99) },
            LogRecord::Abort { txn: b },
        ]);
        let tail = wal.records_from(fence as u64);
        let state = recover_cold_records(&tail);
        assert_eq!(state[&tuple(1)].switch_word(), 10, "the tail undoes b without needing a's records");
    }
}
