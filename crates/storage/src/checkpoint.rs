//! Fuzzy per-shard checkpoints of one node's partition.
//!
//! A checkpoint bounds recovery time: instead of replaying a node's history
//! from genesis, a restart loads the latest **complete** checkpoint and
//! replays only the WAL tail behind its fence. The scan is *fuzzy* in the
//! classical sense — each table shard is snapshotted independently under its
//! own read latch ([`crate::table::Table::for_each_in_shard`]), so the node
//! is never globally paused while the checkpoint is written. What makes the
//! fuzzy image sound is the WAL's group-commit atomicity: a transaction's
//! cold writes are appended in **one group** with their `Commit`/`Abort`
//! record, so whatever in-progress value a shard scan happens to capture,
//! the transaction's verdict and its before/after images land in the tail
//! behind the fence, and tail replay (`recover_cold_records`) rewrites the
//! row to the correct image.
//!
//! ## Fences
//!
//! Every coordinator logs its own cold writes, so a checkpoint of node *N*
//! records one **start fence per coordinator WAL** — the WAL length observed
//! *before* the shard scans begin. Recovery replays each coordinator's
//! records from its start fence; end fences are recorded for reporting (how
//! much traffic overlapped the scan).
//!
//! ## Wire format and torn checkpoints
//!
//! ```text
//! checkpoint := magic frame*
//! magic      := "P4CK" 0x01                    (5 bytes)
//! frame      := len:u32 LE  body  crc:u64 LE   (crc over len+body bytes)
//! body       := tag:u8 fields…                 (all integers LE)
//! ```
//!
//! Frame bodies: `1` header (node:u16, generation, `n:u16` coordinator
//! fences of start/end u64 pairs), `2` shard rows (table:u16, shard:u32,
//! `n:u32` rows of key + value), `3` footer (shard-frame count:u32, total
//! row count:u64). The footer must be the final frame and its counts must
//! match — a checkpoint cut short mid-write (a crash during the checkpoint)
//! fails decoding and the whole generation is **skipped**, falling back to
//! the previous complete one. Unlike the WAL there is no torn-*tail*
//! salvage: a checkpoint is all-or-nothing, which is what makes skipping a
//! torn generation safe (the WAL behind the older fence is still intact).

use crate::node::NodeStorage;
use crate::segment::{fnv1a_bytes, put_u16, put_u32, put_u64, put_value, BodyReader};
use crate::wal::{Wal, WalCodecError};
use p4db_common::sync::unpoison;
use p4db_common::{NodeId, TableId, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Versioned magic opening every checkpoint blob.
pub const CHECKPOINT_MAGIC: &[u8; 5] = b"P4CK\x01";

/// How many checkpoint generations a [`CheckpointStore`] retains. Two: the
/// newest (possibly torn by a crash mid-write) and the previous complete one
/// to fall back to.
pub const KEPT_GENERATIONS: usize = 2;

/// The rows of one `(table, shard)` cell, captured under that shard's latch.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardRows {
    pub table: TableId,
    pub shard: u32,
    pub rows: Vec<(u64, Value)>,
}

/// A decoded checkpoint of one node's partition.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The node whose partition was snapshotted.
    pub node: NodeId,
    /// Monotonic generation number (assigned by the [`CheckpointStore`]).
    pub generation: u64,
    /// Per-coordinator WAL lengths *before* the shard scans began; recovery
    /// replays each coordinator's records from this fence.
    pub start_fence: Vec<u64>,
    /// Per-coordinator WAL lengths after the last shard scan (reporting).
    pub end_fence: Vec<u64>,
    /// Every shard of every table, in scan order.
    pub shards: Vec<ShardRows>,
}

impl Checkpoint {
    /// Total rows captured across all shards.
    pub fn total_rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    put_u32(out, 0); // length placeholder
    start
}

fn end_frame(out: &mut Vec<u8>, start: usize) {
    let body_len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    let crc = fnv1a_bytes(&out[start..]);
    put_u64(out, crc);
}

/// Takes a fuzzy checkpoint of `target`'s partition: captures the start
/// fences of every coordinator WAL, scans each table shard independently
/// under its read latch, captures the end fences, and encodes the blob.
/// Never blocks writers outside the one shard currently being scanned.
pub fn take_fuzzy_checkpoint(target: &NodeStorage, coordinator_wals: &[&Wal], generation: u64) -> Vec<u8> {
    // Fences BEFORE any scan: a write racing the scan is then guaranteed to
    // have its commit/abort group behind some fence, whichever value the
    // scan captured.
    let start_fence: Vec<u64> = coordinator_wals.iter().map(|w| w.len() as u64).collect();

    let mut shards: Vec<ShardRows> = Vec::new();
    for id in target.table_ids() {
        let table = target.table(id).expect("declared table");
        for shard in 0..table.shard_count() {
            let mut rows: Vec<(u64, Value)> = Vec::new();
            table.for_each_in_shard(shard, |key, row| rows.push((key, row.read())));
            shards.push(ShardRows { table: id, shard: shard as u32, rows });
        }
    }
    let end_fence: Vec<u64> = coordinator_wals.iter().map(|w| w.len() as u64).collect();

    let mut out = Vec::with_capacity(64 + shards.iter().map(|s| 20 + s.rows.len() * 24).sum::<usize>());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    // Header frame.
    let at = begin_frame(&mut out);
    out.push(1);
    put_u16(&mut out, target.node().0);
    put_u64(&mut out, generation);
    put_u16(&mut out, start_fence.len() as u16);
    for (s, e) in start_fence.iter().zip(&end_fence) {
        put_u64(&mut out, *s);
        put_u64(&mut out, *e);
    }
    end_frame(&mut out, at);
    // Shard frames.
    let mut total_rows = 0u64;
    for cell in &shards {
        let at = begin_frame(&mut out);
        out.push(2);
        put_u16(&mut out, cell.table.0);
        put_u32(&mut out, cell.shard);
        put_u32(&mut out, cell.rows.len() as u32);
        for (key, value) in &cell.rows {
            put_u64(&mut out, *key);
            put_value(&mut out, value);
        }
        end_frame(&mut out, at);
        total_rows += cell.rows.len() as u64;
    }
    // Completeness footer.
    let at = begin_frame(&mut out);
    out.push(3);
    put_u32(&mut out, shards.len() as u32);
    put_u64(&mut out, total_rows);
    end_frame(&mut out, at);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes a checkpoint blob. **Any** defect — truncation anywhere, a
/// checksum mismatch, a missing or mismatched footer — is an error: a torn
/// checkpoint is skipped wholesale, never partially loaded.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, WalCodecError> {
    let magic_len = CHECKPOINT_MAGIC.len();
    if bytes.len() < magic_len || &bytes[..magic_len] != CHECKPOINT_MAGIC {
        return Err(WalCodecError { line: 0, message: "bad checkpoint magic (not a P4CK v1 checkpoint)".into() });
    }
    let mut at = magic_len;
    let mut frame_no = 0usize;
    let mut header: Option<(NodeId, u64, Vec<u64>, Vec<u64>)> = None;
    let mut shards: Vec<ShardRows> = Vec::new();
    let mut footer: Option<(u32, u64)> = None;
    while at < bytes.len() {
        frame_no += 1;
        let err = |message: String| WalCodecError { line: frame_no, message };
        if footer.is_some() {
            return Err(err("frame after the checkpoint footer".into()));
        }
        if bytes.len() - at < 4 {
            return Err(err(format!("torn checkpoint: truncated frame length at byte {at}")));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let body_end = at + 4 + len;
        let frame_end = body_end + 8;
        if frame_end > bytes.len() {
            return Err(err(format!("torn checkpoint: truncated frame at byte {at}")));
        }
        let stored = u64::from_le_bytes(bytes[body_end..frame_end].try_into().expect("8 bytes"));
        let actual = fnv1a_bytes(&bytes[at..body_end]);
        if stored != actual {
            return Err(err(format!("checkpoint frame checksum mismatch at byte {at}")));
        }
        let mut r = BodyReader { bytes: &bytes[at + 4..body_end], at: 0, record: frame_no };
        let tag = r.u8("frame tag")?;
        match tag {
            1 => {
                if header.is_some() {
                    return Err(err("duplicate checkpoint header frame".into()));
                }
                let node = NodeId(r.u16("node id")?);
                let generation = r.u64("generation")?;
                let n = r.u16("fence count")? as usize;
                let mut start = Vec::with_capacity(n);
                let mut end = Vec::with_capacity(n);
                for _ in 0..n {
                    start.push(r.u64("start fence")?);
                    end.push(r.u64("end fence")?);
                }
                header = Some((node, generation, start, end));
            }
            2 => {
                if header.is_none() {
                    return Err(err("shard frame before the checkpoint header".into()));
                }
                let table = TableId(r.u16("table id")?);
                let shard = u32::from_le_bytes(r.take(4, "shard index")?.try_into().expect("4 bytes"));
                let n = u32::from_le_bytes(r.take(4, "row count")?.try_into().expect("4 bytes")) as usize;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = r.u64("row key")?;
                    let value = r.value("row value")?;
                    rows.push((key, value));
                }
                shards.push(ShardRows { table, shard, rows });
            }
            3 => {
                let frames = u32::from_le_bytes(r.take(4, "shard frame count")?.try_into().expect("4 bytes"));
                let rows = r.u64("total row count")?;
                footer = Some((frames, rows));
            }
            other => return Err(err(format!("unknown checkpoint frame tag {other}"))),
        }
        if r.at != r.bytes.len() {
            return Err(err(format!("{} trailing garbage bytes in checkpoint frame", r.bytes.len() - r.at)));
        }
        at = frame_end;
    }
    let (node, generation, start_fence, end_fence) =
        header.ok_or(WalCodecError { line: 0, message: "checkpoint has no header frame".into() })?;
    let (frames, rows) = footer
        .ok_or(WalCodecError { line: frame_no, message: "torn checkpoint: missing completeness footer".into() })?;
    let total: u64 = shards.iter().map(|s| s.rows.len() as u64).sum();
    if frames as usize != shards.len() || rows != total {
        return Err(WalCodecError {
            line: frame_no,
            message: format!(
                "checkpoint footer disagrees with contents ({} shard frames / {total} rows seen, footer says \
                 {frames} / {rows})",
                shards.len()
            ),
        });
    }
    Ok(Checkpoint { node, generation, start_fence, end_fence, shards })
}

// ---------------------------------------------------------------------------
// The per-node checkpoint store
// ---------------------------------------------------------------------------

/// Retains the last [`KEPT_GENERATIONS`] checkpoint blobs of one node, the
/// way a checkpoint directory on disk would. The newest generation may be
/// torn (a crash can land mid-write); [`CheckpointStore::latest_complete`]
/// decodes newest-first and silently skips torn generations.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    blobs: Mutex<Vec<Arc<Vec<u8>>>>,
    next_generation: AtomicU64,
}

impl CheckpointStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the next generation number (bake it into the blob before
    /// [`CheckpointStore::install`]).
    pub fn begin_generation(&self) -> u64 {
        self.next_generation.fetch_add(1, Ordering::Relaxed)
    }

    /// Installs a freshly written checkpoint blob, evicting all but the last
    /// [`KEPT_GENERATIONS`].
    pub fn install(&self, blob: Vec<u8>) {
        let mut blobs = unpoison(self.blobs.lock());
        blobs.push(Arc::new(blob));
        let len = blobs.len();
        if len > KEPT_GENERATIONS {
            blobs.drain(..len - KEPT_GENERATIONS);
        }
    }

    /// Number of retained generations.
    pub fn generations(&self) -> usize {
        unpoison(self.blobs.lock()).len()
    }

    /// Decodes the newest complete checkpoint, skipping torn generations.
    pub fn latest_complete(&self) -> Option<Checkpoint> {
        let blobs = unpoison(self.blobs.lock()).clone();
        blobs.iter().rev().find_map(|blob| decode_checkpoint(blob).ok())
    }

    /// Simulates a crash *during* a checkpoint write by cutting the newest
    /// blob down to its first `keep` bytes (chaos drills). Returns `false`
    /// when there is no checkpoint to tear.
    pub fn tear_latest(&self, keep: usize) -> bool {
        let mut blobs = unpoison(self.blobs.lock());
        match blobs.last_mut() {
            Some(blob) => {
                let torn = blob[..keep.min(blob.len())].to_vec();
                *blob = Arc::new(torn);
                true
            }
            None => false,
        }
    }

    /// Drops every retained generation (a node whose checkpoint directory
    /// was lost recovers from genesis).
    pub fn clear(&self) {
        unpoison(self.blobs.lock()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::LogRecord;
    use p4db_common::TxnId;

    fn storage_with_rows() -> NodeStorage {
        let storage = NodeStorage::with_shards(NodeId(1), [TableId(0), TableId(3)], 4);
        for key in 0..100u64 {
            storage.table(TableId(0)).unwrap().insert(key, Value::scalar(key * 2));
        }
        storage.table(TableId(3)).unwrap().insert(7, Value::from_fields(&[1, 2, 3]));
        storage
    }

    #[test]
    fn checkpoint_roundtrip_preserves_rows_and_fences() {
        let storage = storage_with_rows();
        let wal_a = Wal::new();
        let wal_b = Wal::new();
        wal_a.append(LogRecord::Commit { txn: TxnId(1) });
        wal_a.append(LogRecord::Commit { txn: TxnId(2) });
        let blob = take_fuzzy_checkpoint(&storage, &[&wal_a, &wal_b], 9);
        let ckpt = decode_checkpoint(&blob).unwrap();
        assert_eq!(ckpt.node, NodeId(1));
        assert_eq!(ckpt.generation, 9);
        assert_eq!(ckpt.start_fence, vec![2, 0]);
        assert_eq!(ckpt.end_fence, vec![2, 0]);
        assert_eq!(ckpt.total_rows(), 101);
        // 4 shards per table × 2 tables, every shard present even if empty.
        assert_eq!(ckpt.shards.len(), 8);
        let mut recovered: Vec<(TableId, u64, u64)> =
            ckpt.shards.iter().flat_map(|s| s.rows.iter().map(move |(k, v)| (s.table, *k, v.switch_word()))).collect();
        recovered.sort();
        let mut expected: Vec<(TableId, u64, u64)> = (0..100).map(|k| (TableId(0), k, k * 2)).collect();
        expected.push((TableId(3), 7, 1));
        expected.sort();
        assert_eq!(recovered, expected);
        // Shard routing matches the table's own: every row sits in the shard
        // frame recovery would route its key to.
        for cell in &ckpt.shards {
            let table = storage.table(cell.table).unwrap();
            for (key, _) in &cell.rows {
                assert_eq!(table.shard_of(*key) as u32, cell.shard);
            }
        }
    }

    #[test]
    fn every_truncation_of_a_checkpoint_is_detected() {
        let storage = storage_with_rows();
        let wal = Wal::new();
        let blob = take_fuzzy_checkpoint(&storage, &[&wal], 0);
        assert!(decode_checkpoint(&blob).is_ok());
        for cut in 0..blob.len() {
            assert!(decode_checkpoint(&blob[..cut]).is_err(), "truncation to {cut} bytes decoded as complete");
        }
        // A flipped byte anywhere in a frame is caught by its checksum.
        let mut corrupt = blob.clone();
        corrupt[CHECKPOINT_MAGIC.len() + 10] ^= 0x01;
        assert!(decode_checkpoint(&corrupt).is_err());
        // And garbage is not a checkpoint at all.
        assert!(decode_checkpoint(b"hello").unwrap_err().message.contains("magic"));
    }

    #[test]
    fn store_keeps_two_generations_and_falls_back_past_a_torn_one() {
        let storage = storage_with_rows();
        let wal = Wal::new();
        let store = CheckpointStore::new();
        assert!(store.latest_complete().is_none());
        assert!(!store.tear_latest(10), "nothing to tear yet");

        for _ in 0..3 {
            let generation = store.begin_generation();
            store.install(take_fuzzy_checkpoint(&storage, &[&wal], generation));
        }
        assert_eq!(store.generations(), KEPT_GENERATIONS, "only the last two generations are retained");
        assert_eq!(store.latest_complete().unwrap().generation, 2);

        // Tear the newest mid-write: recovery falls back to generation 1.
        assert!(store.tear_latest(40));
        assert_eq!(store.latest_complete().unwrap().generation, 1);

        // Both torn: recovery reports no usable checkpoint (genesis replay).
        let mut blobs = unpoison(store.blobs.lock());
        for blob in blobs.iter_mut() {
            *blob = Arc::new(blob[..30].to_vec());
        }
        drop(blobs);
        assert!(store.latest_complete().is_none());
        store.clear();
        assert_eq!(store.generations(), 0);
    }
}
