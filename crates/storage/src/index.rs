//! Secondary indexes.
//!
//! P4DB keeps secondary indexes on the database nodes even for hot tuples
//! (§6.1): a secondary-key lookup first resolves to a primary key on the
//! node, and only then does the engine decide whether the primary key is hot
//! (switch) or cold (host). Index maintenance after switch transactions is
//! possible precisely because switch transactions cannot fail.

use p4db_common::sync::unpoison;
use std::collections::HashMap;
use std::sync::RwLock;

/// A secondary index: 64-bit secondary key → primary keys.
///
/// Non-unique by design (e.g. several TPC-C customers share a last name).
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    map: RwLock<HashMap<u64, Vec<u64>>>,
}

impl SecondaryIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `(secondary, primary)` association. Duplicate associations are
    /// ignored.
    pub fn insert(&self, secondary: u64, primary: u64) {
        let mut map = unpoison(self.map.write());
        let entry = map.entry(secondary).or_default();
        if !entry.contains(&primary) {
            entry.push(primary);
        }
    }

    /// Removes one association; returns whether it existed.
    pub fn remove(&self, secondary: u64, primary: u64) -> bool {
        let mut map = unpoison(self.map.write());
        match map.get_mut(&secondary) {
            Some(entry) => {
                let before = entry.len();
                entry.retain(|&p| p != primary);
                let removed = entry.len() != before;
                if entry.is_empty() {
                    map.remove(&secondary);
                }
                removed
            }
            None => false,
        }
    }

    /// All primary keys registered under `secondary`.
    pub fn lookup(&self, secondary: u64) -> Vec<u64> {
        unpoison(self.map.read()).get(&secondary).cloned().unwrap_or_default()
    }

    /// The unique primary key under `secondary`, if there is exactly one.
    pub fn lookup_unique(&self, secondary: u64) -> Option<u64> {
        let map = unpoison(self.map.read());
        match map.get(&secondary) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// Number of distinct secondary keys.
    pub fn len(&self) -> usize {
        unpoison(self.map.read()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let idx = SecondaryIndex::new();
        idx.insert(100, 1);
        idx.insert(100, 2);
        idx.insert(200, 3);
        let mut hits = idx.lookup(100);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(idx.lookup_unique(200), Some(3));
        assert_eq!(idx.lookup_unique(100), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let idx = SecondaryIndex::new();
        idx.insert(1, 7);
        idx.insert(1, 7);
        assert_eq!(idx.lookup(1), vec![7]);
    }

    #[test]
    fn remove_cleans_up_empty_entries() {
        let idx = SecondaryIndex::new();
        idx.insert(1, 7);
        assert!(idx.remove(1, 7));
        assert!(!idx.remove(1, 7));
        assert!(idx.lookup(1).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn missing_key_lookup_is_empty() {
        let idx = SecondaryIndex::new();
        assert!(idx.lookup(42).is_empty());
        assert_eq!(idx.lookup_unique(42), None);
    }
}
