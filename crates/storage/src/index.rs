//! Secondary indexes.
//!
//! P4DB keeps secondary indexes on the database nodes even for hot tuples
//! (§6.1): a secondary-key lookup first resolves to a primary key on the
//! node, and only then does the engine decide whether the primary key is hot
//! (switch) or cold (host). Index maintenance after switch transactions is
//! possible precisely because switch transactions cannot fail.
//!
//! Sharded identically to [`crate::table::Table`]: a fixed power-of-two
//! array of latch-protected map shards selected by the mixed secondary key,
//! so concurrent lookups of unrelated secondary keys never contend.

use p4db_common::hash::{mix64, FastMap};
use p4db_common::sync::unpoison;
use std::sync::RwLock;

/// Default shard count, matching the row store.
const INDEX_SHARDS: usize = 64;

type IndexShard = RwLock<FastMap<u64, Vec<u64>>>;

/// A secondary index: 64-bit secondary key → primary keys.
///
/// Non-unique by design (e.g. several TPC-C customers share a last name).
#[derive(Debug)]
pub struct SecondaryIndex {
    shards: Box<[IndexShard]>,
    mask: u64,
}

impl Default for SecondaryIndex {
    fn default() -> Self {
        Self::with_shards(INDEX_SHARDS)
    }
}

impl SecondaryIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// An index with an explicit shard count (rounded up to a power of two;
    /// `1` reproduces the seed's single-latch layout).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        SecondaryIndex {
            shards: (0..shards).map(|_| RwLock::new(FastMap::default())).collect(),
            mask: shards as u64 - 1,
        }
    }

    #[inline]
    fn shard(&self, secondary: u64) -> &IndexShard {
        &self.shards[(mix64(secondary) & self.mask) as usize]
    }

    /// Adds a `(secondary, primary)` association. Duplicate associations are
    /// ignored.
    pub fn insert(&self, secondary: u64, primary: u64) {
        let mut map = unpoison(self.shard(secondary).write());
        let entry = map.entry(secondary).or_default();
        if !entry.contains(&primary) {
            entry.push(primary);
        }
    }

    /// Removes one association; returns whether it existed.
    pub fn remove(&self, secondary: u64, primary: u64) -> bool {
        let mut map = unpoison(self.shard(secondary).write());
        match map.get_mut(&secondary) {
            Some(entry) => {
                let before = entry.len();
                entry.retain(|&p| p != primary);
                let removed = entry.len() != before;
                if entry.is_empty() {
                    map.remove(&secondary);
                }
                removed
            }
            None => false,
        }
    }

    /// All primary keys registered under `secondary`.
    pub fn lookup(&self, secondary: u64) -> Vec<u64> {
        unpoison(self.shard(secondary).read()).get(&secondary).cloned().unwrap_or_default()
    }

    /// The unique primary key under `secondary`, if there is exactly one.
    pub fn lookup_unique(&self, secondary: u64) -> Option<u64> {
        let map = unpoison(self.shard(secondary).read());
        match map.get(&secondary) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of distinct secondary keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| unpoison(s.read()).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let idx = SecondaryIndex::new();
        idx.insert(100, 1);
        idx.insert(100, 2);
        idx.insert(200, 3);
        let mut hits = idx.lookup(100);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(idx.lookup_unique(200), Some(3));
        assert_eq!(idx.lookup_unique(100), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let idx = SecondaryIndex::new();
        idx.insert(1, 7);
        idx.insert(1, 7);
        assert_eq!(idx.lookup(1), vec![7]);
    }

    #[test]
    fn remove_cleans_up_empty_entries() {
        let idx = SecondaryIndex::new();
        idx.insert(1, 7);
        assert!(idx.remove(1, 7));
        assert!(!idx.remove(1, 7));
        assert!(idx.lookup(1).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn missing_key_lookup_is_empty() {
        let idx = SecondaryIndex::new();
        assert!(idx.lookup(42).is_empty());
        assert_eq!(idx.lookup_unique(42), None);
    }

    #[test]
    fn single_shard_index_behaves_identically() {
        let idx = SecondaryIndex::with_shards(1);
        for secondary in 0..100u64 {
            idx.insert(secondary, secondary * 10);
        }
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.lookup_unique(99), Some(990));
    }
}
