//! The per-node write-ahead log.
//!
//! Durability of switch transactions is the responsibility of the database
//! nodes (§6.1): a node appends the *intent* (the operations it is about to
//! send to the switch) to its local log **before** sending the packet —
//! switch transactions count as committed at that point because they can no
//! longer abort — and appends the switch-assigned GID together with the
//! read/write results when the reply arrives. Cold writes are logged with
//! before/after images so that node recovery can redo committed and undo
//! uncommitted work.
//!
//! ## On-disk format
//!
//! The serialised log is a hand-rolled, versioned text encoding — one record
//! per line, first line a version header — because the build environment has
//! no crates.io access and therefore no `serde_json`:
//!
//! ```text
//! p4dbwal 1
//! cw <txn> <table>:<key> <before-fields,comma-separated> <after-fields> #<crc>
//! si <txn> <table>:<key>:<op>:<operand>:<operand_from|-> ... #<crc>
//! sr <txn> <gid> <table>:<key>:<result> ... #<crc>
//! c <txn> #<crc>
//! a <txn> #<crc>
//! ```
//!
//! Every numeric field is decimal. The trailing `#<crc>` token is an
//! FNV-1a-64 checksum (hex) of the record body: without it a torn final
//! record could decode as a *different but well-formed* record (e.g. `c 10`
//! torn to `c 1`), silently corrupting recovery. The encoding round-trips
//! exactly: `Wal::deserialize(&wal.serialize())` reproduces the record
//! vector verbatim.
//!
//! ## Torn tail vs. interior corruption
//!
//! A failing record is classified by *where* it fails, and the two cases
//! have opposite meanings:
//!
//! * **Torn tail** — the failing line is the **final** non-empty line of the
//!   input. That is exactly what a crash mid-flush produces: the prefix
//!   reached stable storage, the last record did not.
//!   [`Wal::deserialize_prefix`] returns the intact prefix together with the
//!   tear as a note, and recovery proceeds from the prefix.
//! * **Interior corruption** — a record fails while *intact records follow
//!   it*. No crash produces that shape; it means the medium lost data in the
//!   middle of the log, and truncating to the prefix would silently discard
//!   the intact records after the hole. This is a hard [`WalCodecError`]
//!   from both [`Wal::deserialize`] and [`Wal::deserialize_prefix`].
//!
//! The binary segment codec ([`crate::segment`]) carries the identical
//! contract: an error at the physical end of the *final* segment is a torn
//! tail; anything earlier is data loss.
//!
//! This text format is the compatibility/differential arm; the default
//! crash-drill arm is the segmented binary codec in [`crate::segment`]
//! (sealed bounded segments plus one active tail, rotated by
//! [`Wal::append`]/[`Wal::append_group`] at
//! [`Wal::segment_capacity`] records).

use p4db_common::sync::unpoison;
use p4db_common::{GlobalTxnId, TupleId, TxnId, Value};
use p4db_switch::OpCode;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Version tag written as the first line of every serialised log.
const WAL_HEADER: &str = "p4dbwal 1";

/// Default number of records per log segment before the active tail is
/// sealed and a new one started (see [`Wal::serialize_segments`]).
pub const DEFAULT_SEGMENT_RECORDS: usize = 512;

/// FNV-1a 64-bit hash of a record body, the per-record checksum of the
/// serialised format. Not cryptographic — it only needs to make it
/// overwhelmingly unlikely that a torn or bit-flipped line still carries a
/// matching checksum.
fn fnv1a(body: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in body.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One operation of a switch (sub-)transaction as recorded in the log. The
/// tuple id (not the register slot) is logged so that recovery works even if
/// the hot set is re-offloaded to different registers after a switch failure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoggedSwitchOp {
    pub tuple: TupleId,
    pub op: OpCode,
    pub operand: u64,
    /// Operand forwarding source (read-dependent writes), same semantics as
    /// in the switch packet format.
    pub operand_from: Option<u8>,
}

/// A log record.
///
/// `ColdWrite` is much larger than the tag-only variants because it carries
/// two full before/after images inline; boxing them would put an allocation
/// on the append hot path for no benefit, since logs are stored in `Vec`s
/// whose slot size is paid either way.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A write to a cold tuple performed by `txn` (before/after images).
    ColdWrite { txn: TxnId, tuple: TupleId, before: Value, after: Value },
    /// The intent of a switch (sub-)transaction, written *before* the packet
    /// is sent out.
    SwitchIntent { txn: TxnId, ops: Vec<LoggedSwitchOp> },
    /// The switch's reply: its globally-ordered GID plus the value returned
    /// for every operation (the read/write-set used by recovery to restore
    /// ordering).
    SwitchResult { txn: TxnId, gid: GlobalTxnId, results: Vec<(TupleId, u64)> },
    /// The transaction's cold part committed.
    Commit { txn: TxnId },
    /// The transaction aborted (cold part rolled back; never emitted for
    /// switch sub-transactions, which cannot abort).
    Abort { txn: TxnId },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::ColdWrite { txn, .. }
            | LogRecord::SwitchIntent { txn, .. }
            | LogRecord::SwitchResult { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

/// Which serialisation arm a crash drill (or a real restart) round-trips
/// the log through. Both arms carry the identical torn-tail-vs-interior-
/// corruption contract; the differential suite in `tests/durability.rs`
/// proves their invariant verdicts equivalent.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum WalCodec {
    /// The segmented binary codec of [`crate::segment`] — the default arm:
    /// sealed bounded segments plus one active tail.
    #[default]
    Binary,
    /// The versioned text format of this module — the compatibility and
    /// differential-baseline arm.
    Text,
}

/// A parse failure while reconstructing a log from its serialised form,
/// pointing at the offending (1-based) line. Torn trailing records — a crash
/// mid-flush — surface here as a regular error the caller can handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalCodecError {
    pub line: usize,
    pub message: String,
}

impl WalCodecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        WalCodecError { line, message: message.into() }
    }
}

impl fmt::Display for WalCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WAL parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WalCodecError {}

// `write!` into a `String` cannot fail; the unreachable error arm would
// otherwise force `encode_record` to return a `Result` nobody can act on.
macro_rules! w {
    ($out:expr, $($arg:tt)*) => { let _ = write!($out, $($arg)*); };
}

fn encode_tuple(out: &mut String, tuple: TupleId) {
    w!(out, "{}:{}", tuple.table.0, tuple.key);
}

fn encode_value(out: &mut String, value: &Value) {
    let mut first = true;
    for field in value.as_slice() {
        if !first {
            out.push(',');
        }
        w!(out, "{field}");
        first = false;
    }
}

fn encode_record(out: &mut String, record: &LogRecord) {
    match record {
        LogRecord::ColdWrite { txn, tuple, before, after } => {
            w!(out, "cw {} ", txn.0);
            encode_tuple(out, *tuple);
            out.push(' ');
            encode_value(out, before);
            out.push(' ');
            encode_value(out, after);
        }
        LogRecord::SwitchIntent { txn, ops } => {
            w!(out, "si {}", txn.0);
            for op in ops {
                out.push(' ');
                encode_tuple(out, op.tuple);
                w!(out, ":{}:{}", op.op.name(), op.operand);
                match op.operand_from {
                    Some(src) => {
                        w!(out, ":{src}");
                    }
                    None => out.push_str(":-"),
                }
            }
        }
        LogRecord::SwitchResult { txn, gid, results } => {
            w!(out, "sr {} {}", txn.0, gid.0);
            for (tuple, value) in results {
                out.push(' ');
                encode_tuple(out, *tuple);
                w!(out, ":{value}");
            }
        }
        LogRecord::Commit { txn } => {
            w!(out, "c {}", txn.0);
        }
        LogRecord::Abort { txn } => {
            w!(out, "a {}", txn.0);
        }
    }
}

struct LineParser<'a> {
    line: usize,
    fields: std::str::SplitWhitespace<'a>,
}

impl<'a> LineParser<'a> {
    fn new(line: usize, text: &'a str) -> Self {
        LineParser { line, fields: text.split_whitespace() }
    }

    fn err(&self, message: impl Into<String>) -> WalCodecError {
        WalCodecError::new(self.line, message)
    }

    fn next(&mut self, what: &str) -> Result<&'a str, WalCodecError> {
        self.fields.next().ok_or_else(|| self.err(format!("truncated record: missing {what}")))
    }

    fn u64(&self, what: &str, text: &str) -> Result<u64, WalCodecError> {
        text.parse::<u64>().map_err(|_| self.err(format!("invalid {what} {text:?}")))
    }

    fn txn(&mut self) -> Result<TxnId, WalCodecError> {
        let raw = self.next("transaction id")?;
        Ok(TxnId(self.u64("transaction id", raw)?))
    }

    fn tuple(&self, text: &str) -> Result<TupleId, WalCodecError> {
        let (table, key) =
            text.split_once(':').ok_or_else(|| self.err(format!("invalid tuple {text:?} (expected table:key)")))?;
        let table = table.parse::<u16>().map_err(|_| self.err(format!("invalid table id {table:?}")))?;
        let key = self.u64("tuple key", key)?;
        Ok(TupleId::new(p4db_common::TableId(table), key))
    }

    fn value(&mut self, what: &str) -> Result<Value, WalCodecError> {
        let raw = self.next(what)?;
        let mut fields = Vec::new();
        for part in raw.split(',') {
            fields.push(self.u64(what, part)?);
        }
        if fields.is_empty() || fields.len() > p4db_common::value::MAX_FIELDS {
            return Err(self.err(format!("invalid {what} width {}", fields.len())));
        }
        Ok(Value::from_fields(&fields))
    }

    fn finish(mut self) -> Result<(), WalCodecError> {
        match self.fields.next() {
            Some(extra) => Err(self.err(format!("trailing garbage {extra:?}"))),
            None => Ok(()),
        }
    }
}

/// Splits off and verifies the trailing ` #<crc>` token, then decodes the
/// record body. The checksum check comes first so that a torn line which
/// happens to be a well-formed shorter record is still rejected.
fn decode_checksummed_record(line_no: usize, text: &str) -> Result<LogRecord, WalCodecError> {
    let (body, crc_text) =
        text.rsplit_once(" #").ok_or_else(|| WalCodecError::new(line_no, "truncated record: missing checksum"))?;
    let crc = u64::from_str_radix(crc_text.trim(), 16)
        .map_err(|_| WalCodecError::new(line_no, format!("invalid checksum {crc_text:?}")))?;
    let actual = fnv1a(body);
    if crc != actual {
        return Err(WalCodecError::new(
            line_no,
            format!("checksum mismatch (stored {crc:016x}, computed {actual:016x}) — torn or corrupt record"),
        ));
    }
    decode_record(line_no, body)
}

fn decode_record(line_no: usize, text: &str) -> Result<LogRecord, WalCodecError> {
    let mut p = LineParser::new(line_no, text);
    let tag = p.next("record tag")?;
    let record = match tag {
        "cw" => {
            let txn = p.txn()?;
            let tuple_raw = p.next("tuple")?;
            let tuple = p.tuple(tuple_raw)?;
            let before = p.value("before image")?;
            let after = p.value("after image")?;
            LogRecord::ColdWrite { txn, tuple, before, after }
        }
        "si" => {
            let txn = p.txn()?;
            let mut ops = Vec::new();
            while let Some(raw) = p.fields.next() {
                let parts: Vec<&str> = raw.split(':').collect();
                if parts.len() != 5 {
                    return Err(p.err(format!("invalid switch op {raw:?} (expected table:key:op:operand:from)")));
                }
                let tuple = p.tuple(&format!("{}:{}", parts[0], parts[1]))?;
                let op = OpCode::from_name(parts[2]).ok_or_else(|| p.err(format!("unknown opcode {:?}", parts[2])))?;
                let operand = p.u64("operand", parts[3])?;
                let operand_from = match parts[4] {
                    "-" => None,
                    src => Some(src.parse::<u8>().map_err(|_| p.err(format!("invalid operand source {src:?}")))?),
                };
                ops.push(LoggedSwitchOp { tuple, op, operand, operand_from });
            }
            return Ok(LogRecord::SwitchIntent { txn, ops });
        }
        "sr" => {
            let txn = p.txn()?;
            let gid_raw = p.next("gid")?;
            let gid = GlobalTxnId(p.u64("gid", gid_raw)?);
            let mut results = Vec::new();
            while let Some(raw) = p.fields.next() {
                let (tuple_raw, value_raw) = raw
                    .rsplit_once(':')
                    .ok_or_else(|| p.err(format!("invalid result {raw:?} (expected table:key:value)")))?;
                let tuple = p.tuple(tuple_raw)?;
                let value = p.u64("result value", value_raw)?;
                results.push((tuple, value));
            }
            return Ok(LogRecord::SwitchResult { txn, gid, results });
        }
        "c" => LogRecord::Commit { txn: p.txn()? },
        "a" => LogRecord::Abort { txn: p.txn()? },
        other => return Err(p.err(format!("unknown record tag {other:?}"))),
    };
    p.finish()?;
    Ok(record)
}

/// The mutex-guarded interior of a [`Wal`]: the full record vector plus the
/// cache of sealed, already-encoded binary segments (every
/// `segment_capacity` records the oldest unsealed span is encoded once and
/// kept, so repeated crash drills never re-encode history).
#[derive(Debug, Default)]
struct WalInner {
    records: Vec<LogRecord>,
    sealed: Vec<Arc<Vec<u8>>>,
}

/// The per-node write-ahead log. Appends are serialised by a mutex; in the
/// real system this is the log buffer + group commit path, whose cost the
/// paper argues is negligible next to network latency (§A.3).
///
/// The log is physically a sequence of bounded **segments**: sealed segments
/// (encoded to the binary codec of [`crate::segment`] at rotation time,
/// immutable from then on) plus one active tail. [`Wal::serialize_segments`]
/// returns that sequence; [`Wal::serialize`] still renders the whole log in
/// the versioned text format as the compatibility/differential arm.
#[derive(Debug)]
pub struct Wal {
    inner: Mutex<WalInner>,
    segment_capacity: usize,
}

impl Default for Wal {
    fn default() -> Self {
        Wal { inner: Mutex::new(WalInner::default()), segment_capacity: DEFAULT_SEGMENT_RECORDS }
    }
}

impl Wal {
    pub fn new() -> Self {
        Self::default()
    }

    /// A log that rotates its binary segments every `capacity` records
    /// (clamped to at least 1). The capacity only bounds segment size; the
    /// record contents and the text serialisation are unaffected.
    pub fn with_segment_capacity(capacity: usize) -> Self {
        Wal { inner: Mutex::new(WalInner::default()), segment_capacity: capacity.max(1) }
    }

    /// Number of records per sealed segment.
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    fn from_records(records: Vec<LogRecord>) -> Self {
        Wal { inner: Mutex::new(WalInner { records, sealed: Vec::new() }), segment_capacity: DEFAULT_SEGMENT_RECORDS }
    }

    /// Seals every complete, not-yet-sealed segment. Called with the append
    /// mutex held: rotation is the moment the record crossing the capacity
    /// boundary is appended, exactly like a file-backed log closing one
    /// segment file and opening the next.
    fn seal_full_segments(&self, inner: &mut WalInner) {
        while (inner.sealed.len() + 1) * self.segment_capacity <= inner.records.len() {
            let base = inner.sealed.len() * self.segment_capacity;
            let blob = crate::segment::encode_segment(base as u64, &inner.records[base..base + self.segment_capacity]);
            inner.sealed.push(Arc::new(blob));
        }
    }

    /// Appends a record and returns its log sequence number.
    pub fn append(&self, record: LogRecord) -> u64 {
        let mut inner = unpoison(self.inner.lock());
        inner.records.push(record);
        let lsn = (inner.records.len() - 1) as u64;
        self.seal_full_segments(&mut inner);
        lsn
    }

    /// Group commit: appends a whole batch of records under **one** lock
    /// acquisition — the stand-in for staging records in a worker-local
    /// buffer and encoding + fsyncing them as a single log write. The batch
    /// is appended contiguously and in order (no other appender's record can
    /// interleave inside it), and the serialised form is identical to the
    /// same records appended one by one, so the torn-record-safe encoding
    /// and [`Wal::deserialize_prefix`] recovery are unaffected.
    ///
    /// Returns the LSN of the batch's first record, or `None` for an empty
    /// batch — an empty batch writes nothing, and handing out the current
    /// log length as its "LSN" would name a record that belongs to whoever
    /// appends next.
    pub fn append_group(&self, batch: impl IntoIterator<Item = LogRecord>) -> Option<u64> {
        let mut inner = unpoison(self.inner.lock());
        let first = inner.records.len() as u64;
        inner.records.extend(batch);
        if inner.records.len() as u64 == first {
            return None;
        }
        self.seal_full_segments(&mut inner);
        Some(first)
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        unpoison(self.inner.lock()).records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the whole log (recovery input).
    pub fn records(&self) -> Vec<LogRecord> {
        unpoison(self.inner.lock()).records.clone()
    }

    /// A snapshot of the log from `lsn` onwards (checkpoint-tail replay
    /// input).
    pub fn records_from(&self, lsn: u64) -> Vec<LogRecord> {
        let inner = unpoison(self.inner.lock());
        let at = (lsn as usize).min(inner.records.len());
        inner.records[at..].to_vec()
    }

    /// Serialises the log to the versioned text format (header line plus one
    /// record per line), the stand-in for forcing the log to stable storage.
    pub fn serialize(&self) -> String {
        let inner = unpoison(self.inner.lock());
        let mut out = String::with_capacity(16 + inner.records.len() * 48);
        out.push_str(WAL_HEADER);
        out.push('\n');
        let mut body = String::new();
        for r in inner.records.iter() {
            body.clear();
            encode_record(&mut body, r);
            out.push_str(&body);
            w!(out, " #{:016x}\n", fnv1a(&body));
        }
        out
    }

    /// Serialises the log as its binary segment sequence: every sealed
    /// segment (encoded once, at rotation) followed by the active tail
    /// (encoded fresh, it is still growing). An empty log yields no
    /// segments. See [`crate::segment`] for the wire format and the torn-
    /// tail contract.
    pub fn serialize_segments(&self) -> Vec<Arc<Vec<u8>>> {
        let inner = unpoison(self.inner.lock());
        let mut blobs = inner.sealed.clone();
        let tail_base = inner.sealed.len() * self.segment_capacity;
        if tail_base < inner.records.len() {
            blobs.push(Arc::new(crate::segment::encode_segment(tail_base as u64, &inner.records[tail_base..])));
        }
        blobs
    }

    /// Reconstructs a log from a binary segment sequence, tolerating a torn
    /// tail in the **final** segment only (see [`crate::segment`]). The
    /// reconstructed log re-rotates under `capacity`.
    pub fn deserialize_segments(
        blobs: &[impl AsRef<[u8]>],
        capacity: usize,
    ) -> Result<(Self, Option<WalCodecError>), WalCodecError> {
        let (records, torn) = crate::segment::decode_segments(blobs)?;
        let wal =
            Wal { inner: Mutex::new(WalInner { records, sealed: Vec::new() }), segment_capacity: capacity.max(1) };
        {
            let mut inner = unpoison(wal.inner.lock());
            wal.seal_full_segments(&mut inner);
        }
        Ok((wal, torn))
    }

    /// Reconstructs a log from its serialised form. Empty input yields an
    /// empty log; anything else must start with the version header. Any
    /// failing record — torn tail or interior corruption alike, including a
    /// torn final record that the per-record checksum catches even when the
    /// tear leaves a well-formed shorter record behind — yields a
    /// [`WalCodecError`] rather than panicking. Use
    /// [`Wal::deserialize_prefix`] when recovery should fall back to the
    /// prefix of the log that did reach stable storage.
    pub fn deserialize(data: &str) -> Result<Self, WalCodecError> {
        match Self::deserialize_prefix(data)? {
            (wal, None) => Ok(wal),
            (_, Some(torn)) => Err(torn),
        }
    }

    /// Like [`Wal::deserialize`], but implements the torn-tail contract (see
    /// the module docs): a record that fails on the **final** non-empty line
    /// is a legitimate torn tail — the intact prefix is returned together
    /// with the tear as a note, and recovery proceeds from it. A record that
    /// fails with intact lines *after* it is interior corruption — data
    /// loss, not a tear — and is a hard error: truncating there would
    /// silently discard every intact record behind the hole.
    pub fn deserialize_prefix(data: &str) -> Result<(Self, Option<WalCodecError>), WalCodecError> {
        let mut last_content_line = None;
        for (idx, line) in data.lines().enumerate() {
            if !line.trim().is_empty() {
                last_content_line = Some(idx + 1);
            }
        }
        let mut records = Vec::new();
        let mut seen_header = false;
        let mut torn = None;
        for (idx, line) in data.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let result = if !seen_header {
                if line.trim() == WAL_HEADER {
                    seen_header = true;
                    continue;
                }
                Err(WalCodecError::new(
                    line_no,
                    format!("missing or unsupported header (expected {WAL_HEADER:?}, got {line:?})"),
                ))
            } else {
                decode_checksummed_record(line_no, line)
            };
            match result {
                Ok(record) => records.push(record),
                Err(err) if Some(line_no) == last_content_line => {
                    torn = Some(err);
                    break;
                }
                Err(err) => {
                    return Err(WalCodecError::new(
                        err.line,
                        format!("interior corruption (intact records follow): {}", err.message),
                    ))
                }
            }
        }
        Ok((Wal::from_records(records), torn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, TableId, WorkerId};

    fn txn(seq: u32) -> TxnId {
        TxnId::compose(seq, NodeId(0), WorkerId(0))
    }

    fn tuple(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn sample_wal() -> Wal {
        let wal = Wal::new();
        wal.append(LogRecord::ColdWrite {
            txn: txn(3),
            tuple: tuple(9),
            before: Value::from_fields(&[1, 7, 9]),
            after: Value::from_fields(&[2, 7, 9]),
        });
        wal.append(LogRecord::SwitchIntent {
            txn: txn(3),
            ops: vec![
                LoggedSwitchOp { tuple: tuple(1), op: OpCode::Add, operand: 2, operand_from: None },
                LoggedSwitchOp { tuple: tuple(2), op: OpCode::CondSub, operand: 5, operand_from: Some(0) },
            ],
        });
        wal.append(LogRecord::SwitchResult {
            txn: txn(3),
            gid: GlobalTxnId(0),
            results: vec![(tuple(1), 3), (tuple(2), 95)],
        });
        wal.append(LogRecord::Commit { txn: txn(3) });
        wal.append(LogRecord::Abort { txn: txn(4) });
        wal
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let wal = Wal::new();
        let a = wal.append(LogRecord::Commit { txn: txn(1) });
        let b = wal.append(LogRecord::Abort { txn: txn(2) });
        assert_eq!((a, b), (0, 1));
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn append_group_is_contiguous_and_serialises_identically() {
        // The same records, appended singly and as a group, must produce the
        // same log — byte-identical once serialised.
        let singles = sample_wal();
        let grouped = Wal::new();
        let first = grouped.append_group(singles.records());
        assert_eq!(first, Some(0));
        assert_eq!(grouped.append_group(Vec::new()), None, "an empty batch has no LSN");
        assert_eq!(grouped.records(), singles.records());
        assert_eq!(grouped.serialize(), singles.serialize());
        // The next single append lands right after the group.
        let lsn = grouped.append(LogRecord::Commit { txn: txn(9) });
        assert_eq!(lsn, singles.len() as u64);
    }

    #[test]
    fn concurrent_append_groups_never_interleave() {
        let wal = std::sync::Arc::new(Wal::new());
        let threads: Vec<_> = (0..4u16)
            .map(|i| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for s in 0..100u32 {
                        let t = TxnId::compose(s, NodeId(0), WorkerId(i));
                        wal.append_group(vec![
                            LogRecord::SwitchIntent { txn: t, ops: vec![] },
                            LogRecord::Commit { txn: t },
                        ]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let records = wal.records();
        assert_eq!(records.len(), 800);
        // Every intent is immediately followed by its own commit: groups are
        // atomic with respect to each other.
        for pair in records.chunks(2) {
            assert!(matches!(pair[0], LogRecord::SwitchIntent { .. }));
            assert!(matches!(pair[1], LogRecord::Commit { .. }));
            assert_eq!(pair[0].txn(), pair[1].txn());
        }
    }

    #[test]
    fn records_snapshot_preserves_order() {
        let wal = Wal::new();
        wal.append(LogRecord::SwitchIntent {
            txn: txn(1),
            ops: vec![LoggedSwitchOp { tuple: tuple(1), op: OpCode::Add, operand: 2, operand_from: None }],
        });
        wal.append(LogRecord::SwitchResult { txn: txn(1), gid: GlobalTxnId(7), results: vec![(tuple(1), 3)] });
        wal.append(LogRecord::Commit { txn: txn(1) });
        let records = wal.records();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], LogRecord::SwitchIntent { .. }));
        assert!(matches!(records[2], LogRecord::Commit { .. }));
        assert_eq!(records[1].txn(), txn(1));
    }

    #[test]
    fn serialise_roundtrip_is_exact() {
        let wal = sample_wal();
        let data = wal.serialize();
        assert!(data.starts_with(WAL_HEADER));
        let restored = Wal::deserialize(&data).unwrap();
        assert_eq!(restored.records(), wal.records());
        // Round-tripping the restored log reproduces the byte-identical text.
        assert_eq!(restored.serialize(), data);
    }

    #[test]
    fn empty_roundtrip() {
        let wal = Wal::new();
        let restored = Wal::deserialize(&wal.serialize()).unwrap();
        assert!(restored.is_empty());
        assert!(Wal::deserialize("").unwrap().is_empty());
        assert!(Wal::deserialize("  \n\n").unwrap().is_empty());
    }

    /// A serialised log with one hand-written record body, checksummed the
    /// way `serialize` would, so tests can exercise body-level parsing.
    fn checksummed(body: &str) -> String {
        format!("p4dbwal 1\n{body} #{:016x}\n", fnv1a(body))
    }

    #[test]
    fn deserialize_rejects_garbage() {
        let err = Wal::deserialize("not a wal\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"), "{err}");
        let err = Wal::deserialize(&checksummed("xy 12")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown record tag"), "{err}");
        // A record line without a checksum token is refused outright.
        let err = Wal::deserialize("p4dbwal 1\nc 1\n").unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
        // Wrong version is refused rather than misparsed.
        assert!(Wal::deserialize("p4dbwal 99\nc 1\n").is_err());
    }

    #[test]
    fn torn_final_record_is_an_error_not_a_panic() {
        let wal = sample_wal();
        let data = wal.serialize();
        let last_line_start = data.trim_end().rfind('\n').unwrap() + 1;
        // A crash mid-flush leaves a prefix of the final line: every possible
        // tear point must yield an error, not a silently different record.
        for cut in last_line_start + 1..data.len() - 1 {
            if !data.is_char_boundary(cut) {
                continue;
            }
            let torn = &data[..cut];
            let err = Wal::deserialize(torn).unwrap_err();
            assert!(err.message.contains("checksum") || err.message.contains("truncated"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn torn_record_that_stays_well_formed_is_still_detected() {
        // "c 10" torn to "c 1" is a different, valid-looking record; the
        // checksum is what catches it.
        let wal = Wal::new();
        wal.append(LogRecord::Commit { txn: TxnId(10) });
        let body = "c 10";
        let crc = fnv1a(body);
        let torn = format!("p4dbwal 1\nc 1 #{crc:016x}\n");
        let err = Wal::deserialize(&torn).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn flipped_byte_in_body_is_detected() {
        let data = sample_wal().serialize();
        let corrupted = data.replacen("1,7,9", "1,7,8", 1);
        assert_ne!(corrupted, data);
        let err = Wal::deserialize(&corrupted).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn deserialize_prefix_recovers_intact_records() {
        let wal = sample_wal();
        let data = wal.serialize();
        // Tear the final line in half: the first four records survive and
        // the tear is reported as a note, not an error.
        let last_line_start = data.trim_end().rfind('\n').unwrap() + 1;
        let torn = &data[..last_line_start + 3];
        let (prefix, err) = Wal::deserialize_prefix(torn).unwrap();
        assert!(err.is_some());
        assert_eq!(prefix.records(), wal.records()[..4].to_vec());
        // A clean log recovers fully with no error.
        let (full, err) = Wal::deserialize_prefix(&data).unwrap();
        assert!(err.is_none());
        assert_eq!(full.records(), wal.records());
    }

    #[test]
    fn interior_corruption_is_a_hard_error_not_a_shorter_prefix() {
        let wal = sample_wal();
        let data = wal.serialize();
        // Corrupt the FIRST record's body: four intact records follow, so
        // truncating to the (empty) prefix would silently lose them. Both
        // entry points must refuse.
        let corrupted = data.replacen("1,7,9", "1,7,8", 1);
        assert_ne!(corrupted, data);
        let err = Wal::deserialize_prefix(&corrupted).unwrap_err();
        assert!(err.message.contains("interior corruption"), "{err}");
        assert!(Wal::deserialize(&corrupted).is_err());
        // Deleting a middle line entirely shifts the records but leaves each
        // remaining line's own checksum intact — the log still parses; what
        // the prefix contract rules out is a *failing* record followed by
        // intact ones, which the tests above and below pin down.
        // The same corruption on the FINAL record is a legitimate torn tail:
        // flip one hex digit of the final record's checksum.
        let last_line_start = data.trim_end().rfind('\n').unwrap() + 1;
        let (body, crc) = data[last_line_start..].trim_end().rsplit_once(" #").unwrap();
        let flipped = if crc.as_bytes()[0] == b'0' { '1' } else { '0' };
        let torn_tail = format!("{}{body} #{flipped}{}\n", &data[..last_line_start], &crc[1..]);
        let (prefix, note) = Wal::deserialize_prefix(&torn_tail).unwrap();
        assert!(note.is_some());
        assert_eq!(prefix.records(), wal.records()[..4].to_vec());
    }

    #[test]
    fn segment_rotation_seals_and_roundtrips() {
        let wal = Wal::with_segment_capacity(2);
        assert_eq!(wal.segment_capacity(), 2);
        for r in sample_wal().records() {
            wal.append(r);
        }
        // 5 records at capacity 2: two sealed segments + a 1-record tail.
        let blobs = wal.serialize_segments();
        assert_eq!(blobs.len(), 3);
        let views: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        let (restored, torn) = Wal::deserialize_segments(&views, 2).unwrap();
        assert!(torn.is_none());
        assert_eq!(restored.records(), wal.records());
        // Sealed blobs are cached: serialising twice returns the same Arcs.
        let again = wal.serialize_segments();
        assert!(Arc::ptr_eq(&blobs[0], &again[0]) && Arc::ptr_eq(&blobs[1], &again[1]));
        // An empty log has no segments.
        assert!(Wal::new().serialize_segments().is_empty());
        let (empty, torn) = Wal::deserialize_segments(&Vec::<Vec<u8>>::new(), 2).unwrap();
        assert!(empty.is_empty() && torn.is_none());
    }

    #[test]
    fn records_from_slices_the_tail() {
        let wal = sample_wal();
        assert_eq!(wal.records_from(0), wal.records());
        assert_eq!(wal.records_from(3), wal.records()[3..].to_vec());
        assert!(wal.records_from(99).is_empty());
    }

    #[test]
    fn corrupt_fields_are_rejected() {
        for bad in [
            "c notanumber",
            "cw 3 0x9 1 2",
            "cw 3 0:9 1,7,9 2,7,",
            "si 3 0:1:frobnicate:2:-",
            "sr 3 1 0:1",
            "c 1 extra",
        ] {
            assert!(Wal::deserialize(&checksummed(bad)).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn concurrent_appends_do_not_lose_records() {
        let wal = std::sync::Arc::new(Wal::new());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for s in 0..500 {
                        wal.append(LogRecord::Commit { txn: TxnId::compose(s, NodeId(0), WorkerId(i)) });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.len(), 2000);
    }
}
