//! The per-node write-ahead log.
//!
//! Durability of switch transactions is the responsibility of the database
//! nodes (§6.1): a node appends the *intent* (the operations it is about to
//! send to the switch) to its local log **before** sending the packet —
//! switch transactions count as committed at that point because they can no
//! longer abort — and appends the switch-assigned GID together with the
//! read/write results when the reply arrives. Cold writes are logged with
//! before/after images so that node recovery can redo committed and undo
//! uncommitted work.
//!
//! ## On-disk format
//!
//! The serialised log is a hand-rolled, versioned text encoding — one record
//! per line, first line a version header — because the build environment has
//! no crates.io access and therefore no `serde_json`:
//!
//! ```text
//! p4dbwal 1
//! cw <txn> <table>:<key> <before-fields,comma-separated> <after-fields> #<crc>
//! si <txn> <table>:<key>:<op>:<operand>:<operand_from|-> ... #<crc>
//! sr <txn> <gid> <table>:<key>:<result> ... #<crc>
//! c <txn> #<crc>
//! a <txn> #<crc>
//! ```
//!
//! Every numeric field is decimal. The trailing `#<crc>` token is an
//! FNV-1a-64 checksum (hex) of the record body: without it a torn final
//! record could decode as a *different but well-formed* record (e.g. `c 10`
//! torn to `c 1`), silently corrupting recovery. The encoding round-trips
//! exactly: `Wal::deserialize(&wal.serialize())` reproduces the record
//! vector verbatim. A truncated or corrupt line — e.g. a torn final record
//! after a crash mid-flush — yields a structured [`WalCodecError`], never a
//! panic; [`Wal::deserialize_prefix`] recovers the intact prefix.

use p4db_common::sync::unpoison;
use p4db_common::{GlobalTxnId, TupleId, TxnId, Value};
use p4db_switch::OpCode;
use std::fmt;
use std::sync::Mutex;

/// Version tag written as the first line of every serialised log.
const WAL_HEADER: &str = "p4dbwal 1";

/// FNV-1a 64-bit hash of a record body, the per-record checksum of the
/// serialised format. Not cryptographic — it only needs to make it
/// overwhelmingly unlikely that a torn or bit-flipped line still carries a
/// matching checksum.
fn fnv1a(body: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in body.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One operation of a switch (sub-)transaction as recorded in the log. The
/// tuple id (not the register slot) is logged so that recovery works even if
/// the hot set is re-offloaded to different registers after a switch failure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoggedSwitchOp {
    pub tuple: TupleId,
    pub op: OpCode,
    pub operand: u64,
    /// Operand forwarding source (read-dependent writes), same semantics as
    /// in the switch packet format.
    pub operand_from: Option<u8>,
}

/// A log record.
///
/// `ColdWrite` is much larger than the tag-only variants because it carries
/// two full before/after images inline; boxing them would put an allocation
/// on the append hot path for no benefit, since logs are stored in `Vec`s
/// whose slot size is paid either way.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A write to a cold tuple performed by `txn` (before/after images).
    ColdWrite { txn: TxnId, tuple: TupleId, before: Value, after: Value },
    /// The intent of a switch (sub-)transaction, written *before* the packet
    /// is sent out.
    SwitchIntent { txn: TxnId, ops: Vec<LoggedSwitchOp> },
    /// The switch's reply: its globally-ordered GID plus the value returned
    /// for every operation (the read/write-set used by recovery to restore
    /// ordering).
    SwitchResult { txn: TxnId, gid: GlobalTxnId, results: Vec<(TupleId, u64)> },
    /// The transaction's cold part committed.
    Commit { txn: TxnId },
    /// The transaction aborted (cold part rolled back; never emitted for
    /// switch sub-transactions, which cannot abort).
    Abort { txn: TxnId },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::ColdWrite { txn, .. }
            | LogRecord::SwitchIntent { txn, .. }
            | LogRecord::SwitchResult { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

/// A parse failure while reconstructing a log from its serialised form,
/// pointing at the offending (1-based) line. Torn trailing records — a crash
/// mid-flush — surface here as a regular error the caller can handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalCodecError {
    pub line: usize,
    pub message: String,
}

impl WalCodecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        WalCodecError { line, message: message.into() }
    }
}

impl fmt::Display for WalCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WAL parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WalCodecError {}

fn encode_tuple(out: &mut String, tuple: TupleId) {
    out.push_str(&format!("{}:{}", tuple.table.0, tuple.key));
}

fn encode_value(out: &mut String, value: &Value) {
    let mut first = true;
    for field in value.as_slice() {
        if !first {
            out.push(',');
        }
        out.push_str(&field.to_string());
        first = false;
    }
}

fn encode_record(out: &mut String, record: &LogRecord) {
    match record {
        LogRecord::ColdWrite { txn, tuple, before, after } => {
            out.push_str(&format!("cw {} ", txn.0));
            encode_tuple(out, *tuple);
            out.push(' ');
            encode_value(out, before);
            out.push(' ');
            encode_value(out, after);
        }
        LogRecord::SwitchIntent { txn, ops } => {
            out.push_str(&format!("si {}", txn.0));
            for op in ops {
                out.push(' ');
                encode_tuple(out, op.tuple);
                out.push_str(&format!(":{}:{}", op.op.name(), op.operand));
                match op.operand_from {
                    Some(src) => out.push_str(&format!(":{src}")),
                    None => out.push_str(":-"),
                }
            }
        }
        LogRecord::SwitchResult { txn, gid, results } => {
            out.push_str(&format!("sr {} {}", txn.0, gid.0));
            for (tuple, value) in results {
                out.push(' ');
                encode_tuple(out, *tuple);
                out.push_str(&format!(":{value}"));
            }
        }
        LogRecord::Commit { txn } => out.push_str(&format!("c {}", txn.0)),
        LogRecord::Abort { txn } => out.push_str(&format!("a {}", txn.0)),
    }
}

struct LineParser<'a> {
    line: usize,
    fields: std::str::SplitWhitespace<'a>,
}

impl<'a> LineParser<'a> {
    fn new(line: usize, text: &'a str) -> Self {
        LineParser { line, fields: text.split_whitespace() }
    }

    fn err(&self, message: impl Into<String>) -> WalCodecError {
        WalCodecError::new(self.line, message)
    }

    fn next(&mut self, what: &str) -> Result<&'a str, WalCodecError> {
        self.fields.next().ok_or_else(|| self.err(format!("truncated record: missing {what}")))
    }

    fn u64(&self, what: &str, text: &str) -> Result<u64, WalCodecError> {
        text.parse::<u64>().map_err(|_| self.err(format!("invalid {what} {text:?}")))
    }

    fn txn(&mut self) -> Result<TxnId, WalCodecError> {
        let raw = self.next("transaction id")?;
        Ok(TxnId(self.u64("transaction id", raw)?))
    }

    fn tuple(&self, text: &str) -> Result<TupleId, WalCodecError> {
        let (table, key) =
            text.split_once(':').ok_or_else(|| self.err(format!("invalid tuple {text:?} (expected table:key)")))?;
        let table = table.parse::<u16>().map_err(|_| self.err(format!("invalid table id {table:?}")))?;
        let key = self.u64("tuple key", key)?;
        Ok(TupleId::new(p4db_common::TableId(table), key))
    }

    fn value(&mut self, what: &str) -> Result<Value, WalCodecError> {
        let raw = self.next(what)?;
        let mut fields = Vec::new();
        for part in raw.split(',') {
            fields.push(self.u64(what, part)?);
        }
        if fields.is_empty() || fields.len() > p4db_common::value::MAX_FIELDS {
            return Err(self.err(format!("invalid {what} width {}", fields.len())));
        }
        Ok(Value::from_fields(&fields))
    }

    fn finish(mut self) -> Result<(), WalCodecError> {
        match self.fields.next() {
            Some(extra) => Err(self.err(format!("trailing garbage {extra:?}"))),
            None => Ok(()),
        }
    }
}

/// Splits off and verifies the trailing ` #<crc>` token, then decodes the
/// record body. The checksum check comes first so that a torn line which
/// happens to be a well-formed shorter record is still rejected.
fn decode_checksummed_record(line_no: usize, text: &str) -> Result<LogRecord, WalCodecError> {
    let (body, crc_text) =
        text.rsplit_once(" #").ok_or_else(|| WalCodecError::new(line_no, "truncated record: missing checksum"))?;
    let crc = u64::from_str_radix(crc_text.trim(), 16)
        .map_err(|_| WalCodecError::new(line_no, format!("invalid checksum {crc_text:?}")))?;
    let actual = fnv1a(body);
    if crc != actual {
        return Err(WalCodecError::new(
            line_no,
            format!("checksum mismatch (stored {crc:016x}, computed {actual:016x}) — torn or corrupt record"),
        ));
    }
    decode_record(line_no, body)
}

fn decode_record(line_no: usize, text: &str) -> Result<LogRecord, WalCodecError> {
    let mut p = LineParser::new(line_no, text);
    let tag = p.next("record tag")?;
    let record = match tag {
        "cw" => {
            let txn = p.txn()?;
            let tuple_raw = p.next("tuple")?;
            let tuple = p.tuple(tuple_raw)?;
            let before = p.value("before image")?;
            let after = p.value("after image")?;
            LogRecord::ColdWrite { txn, tuple, before, after }
        }
        "si" => {
            let txn = p.txn()?;
            let mut ops = Vec::new();
            while let Some(raw) = p.fields.next() {
                let parts: Vec<&str> = raw.split(':').collect();
                if parts.len() != 5 {
                    return Err(p.err(format!("invalid switch op {raw:?} (expected table:key:op:operand:from)")));
                }
                let tuple = p.tuple(&format!("{}:{}", parts[0], parts[1]))?;
                let op = OpCode::from_name(parts[2]).ok_or_else(|| p.err(format!("unknown opcode {:?}", parts[2])))?;
                let operand = p.u64("operand", parts[3])?;
                let operand_from = match parts[4] {
                    "-" => None,
                    src => Some(src.parse::<u8>().map_err(|_| p.err(format!("invalid operand source {src:?}")))?),
                };
                ops.push(LoggedSwitchOp { tuple, op, operand, operand_from });
            }
            return Ok(LogRecord::SwitchIntent { txn, ops });
        }
        "sr" => {
            let txn = p.txn()?;
            let gid_raw = p.next("gid")?;
            let gid = GlobalTxnId(p.u64("gid", gid_raw)?);
            let mut results = Vec::new();
            while let Some(raw) = p.fields.next() {
                let (tuple_raw, value_raw) = raw
                    .rsplit_once(':')
                    .ok_or_else(|| p.err(format!("invalid result {raw:?} (expected table:key:value)")))?;
                let tuple = p.tuple(tuple_raw)?;
                let value = p.u64("result value", value_raw)?;
                results.push((tuple, value));
            }
            return Ok(LogRecord::SwitchResult { txn, gid, results });
        }
        "c" => LogRecord::Commit { txn: p.txn()? },
        "a" => LogRecord::Abort { txn: p.txn()? },
        other => return Err(p.err(format!("unknown record tag {other:?}"))),
    };
    p.finish()?;
    Ok(record)
}

/// The per-node write-ahead log. Appends are serialised by a mutex; in the
/// real system this is the log buffer + group commit path, whose cost the
/// paper argues is negligible next to network latency (§A.3).
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
}

impl Wal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record and returns its log sequence number.
    pub fn append(&self, record: LogRecord) -> u64 {
        let mut records = unpoison(self.records.lock());
        records.push(record);
        (records.len() - 1) as u64
    }

    /// Group commit: appends a whole batch of records under **one** lock
    /// acquisition — the stand-in for staging records in a worker-local
    /// buffer and encoding + fsyncing them as a single log write. The batch
    /// is appended contiguously and in order (no other appender's record can
    /// interleave inside it), and the serialised form is identical to the
    /// same records appended one by one, so the torn-record-safe encoding
    /// and [`Wal::deserialize_prefix`] recovery are unaffected. Returns the
    /// LSN of the batch's first record (the current log length for an empty
    /// batch).
    pub fn append_group(&self, batch: impl IntoIterator<Item = LogRecord>) -> u64 {
        let mut records = unpoison(self.records.lock());
        let first = records.len() as u64;
        records.extend(batch);
        first
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        unpoison(self.records.lock()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the whole log (recovery input).
    pub fn records(&self) -> Vec<LogRecord> {
        unpoison(self.records.lock()).clone()
    }

    /// Serialises the log to the versioned text format (header line plus one
    /// record per line), the stand-in for forcing the log to stable storage.
    pub fn serialize(&self) -> String {
        let records = unpoison(self.records.lock());
        let mut out = String::with_capacity(16 + records.len() * 48);
        out.push_str(WAL_HEADER);
        out.push('\n');
        let mut body = String::new();
        for r in records.iter() {
            body.clear();
            encode_record(&mut body, r);
            out.push_str(&body);
            out.push_str(&format!(" #{:016x}\n", fnv1a(&body)));
        }
        out
    }

    /// Reconstructs a log from its serialised form. Empty input yields an
    /// empty log; anything else must start with the version header. A
    /// truncated or corrupt line — including a torn final record, which the
    /// per-record checksum catches even when the tear leaves a well-formed
    /// shorter record behind — yields a [`WalCodecError`] rather than
    /// panicking. Use [`Wal::deserialize_prefix`] when recovery should fall
    /// back to the prefix of the log that did reach stable storage.
    pub fn deserialize(data: &str) -> Result<Self, WalCodecError> {
        let (wal, error) = Self::deserialize_prefix(data);
        match error {
            Some(err) => Err(err),
            None => Ok(wal),
        }
    }

    /// Like [`Wal::deserialize`], but keeps every record that parsed cleanly
    /// *before* the first corrupt line: after a crash mid-flush, the intact
    /// prefix is exactly the portion of the log that reached stable storage,
    /// and recovery proceeds from it. Returns the prefix together with the
    /// error that terminated parsing, if any.
    pub fn deserialize_prefix(data: &str) -> (Self, Option<WalCodecError>) {
        let mut records = Vec::new();
        let mut seen_header = false;
        let mut error = None;
        for (idx, line) in data.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            if !seen_header {
                if line.trim() != WAL_HEADER {
                    error = Some(WalCodecError::new(
                        line_no,
                        format!("missing or unsupported header (expected {WAL_HEADER:?}, got {line:?})"),
                    ));
                    break;
                }
                seen_header = true;
                continue;
            }
            match decode_checksummed_record(line_no, line) {
                Ok(record) => records.push(record),
                Err(err) => {
                    error = Some(err);
                    break;
                }
            }
        }
        (Wal { records: Mutex::new(records) }, error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, TableId, WorkerId};

    fn txn(seq: u32) -> TxnId {
        TxnId::compose(seq, NodeId(0), WorkerId(0))
    }

    fn tuple(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn sample_wal() -> Wal {
        let wal = Wal::new();
        wal.append(LogRecord::ColdWrite {
            txn: txn(3),
            tuple: tuple(9),
            before: Value::from_fields(&[1, 7, 9]),
            after: Value::from_fields(&[2, 7, 9]),
        });
        wal.append(LogRecord::SwitchIntent {
            txn: txn(3),
            ops: vec![
                LoggedSwitchOp { tuple: tuple(1), op: OpCode::Add, operand: 2, operand_from: None },
                LoggedSwitchOp { tuple: tuple(2), op: OpCode::CondSub, operand: 5, operand_from: Some(0) },
            ],
        });
        wal.append(LogRecord::SwitchResult {
            txn: txn(3),
            gid: GlobalTxnId(0),
            results: vec![(tuple(1), 3), (tuple(2), 95)],
        });
        wal.append(LogRecord::Commit { txn: txn(3) });
        wal.append(LogRecord::Abort { txn: txn(4) });
        wal
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let wal = Wal::new();
        let a = wal.append(LogRecord::Commit { txn: txn(1) });
        let b = wal.append(LogRecord::Abort { txn: txn(2) });
        assert_eq!((a, b), (0, 1));
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn append_group_is_contiguous_and_serialises_identically() {
        // The same records, appended singly and as a group, must produce the
        // same log — byte-identical once serialised.
        let singles = sample_wal();
        let grouped = Wal::new();
        let first = grouped.append_group(singles.records());
        assert_eq!(first, 0);
        assert_eq!(grouped.append_group(Vec::new()), singles.len() as u64, "empty group returns the next LSN");
        assert_eq!(grouped.records(), singles.records());
        assert_eq!(grouped.serialize(), singles.serialize());
        // The next single append lands right after the group.
        let lsn = grouped.append(LogRecord::Commit { txn: txn(9) });
        assert_eq!(lsn, singles.len() as u64);
    }

    #[test]
    fn concurrent_append_groups_never_interleave() {
        let wal = std::sync::Arc::new(Wal::new());
        let threads: Vec<_> = (0..4u16)
            .map(|i| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for s in 0..100u32 {
                        let t = TxnId::compose(s, NodeId(0), WorkerId(i));
                        wal.append_group(vec![
                            LogRecord::SwitchIntent { txn: t, ops: vec![] },
                            LogRecord::Commit { txn: t },
                        ]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let records = wal.records();
        assert_eq!(records.len(), 800);
        // Every intent is immediately followed by its own commit: groups are
        // atomic with respect to each other.
        for pair in records.chunks(2) {
            assert!(matches!(pair[0], LogRecord::SwitchIntent { .. }));
            assert!(matches!(pair[1], LogRecord::Commit { .. }));
            assert_eq!(pair[0].txn(), pair[1].txn());
        }
    }

    #[test]
    fn records_snapshot_preserves_order() {
        let wal = Wal::new();
        wal.append(LogRecord::SwitchIntent {
            txn: txn(1),
            ops: vec![LoggedSwitchOp { tuple: tuple(1), op: OpCode::Add, operand: 2, operand_from: None }],
        });
        wal.append(LogRecord::SwitchResult { txn: txn(1), gid: GlobalTxnId(7), results: vec![(tuple(1), 3)] });
        wal.append(LogRecord::Commit { txn: txn(1) });
        let records = wal.records();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], LogRecord::SwitchIntent { .. }));
        assert!(matches!(records[2], LogRecord::Commit { .. }));
        assert_eq!(records[1].txn(), txn(1));
    }

    #[test]
    fn serialise_roundtrip_is_exact() {
        let wal = sample_wal();
        let data = wal.serialize();
        assert!(data.starts_with(WAL_HEADER));
        let restored = Wal::deserialize(&data).unwrap();
        assert_eq!(restored.records(), wal.records());
        // Round-tripping the restored log reproduces the byte-identical text.
        assert_eq!(restored.serialize(), data);
    }

    #[test]
    fn empty_roundtrip() {
        let wal = Wal::new();
        let restored = Wal::deserialize(&wal.serialize()).unwrap();
        assert!(restored.is_empty());
        assert!(Wal::deserialize("").unwrap().is_empty());
        assert!(Wal::deserialize("  \n\n").unwrap().is_empty());
    }

    /// A serialised log with one hand-written record body, checksummed the
    /// way `serialize` would, so tests can exercise body-level parsing.
    fn checksummed(body: &str) -> String {
        format!("p4dbwal 1\n{body} #{:016x}\n", fnv1a(body))
    }

    #[test]
    fn deserialize_rejects_garbage() {
        let err = Wal::deserialize("not a wal\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"), "{err}");
        let err = Wal::deserialize(&checksummed("xy 12")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown record tag"), "{err}");
        // A record line without a checksum token is refused outright.
        let err = Wal::deserialize("p4dbwal 1\nc 1\n").unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
        // Wrong version is refused rather than misparsed.
        assert!(Wal::deserialize("p4dbwal 99\nc 1\n").is_err());
    }

    #[test]
    fn torn_final_record_is_an_error_not_a_panic() {
        let wal = sample_wal();
        let data = wal.serialize();
        let last_line_start = data.trim_end().rfind('\n').unwrap() + 1;
        // A crash mid-flush leaves a prefix of the final line: every possible
        // tear point must yield an error, not a silently different record.
        for cut in last_line_start + 1..data.len() - 1 {
            if !data.is_char_boundary(cut) {
                continue;
            }
            let torn = &data[..cut];
            let err = Wal::deserialize(torn).unwrap_err();
            assert!(err.message.contains("checksum") || err.message.contains("truncated"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn torn_record_that_stays_well_formed_is_still_detected() {
        // "c 10" torn to "c 1" is a different, valid-looking record; the
        // checksum is what catches it.
        let wal = Wal::new();
        wal.append(LogRecord::Commit { txn: TxnId(10) });
        let body = "c 10";
        let crc = fnv1a(body);
        let torn = format!("p4dbwal 1\nc 1 #{crc:016x}\n");
        let err = Wal::deserialize(&torn).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn flipped_byte_in_body_is_detected() {
        let data = sample_wal().serialize();
        let corrupted = data.replacen("1,7,9", "1,7,8", 1);
        assert_ne!(corrupted, data);
        let err = Wal::deserialize(&corrupted).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn deserialize_prefix_recovers_intact_records() {
        let wal = sample_wal();
        let data = wal.serialize();
        // Tear the final line in half: the first four records survive.
        let last_line_start = data.trim_end().rfind('\n').unwrap() + 1;
        let torn = &data[..last_line_start + 3];
        let (prefix, err) = Wal::deserialize_prefix(torn);
        assert!(err.is_some());
        assert_eq!(prefix.records(), wal.records()[..4].to_vec());
        // A clean log recovers fully with no error.
        let (full, err) = Wal::deserialize_prefix(&data);
        assert!(err.is_none());
        assert_eq!(full.records(), wal.records());
    }

    #[test]
    fn corrupt_fields_are_rejected() {
        for bad in [
            "c notanumber",
            "cw 3 0x9 1 2",
            "cw 3 0:9 1,7,9 2,7,",
            "si 3 0:1:frobnicate:2:-",
            "sr 3 1 0:1",
            "c 1 extra",
        ] {
            assert!(Wal::deserialize(&checksummed(bad)).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn concurrent_appends_do_not_lose_records() {
        let wal = std::sync::Arc::new(Wal::new());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for s in 0..500 {
                        wal.append(LogRecord::Commit { txn: TxnId::compose(s, NodeId(0), WorkerId(i)) });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.len(), 2000);
    }
}
