//! The per-node write-ahead log.
//!
//! Durability of switch transactions is the responsibility of the database
//! nodes (§6.1): a node appends the *intent* (the operations it is about to
//! send to the switch) to its local log **before** sending the packet —
//! switch transactions count as committed at that point because they can no
//! longer abort — and appends the switch-assigned GID together with the
//! read/write results when the reply arrives. Cold writes are logged with
//! before/after images so that node recovery can redo committed and undo
//! uncommitted work.

use p4db_common::{GlobalTxnId, TupleId, TxnId, Value};
use p4db_switch::OpCode;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One operation of a switch (sub-)transaction as recorded in the log. The
/// tuple id (not the register slot) is logged so that recovery works even if
/// the hot set is re-offloaded to different registers after a switch failure.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedSwitchOp {
    pub tuple: TupleId,
    pub op: OpCode,
    pub operand: u64,
    /// Operand forwarding source (read-dependent writes), same semantics as
    /// in the switch packet format.
    pub operand_from: Option<u8>,
}

/// A log record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A write to a cold tuple performed by `txn` (before/after images).
    ColdWrite { txn: TxnId, tuple: TupleId, before: Value, after: Value },
    /// The intent of a switch (sub-)transaction, written *before* the packet
    /// is sent out.
    SwitchIntent { txn: TxnId, ops: Vec<LoggedSwitchOp> },
    /// The switch's reply: its globally-ordered GID plus the value returned
    /// for every operation (the read/write-set used by recovery to restore
    /// ordering).
    SwitchResult { txn: TxnId, gid: GlobalTxnId, results: Vec<(TupleId, u64)> },
    /// The transaction's cold part committed.
    Commit { txn: TxnId },
    /// The transaction aborted (cold part rolled back; never emitted for
    /// switch sub-transactions, which cannot abort).
    Abort { txn: TxnId },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::ColdWrite { txn, .. }
            | LogRecord::SwitchIntent { txn, .. }
            | LogRecord::SwitchResult { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

/// The per-node write-ahead log. Appends are serialised by a mutex; in the
/// real system this is the log buffer + group commit path, whose cost the
/// paper argues is negligible next to network latency (§A.3).
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
}

impl Wal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record and returns its log sequence number.
    pub fn append(&self, record: LogRecord) -> u64 {
        let mut records = self.records.lock();
        records.push(record);
        (records.len() - 1) as u64
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the whole log (recovery input).
    pub fn records(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Serialises the log to a JSON-lines string (one record per line), the
    /// stand-in for forcing the log to stable storage.
    pub fn serialize(&self) -> String {
        let records = self.records.lock();
        let mut out = String::new();
        for r in records.iter() {
            out.push_str(&serde_json::to_string(r).expect("log records are serialisable"));
            out.push('\n');
        }
        out
    }

    /// Reconstructs a log from its serialised form.
    pub fn deserialize(data: &str) -> Result<Self, serde_json::Error> {
        let mut records = Vec::new();
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            records.push(serde_json::from_str(line)?);
        }
        Ok(Wal { records: Mutex::new(records) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, TableId, WorkerId};

    fn txn(seq: u32) -> TxnId {
        TxnId::compose(seq, NodeId(0), WorkerId(0))
    }

    fn tuple(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let wal = Wal::new();
        let a = wal.append(LogRecord::Commit { txn: txn(1) });
        let b = wal.append(LogRecord::Abort { txn: txn(2) });
        assert_eq!((a, b), (0, 1));
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn records_snapshot_preserves_order() {
        let wal = Wal::new();
        wal.append(LogRecord::SwitchIntent {
            txn: txn(1),
            ops: vec![LoggedSwitchOp { tuple: tuple(1), op: OpCode::Add, operand: 2, operand_from: None }],
        });
        wal.append(LogRecord::SwitchResult { txn: txn(1), gid: GlobalTxnId(7), results: vec![(tuple(1), 3)] });
        wal.append(LogRecord::Commit { txn: txn(1) });
        let records = wal.records();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], LogRecord::SwitchIntent { .. }));
        assert!(matches!(records[2], LogRecord::Commit { .. }));
        assert_eq!(records[1].txn(), txn(1));
    }

    #[test]
    fn serialise_roundtrip() {
        let wal = Wal::new();
        wal.append(LogRecord::ColdWrite {
            txn: txn(3),
            tuple: tuple(9),
            before: Value::scalar(1),
            after: Value::scalar(2),
        });
        wal.append(LogRecord::SwitchResult { txn: txn(3), gid: GlobalTxnId(0), results: vec![(tuple(9), 2)] });
        let data = wal.serialize();
        let restored = Wal::deserialize(&data).unwrap();
        assert_eq!(restored.records(), wal.records());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(Wal::deserialize("not json\n").is_err());
        assert!(Wal::deserialize("").unwrap().is_empty());
    }

    #[test]
    fn concurrent_appends_do_not_lose_records() {
        let wal = std::sync::Arc::new(Wal::new());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for s in 0..500 {
                        wal.append(LogRecord::Commit { txn: TxnId::compose(s, NodeId(0), WorkerId(i)) });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.len(), 2000);
    }
}
