//! The row-granularity 2PL lock manager of the host DBMS.
//!
//! Two deadlock-prevention variants are implemented, matching §7.1:
//!
//! * **NO_WAIT** — a transaction aborts as soon as a conflicting lock request
//!   is denied.
//! * **WAIT_DIE** — on conflict, the requester waits if it is *older* than
//!   every current owner (its timestamp is smaller), otherwise it aborts
//!   ("dies"). Waiting is deadlock-free because waits only ever go from older
//!   to younger transactions.
//!
//! The table is sharded by tuple hash so that unrelated lock requests never
//! contend on the same mutex; contention on the *same* tuple (the hot set) is
//! exactly the effect the paper measures. The shard hash is
//! [`TupleId::mix`] — the same value the sharded row store uses — so the
//! admission path of the transaction engine computes it once per tuple and
//! feeds both structures ([`LockTable::acquire_prehashed`]).
//!
//! Two map flavors exist behind one API: the default fast word-mixer maps,
//! and a *seed* flavor ([`LockTable::seed_flavor`]) with the std SipHash
//! maps the pre-sharding engine used — the baseline arm of the node-scaling
//! benchmark pays the seed's per-probe cost, not the new one.
//!
//! Waiting (WAIT_DIE only) uses bounded exponential backoff: short spin
//! bursts that double up to a cap, then `yield_now`, so an older waiter
//! neither hammers the shard mutex nor burns a full core while a lock-hold
//! of microseconds drains. Cumulative wait time is recorded per node
//! ([`LockTable::wait_stats`]) for the perf pipeline.

use p4db_common::hash::FastBuildHasher;
use p4db_common::sync::unpoison;
use p4db_common::{CcScheme, Error, Result, TupleId, TxnId};
use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::hint;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const SHARDS: usize = 64;

/// Spin-burst cap of the WAIT_DIE backoff: bursts double from 1 iteration up
/// to this, after which every retry also yields the core.
const MAX_SPIN_BURST: u32 = 1 << 10;

/// Lock mode of a request / grant.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug)]
struct LockEntry {
    mode: LockMode,
    owners: Vec<TxnId>,
}

/// Cumulative waiting behaviour of one node's lock table.
///
/// **Accounting contract** (pinned by `wait_accounting_counts_once_per_
/// contended_acquisition`): one *acquisition* is one `acquire` /
/// `acquire_prehashed` call, and it targets exactly **one** tuple in exactly
/// **one** shard (`mix(tuple) & (SHARDS-1)`) — a multi-tuple footprint is
/// multiple acquisitions, each with its own wait clock. Per acquisition the
/// clock starts lazily at the acquisition's *first* conflict and stops when
/// the acquisition resolves (grant, WAIT_DIE death after a wait, or
/// timeout); the result is folded into the totals exactly once, however many
/// backoff rounds the wait spanned. `waits` therefore counts *contended
/// acquisitions*, not backoff rounds, and `total_wait_ns` is the sum of
/// full first-conflict-to-resolution spans. Acquisitions granted on first
/// probe never read the clock and contribute to neither field.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LockWaitStats {
    /// Acquisitions that had to wait at least one backoff round.
    pub waits: u64,
    /// Total time spent waiting across all of them (ns).
    pub total_wait_ns: u64,
}

impl LockWaitStats {
    pub fn total_wait(&self) -> Duration {
        Duration::from_nanos(self.total_wait_ns)
    }
}

type Shard<S> = Mutex<HashMap<TupleId, LockEntry, S>>;

/// The two map flavors: fast word-mixer probes (default) or the seed's
/// SipHash probes (the single-latch baseline's lock table).
#[derive(Debug)]
enum ShardSet {
    Fast(Box<[Shard<FastBuildHasher>]>),
    Seed(Box<[Shard<RandomState>]>),
}

/// The per-node lock table.
#[derive(Debug)]
pub struct LockTable {
    shards: ShardSet,
    /// Upper bound on how long WAIT_DIE waits before giving up; prevents a
    /// simulation bug (an owner that never releases) from hanging a worker
    /// forever. Generously larger than any realistic lock hold time.
    wait_timeout: Duration,
    /// Cumulative WAIT_DIE waiting, for the node-stats surface.
    waits: AtomicU64,
    waited_ns: AtomicU64,
    /// Total `acquire`/`acquire_prehashed` calls, contended or not. The
    /// snapshot read path's "zero lock-table interaction" claim is asserted
    /// against this counter (it is deliberately *not* part of
    /// [`LockWaitStats`], which only describes waiting).
    acquisitions: AtomicU64,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

fn shards<S: BuildHasher + Default>() -> Box<[Shard<S>]> {
    (0..SHARDS).map(|_| Mutex::new(HashMap::with_hasher(S::default()))).collect()
}

impl LockTable {
    pub fn new() -> Self {
        LockTable {
            shards: ShardSet::Fast(shards()),
            wait_timeout: Duration::from_millis(100),
            waits: AtomicU64::new(0),
            waited_ns: AtomicU64::new(0),
            acquisitions: AtomicU64::new(0),
        }
    }

    /// The seed's lock table: identical sharding and protocol, std SipHash
    /// map probes. Used by the single-latch baseline configuration so the
    /// node-scaling comparison measures the engine the seed actually had.
    pub fn seed_flavor() -> Self {
        LockTable { shards: ShardSet::Seed(shards()), ..Self::new() }
    }

    /// Overrides the WAIT_DIE waiting timeout (tests use a small value).
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    /// Total number of lock acquisitions attempted since construction
    /// (each `acquire`/`acquire_prehashed` call counts once, whatever its
    /// outcome). Read-only snapshot transactions must leave this unchanged.
    pub fn acquisition_count(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Cumulative waiting behaviour since construction. See
    /// [`LockWaitStats`] for the precise accounting contract.
    pub fn wait_stats(&self) -> LockWaitStats {
        LockWaitStats {
            waits: self.waits.load(Ordering::Relaxed),
            total_wait_ns: self.waited_ns.load(Ordering::Relaxed),
        }
    }

    /// Attempts to acquire `tuple` in `mode` for `txn` under the given
    /// concurrency-control scheme. Re-acquisition by the same transaction is
    /// idempotent (upgrades from shared to exclusive are treated as a
    /// conflict with other shared owners, as in standard 2PL).
    pub fn acquire(&self, txn: TxnId, tuple: TupleId, mode: LockMode, scheme: CcScheme) -> Result<()> {
        self.acquire_prehashed(tuple.mix(), txn, tuple, mode, scheme)
    }

    /// [`LockTable::acquire`] with the tuple's [`TupleId::mix`] hash already
    /// computed — the admission path hashes each tuple once and reuses the
    /// value for the lock shard and the row-store shard.
    pub fn acquire_prehashed(
        &self,
        hash: u64,
        txn: TxnId,
        tuple: TupleId,
        mode: LockMode,
        scheme: CcScheme,
    ) -> Result<()> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        match &self.shards {
            ShardSet::Fast(shards) => self.acquire_in(shards, hash, txn, tuple, mode, scheme),
            ShardSet::Seed(shards) => self.acquire_in(shards, hash, txn, tuple, mode, scheme),
        }
    }

    fn acquire_in<S: BuildHasher>(
        &self,
        shards: &[Shard<S>],
        hash: u64,
        txn: TxnId,
        tuple: TupleId,
        mode: LockMode,
        scheme: CcScheme,
    ) -> Result<()> {
        // The deadline (and its `Instant::now()` call) is only materialised
        // once a conflict forces a wait; the granted-first-try fast path
        // never reads the clock. One acquisition probes exactly one shard
        // (the tuple's), so this single clock covers the acquisition's whole
        // first-conflict-to-resolution span — every return path below runs
        // through `note_wait`, which folds it into the totals exactly once
        // (see the `LockWaitStats` contract).
        let mut wait_started: Option<Instant> = None;
        let mut spins: u32 = 1;
        loop {
            {
                let mut shard = unpoison(shards[(hash as usize) & (SHARDS - 1)].lock());
                match shard.get_mut(&tuple) {
                    None => {
                        shard.insert(tuple, LockEntry { mode, owners: vec![txn] });
                        self.note_wait(wait_started);
                        return Ok(());
                    }
                    Some(entry) => {
                        if entry.owners.contains(&txn) {
                            if entry.mode == LockMode::Exclusive || mode == LockMode::Shared {
                                // Already held in a sufficient mode.
                                self.note_wait(wait_started);
                                return Ok(());
                            }
                            if entry.owners.len() == 1 {
                                // Sole shared owner upgrading to exclusive.
                                entry.mode = LockMode::Exclusive;
                                self.note_wait(wait_started);
                                return Ok(());
                            }
                        } else if entry.mode == LockMode::Shared && mode == LockMode::Shared {
                            entry.owners.push(txn);
                            self.note_wait(wait_started);
                            return Ok(());
                        }
                        // Conflict.
                        match scheme {
                            CcScheme::NoWait => return Err(Error::lock_conflict(tuple)),
                            CcScheme::WaitDie => {
                                // Wait only if older than *every* owner,
                                // otherwise die.
                                let oldest_owner =
                                    entry.owners.iter().copied().filter(|o| *o != txn).min().unwrap_or(txn);
                                if !txn.is_older_than(oldest_owner) {
                                    drop(shard);
                                    self.note_wait(wait_started);
                                    return Err(Error::wait_die(tuple, oldest_owner));
                                }
                                // Older than every owner: fall through to wait.
                            }
                        }
                    }
                }
            }
            let started = *wait_started.get_or_insert_with(Instant::now);
            if started.elapsed() >= self.wait_timeout {
                self.note_wait(wait_started);
                return Err(Error::lock_conflict(tuple));
            }
            // Bounded exponential backoff outside the shard mutex: bursts of
            // busy-spins that double up to a cap — owners release within
            // microseconds in this system, so early retries should be nearly
            // instant — then yield the core on every retry so a descheduled
            // owner can actually run.
            for _ in 0..spins {
                hint::spin_loop();
            }
            if spins < MAX_SPIN_BURST {
                spins <<= 1;
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Folds a completed wait (if any) into the cumulative node stats.
    #[inline]
    fn note_wait(&self, wait_started: Option<Instant>) {
        if let Some(started) = wait_started {
            self.waits.fetch_add(1, Ordering::Relaxed);
            self.waited_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Releases `tuple` for `txn`. Releasing a lock that is not held is a
    /// no-op, which keeps abort paths simple (a transaction may abort halfway
    /// through its acquisition loop).
    pub fn release(&self, txn: TxnId, tuple: TupleId) {
        let hash = tuple.mix();
        match &self.shards {
            ShardSet::Fast(shards) => {
                release_in(&mut *unpoison(shards[(hash as usize) & (SHARDS - 1)].lock()), txn, tuple)
            }
            ShardSet::Seed(shards) => {
                release_in(&mut *unpoison(shards[(hash as usize) & (SHARDS - 1)].lock()), txn, tuple)
            }
        }
    }

    /// Releases a whole footprint in per-shard groups: consecutive locks in
    /// the same shard (as recorded at admission, with their precomputed
    /// [`TupleId::mix`] hashes) share one mutex acquisition — the shard
    /// guard is handed from element to element and only swapped when the
    /// shard changes. Contended footprints, whose tuples cluster in few
    /// shards, pay far fewer mutex round trips than a per-tuple release;
    /// spread footprints degrade to exactly one acquisition per tuple.
    pub fn release_batch(&self, txn: TxnId, locks: &[(u64, TupleId)]) {
        match &self.shards {
            ShardSet::Fast(shards) => release_batch_in(shards, txn, locks),
            ShardSet::Seed(shards) => release_batch_in(shards, txn, locks),
        }
    }

    /// Releases every lock in `tuples` for `txn` (commit / abort path of
    /// callers that did not keep admission hashes around).
    pub fn release_all(&self, txn: TxnId, tuples: &[TupleId]) {
        for &tuple in tuples {
            self.release(txn, tuple);
        }
    }

    /// Whether any transaction currently holds a lock on `tuple` (test /
    /// stats helper).
    pub fn is_locked(&self, tuple: TupleId) -> bool {
        let hash = tuple.mix();
        match &self.shards {
            ShardSet::Fast(shards) => unpoison(shards[(hash as usize) & (SHARDS - 1)].lock()).contains_key(&tuple),
            ShardSet::Seed(shards) => unpoison(shards[(hash as usize) & (SHARDS - 1)].lock()).contains_key(&tuple),
        }
    }

    /// Number of currently locked tuples (test / stats helper).
    pub fn locked_count(&self) -> usize {
        match &self.shards {
            ShardSet::Fast(shards) => shards.iter().map(|s| unpoison(s.lock()).len()).sum(),
            ShardSet::Seed(shards) => shards.iter().map(|s| unpoison(s.lock()).len()).sum(),
        }
    }
}

/// Removes `txn` from the entry of `tuple` inside an already-locked shard.
fn release_in<S: BuildHasher>(shard: &mut HashMap<TupleId, LockEntry, S>, txn: TxnId, tuple: TupleId) {
    if let Some(entry) = shard.get_mut(&tuple) {
        let before = entry.owners.len();
        entry.owners.retain(|o| *o != txn);
        if entry.owners.is_empty() {
            shard.remove(&tuple);
        } else if entry.owners.len() != before && entry.mode == LockMode::Exclusive {
            // An exclusive lock has exactly one owner; if owners remain
            // after actually removing `txn`, the entry was shared all
            // along. The `len` guard matters: a *spurious* release (e.g. a
            // duplicate footprint entry whose lock another transaction
            // since re-acquired) must not downgrade that holder's
            // exclusive lock to shared.
            entry.mode = LockMode::Shared;
        }
    }
}

/// Grouped release: one shard mutex acquisition per consecutive same-shard
/// run. At most one shard is locked at any moment — holding a shard while
/// acquiring the next would deadlock two transactions releasing their
/// footprints in opposite shard orders.
fn release_batch_in<S: BuildHasher>(shards: &[Shard<S>], txn: TxnId, locks: &[(u64, TupleId)]) {
    let mut at = 0;
    while at < locks.len() {
        let index = (locks[at].0 as usize) & (SHARDS - 1);
        let mut guard = unpoison(shards[index].lock());
        while at < locks.len() && (locks[at].0 as usize) & (SHARDS - 1) == index {
            release_in(&mut guard, txn, locks[at].1);
            at += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, TableId, WorkerId};
    use std::sync::Arc;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn txn(seq: u32) -> TxnId {
        TxnId::compose(seq, NodeId(0), WorkerId(0))
    }

    #[test]
    fn exclusive_conflicts_under_no_wait() {
        for lt in [LockTable::new(), LockTable::seed_flavor()] {
            assert!(lt.acquire(txn(1), t(5), LockMode::Exclusive, CcScheme::NoWait).is_ok());
            let err = lt.acquire(txn(2), t(5), LockMode::Exclusive, CcScheme::NoWait).unwrap_err();
            assert!(err.is_abort());
            lt.release(txn(1), t(5));
            assert!(lt.acquire(txn(2), t(5), LockMode::Exclusive, CcScheme::NoWait).is_ok());
        }
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lt = LockTable::new();
        assert!(lt.acquire(txn(1), t(5), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(2), t(5), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(3), t(5), LockMode::Exclusive, CcScheme::NoWait).is_err());
        lt.release(txn(1), t(5));
        lt.release(txn(2), t(5));
        assert!(lt.acquire(txn(3), t(5), LockMode::Exclusive, CcScheme::NoWait).is_ok());
    }

    #[test]
    fn reacquisition_is_idempotent_and_upgrade_works_when_sole_owner() {
        let lt = LockTable::new();
        assert!(lt.acquire(txn(1), t(9), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(1), t(9), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(1), t(9), LockMode::Exclusive, CcScheme::NoWait).is_ok());
        // Now exclusive: another shared request conflicts.
        assert!(lt.acquire(txn(2), t(9), LockMode::Shared, CcScheme::NoWait).is_err());
    }

    #[test]
    fn wait_die_younger_requester_dies() {
        let lt = LockTable::new();
        let older = txn(1);
        let younger = txn(2);
        assert!(lt.acquire(older, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_ok());
        let err = lt.acquire(younger, t(3), LockMode::Exclusive, CcScheme::WaitDie).unwrap_err();
        match err {
            Error::Abort(p4db_common::AbortReason::WaitDieDied { owner, .. }) => assert_eq!(owner, older),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wait_die_older_requester_waits_until_release() {
        let lt = Arc::new(LockTable::new());
        let older = txn(1);
        let younger = txn(2);
        assert!(lt.acquire(younger, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_ok());

        let lt2 = Arc::clone(&lt);
        let waiter = std::thread::spawn(move || lt2.acquire(older, t(3), LockMode::Exclusive, CcScheme::WaitDie));
        std::thread::sleep(Duration::from_millis(10));
        lt.release(younger, t(3));
        assert!(waiter.join().unwrap().is_ok(), "older transaction must eventually obtain the lock");
        // The wait was recorded in the cumulative node stats.
        let stats = lt.wait_stats();
        assert!(stats.waits >= 1, "wait count not recorded: {stats:?}");
        assert!(stats.total_wait() >= Duration::from_millis(5), "wait time not recorded: {stats:?}");
    }

    #[test]
    fn wait_die_gives_up_after_timeout() {
        let lt = LockTable::new().with_wait_timeout(Duration::from_millis(20));
        let older = txn(1);
        let younger = txn(2);
        assert!(lt.acquire(younger, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_ok());
        // The younger owner never releases: the older waiter must not hang.
        let start = Instant::now();
        assert!(lt.acquire(older, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_err());
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn uncontended_acquisitions_record_no_waits() {
        let lt = LockTable::new();
        for seq in 0..100 {
            lt.acquire(txn(seq), t(seq as u64), LockMode::Exclusive, CcScheme::WaitDie).unwrap();
        }
        assert_eq!(lt.wait_stats(), LockWaitStats::default());
        // Every call still counted as an acquisition.
        assert_eq!(lt.acquisition_count(), 100);
    }

    #[test]
    fn wait_accounting_counts_once_per_contended_acquisition() {
        // Pins the `LockWaitStats` contract: a transaction whose footprint
        // conflicts on two tuples in two *different shards* performs two
        // acquisitions, and each contributes exactly one wait whose span
        // covers that acquisition's full first-conflict-to-resolution time —
        // however many backoff rounds it looped through.
        let lt = Arc::new(LockTable::new());
        let a = t(0);
        // Find a tuple that hashes to a different lock shard than `a`.
        let b = (1..)
            .map(t)
            .find(|tuple| (tuple.mix() as usize) & (SHARDS - 1) != (a.mix() as usize) & (SHARDS - 1))
            .unwrap();
        let older = txn(1);
        let holder_a = txn(2);
        let holder_b = txn(3);
        assert!(lt.acquire(holder_a, a, LockMode::Exclusive, CcScheme::WaitDie).is_ok());
        assert!(lt.acquire(holder_b, b, LockMode::Exclusive, CcScheme::WaitDie).is_ok());

        let lt2 = Arc::clone(&lt);
        let waiter = std::thread::spawn(move || {
            lt2.acquire(older, a, LockMode::Exclusive, CcScheme::WaitDie)?;
            lt2.acquire(older, b, LockMode::Exclusive, CcScheme::WaitDie)
        });
        // Hold each lock ~10ms past the point the waiter needs it, releasing
        // `b` only after `a` so both acquisitions are forced to wait.
        std::thread::sleep(Duration::from_millis(10));
        lt.release(holder_a, a);
        std::thread::sleep(Duration::from_millis(10));
        lt.release(holder_b, b);
        assert!(waiter.join().unwrap().is_ok());

        let stats = lt.wait_stats();
        assert_eq!(stats.waits, 2, "one wait per contended acquisition, not per backoff round: {stats:?}");
        // Each span covers its whole wait (~10ms under the sleeps above);
        // assert a conservative floor to stay robust on loaded machines.
        assert!(stats.total_wait() >= Duration::from_millis(10), "under-reported cumulative wait: {stats:?}");
        // 2 holders + 2 waiter acquisitions.
        assert_eq!(lt.acquisition_count(), 4);
        lt.release_all(older, &[a, b]);
    }

    #[test]
    fn release_all_clears_everything() {
        let lt = LockTable::new();
        let tuples: Vec<_> = (0..10).map(t).collect();
        for &tuple in &tuples {
            lt.acquire(txn(1), tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
        }
        assert_eq!(lt.locked_count(), 10);
        lt.release_all(txn(1), &tuples);
        assert_eq!(lt.locked_count(), 0);
        assert!(!lt.is_locked(t(0)));
    }

    #[test]
    fn release_batch_clears_grouped_footprints() {
        for lt in [LockTable::new(), LockTable::seed_flavor()] {
            // Enough tuples that several share a shard (64 shards, 300
            // tuples), in arbitrary order so guard reuse sees both same- and
            // different-shard neighbours.
            let locks: Vec<(u64, TupleId)> = (0..300)
                .map(|k| {
                    let tuple = t(k);
                    lt.acquire_prehashed(tuple.mix(), txn(1), tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
                    (tuple.mix(), tuple)
                })
                .collect();
            assert_eq!(lt.locked_count(), 300);
            lt.release_batch(txn(1), &locks);
            assert_eq!(lt.locked_count(), 0);

            // Batch release only removes the given transaction's ownership.
            lt.acquire(txn(1), t(0), LockMode::Shared, CcScheme::NoWait).unwrap();
            lt.acquire(txn(2), t(0), LockMode::Shared, CcScheme::NoWait).unwrap();
            lt.release_batch(txn(1), &[(t(0).mix(), t(0))]);
            assert!(lt.is_locked(t(0)));
            lt.release(txn(2), t(0));
            assert!(!lt.is_locked(t(0)));
        }
    }

    #[test]
    fn spurious_release_is_harmless() {
        let lt = LockTable::new();
        lt.release(txn(1), t(1));
        lt.acquire(txn(2), t(1), LockMode::Shared, CcScheme::NoWait).unwrap();
        lt.release(txn(1), t(1)); // not an owner
        assert!(lt.is_locked(t(1)));
    }

    #[test]
    fn spurious_release_never_downgrades_another_owners_exclusive_lock() {
        // The shape a duplicate footprint entry produces: the tuple was
        // early-released, another transaction re-acquired it exclusively,
        // and the stale duplicate entry is released at commit.
        let lt = LockTable::new();
        lt.acquire(txn(2), t(1), LockMode::Exclusive, CcScheme::NoWait).unwrap();
        lt.release_batch(txn(1), &[(t(1).mix(), t(1))]); // txn(1) is not an owner
                                                         // txn(2)'s lock must still be exclusive: a shared request conflicts.
        assert!(lt.acquire(txn(3), t(1), LockMode::Shared, CcScheme::NoWait).is_err());
        lt.release(txn(2), t(1));
        assert!(!lt.is_locked(t(1)));
    }

    #[test]
    fn no_wait_under_concurrency_never_grants_conflicting_locks() {
        let lt = Arc::new(LockTable::new());
        let tuple = t(0);
        let successes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let in_cs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let lt = Arc::clone(&lt);
                let successes = Arc::clone(&successes);
                let in_cs = Arc::clone(&in_cs);
                std::thread::spawn(move || {
                    for s in 0..2000u32 {
                        let id = TxnId::compose(s, NodeId(0), WorkerId(i as u16));
                        if lt.acquire(id, tuple, LockMode::Exclusive, CcScheme::NoWait).is_ok() {
                            let now = in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            assert_eq!(now, 0, "two holders of an exclusive lock");
                            successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                            lt.release(id, tuple);
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert!(successes.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_eq!(lt.locked_count(), 0);
    }
}
