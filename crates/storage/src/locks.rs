//! The row-granularity 2PL lock manager of the host DBMS.
//!
//! Two deadlock-prevention variants are implemented, matching §7.1:
//!
//! * **NO_WAIT** — a transaction aborts as soon as a conflicting lock request
//!   is denied.
//! * **WAIT_DIE** — on conflict, the requester waits if it is *older* than
//!   every current owner (its timestamp is smaller), otherwise it aborts
//!   ("dies"). Waiting is deadlock-free because waits only ever go from older
//!   to younger transactions.
//!
//! The table is sharded by tuple hash so that unrelated lock requests never
//! contend on the same mutex; contention on the *same* tuple (the hot set) is
//! exactly the effect the paper measures.

use p4db_common::sync::unpoison;
use p4db_common::{CcScheme, Error, Result, TupleId, TxnId};
use std::collections::HashMap;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const SHARDS: usize = 64;

/// Lock mode of a request / grant.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug)]
struct LockEntry {
    mode: LockMode,
    owners: Vec<TxnId>,
}

/// The per-node lock table.
#[derive(Debug)]
pub struct LockTable {
    shards: Vec<Mutex<HashMap<TupleId, LockEntry>>>,
    /// Upper bound on how long WAIT_DIE waits before giving up; prevents a
    /// simulation bug (an owner that never releases) from hanging a worker
    /// forever. Generously larger than any realistic lock hold time.
    wait_timeout: Duration,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LockTable {
    pub fn new() -> Self {
        LockTable {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            wait_timeout: Duration::from_millis(100),
        }
    }

    /// Overrides the WAIT_DIE waiting timeout (tests use a small value).
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    fn shard(&self, tuple: TupleId) -> &Mutex<HashMap<TupleId, LockEntry>> {
        // Cheap mix of table id and key; the shard count is a power of two.
        let h = tuple.key ^ ((tuple.table.0 as u64) << 56) ^ (tuple.key >> 17);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Attempts to acquire `tuple` in `mode` for `txn` under the given
    /// concurrency-control scheme. Re-acquisition by the same transaction is
    /// idempotent (upgrades from shared to exclusive are treated as a
    /// conflict with other shared owners, as in standard 2PL).
    pub fn acquire(&self, txn: TxnId, tuple: TupleId, mode: LockMode, scheme: CcScheme) -> Result<()> {
        let deadline = Instant::now() + self.wait_timeout;
        loop {
            {
                let mut shard = unpoison(self.shard(tuple).lock());
                match shard.get_mut(&tuple) {
                    None => {
                        shard.insert(tuple, LockEntry { mode, owners: vec![txn] });
                        return Ok(());
                    }
                    Some(entry) => {
                        if entry.owners.contains(&txn) {
                            if entry.mode == LockMode::Exclusive || mode == LockMode::Shared {
                                // Already held in a sufficient mode.
                                return Ok(());
                            }
                            if entry.owners.len() == 1 {
                                // Sole shared owner upgrading to exclusive.
                                entry.mode = LockMode::Exclusive;
                                return Ok(());
                            }
                        } else if entry.mode == LockMode::Shared && mode == LockMode::Shared {
                            entry.owners.push(txn);
                            return Ok(());
                        }
                        // Conflict.
                        match scheme {
                            CcScheme::NoWait => return Err(Error::lock_conflict(tuple)),
                            CcScheme::WaitDie => {
                                // Wait only if older than *every* owner,
                                // otherwise die.
                                let oldest_owner =
                                    entry.owners.iter().copied().filter(|o| *o != txn).min().unwrap_or(txn);
                                if !txn.is_older_than(oldest_owner) {
                                    return Err(Error::wait_die(tuple, oldest_owner));
                                }
                                // Older than every owner: fall through to wait.
                            }
                        }
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(Error::lock_conflict(tuple));
            }
            // Back off outside the shard mutex and retry; owners release
            // quickly (lock hold times are microseconds in this system).
            for _ in 0..64 {
                hint::spin_loop();
            }
            std::thread::yield_now();
        }
    }

    /// Releases `tuple` for `txn`. Releasing a lock that is not held is a
    /// no-op, which keeps abort paths simple (a transaction may abort halfway
    /// through its acquisition loop).
    pub fn release(&self, txn: TxnId, tuple: TupleId) {
        let mut shard = unpoison(self.shard(tuple).lock());
        if let Some(entry) = shard.get_mut(&tuple) {
            entry.owners.retain(|o| *o != txn);
            if entry.owners.is_empty() {
                shard.remove(&tuple);
            } else if !entry.owners.is_empty() && entry.mode == LockMode::Exclusive {
                // An exclusive lock has exactly one owner; if owners remain
                // after removing `txn`, the entry was shared all along.
                entry.mode = LockMode::Shared;
            }
        }
    }

    /// Releases every lock in `tuples` for `txn` (commit / abort path).
    pub fn release_all(&self, txn: TxnId, tuples: &[TupleId]) {
        for &tuple in tuples {
            self.release(txn, tuple);
        }
    }

    /// Whether any transaction currently holds a lock on `tuple` (test /
    /// stats helper).
    pub fn is_locked(&self, tuple: TupleId) -> bool {
        unpoison(self.shard(tuple).lock()).contains_key(&tuple)
    }

    /// Number of currently locked tuples (test / stats helper).
    pub fn locked_count(&self) -> usize {
        self.shards.iter().map(|s| unpoison(s.lock()).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, TableId, WorkerId};
    use std::sync::Arc;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn txn(seq: u32) -> TxnId {
        TxnId::compose(seq, NodeId(0), WorkerId(0))
    }

    #[test]
    fn exclusive_conflicts_under_no_wait() {
        let lt = LockTable::new();
        assert!(lt.acquire(txn(1), t(5), LockMode::Exclusive, CcScheme::NoWait).is_ok());
        let err = lt.acquire(txn(2), t(5), LockMode::Exclusive, CcScheme::NoWait).unwrap_err();
        assert!(err.is_abort());
        lt.release(txn(1), t(5));
        assert!(lt.acquire(txn(2), t(5), LockMode::Exclusive, CcScheme::NoWait).is_ok());
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lt = LockTable::new();
        assert!(lt.acquire(txn(1), t(5), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(2), t(5), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(3), t(5), LockMode::Exclusive, CcScheme::NoWait).is_err());
        lt.release(txn(1), t(5));
        lt.release(txn(2), t(5));
        assert!(lt.acquire(txn(3), t(5), LockMode::Exclusive, CcScheme::NoWait).is_ok());
    }

    #[test]
    fn reacquisition_is_idempotent_and_upgrade_works_when_sole_owner() {
        let lt = LockTable::new();
        assert!(lt.acquire(txn(1), t(9), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(1), t(9), LockMode::Shared, CcScheme::NoWait).is_ok());
        assert!(lt.acquire(txn(1), t(9), LockMode::Exclusive, CcScheme::NoWait).is_ok());
        // Now exclusive: another shared request conflicts.
        assert!(lt.acquire(txn(2), t(9), LockMode::Shared, CcScheme::NoWait).is_err());
    }

    #[test]
    fn wait_die_younger_requester_dies() {
        let lt = LockTable::new();
        let older = txn(1);
        let younger = txn(2);
        assert!(lt.acquire(older, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_ok());
        let err = lt.acquire(younger, t(3), LockMode::Exclusive, CcScheme::WaitDie).unwrap_err();
        match err {
            Error::Abort(p4db_common::AbortReason::WaitDieDied { owner, .. }) => assert_eq!(owner, older),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wait_die_older_requester_waits_until_release() {
        let lt = Arc::new(LockTable::new());
        let older = txn(1);
        let younger = txn(2);
        assert!(lt.acquire(younger, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_ok());

        let lt2 = Arc::clone(&lt);
        let waiter = std::thread::spawn(move || lt2.acquire(older, t(3), LockMode::Exclusive, CcScheme::WaitDie));
        std::thread::sleep(Duration::from_millis(10));
        lt.release(younger, t(3));
        assert!(waiter.join().unwrap().is_ok(), "older transaction must eventually obtain the lock");
    }

    #[test]
    fn wait_die_gives_up_after_timeout() {
        let lt = LockTable::new().with_wait_timeout(Duration::from_millis(20));
        let older = txn(1);
        let younger = txn(2);
        assert!(lt.acquire(younger, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_ok());
        // The younger owner never releases: the older waiter must not hang.
        let start = Instant::now();
        assert!(lt.acquire(older, t(3), LockMode::Exclusive, CcScheme::WaitDie).is_err());
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn release_all_clears_everything() {
        let lt = LockTable::new();
        let tuples: Vec<_> = (0..10).map(t).collect();
        for &tuple in &tuples {
            lt.acquire(txn(1), tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
        }
        assert_eq!(lt.locked_count(), 10);
        lt.release_all(txn(1), &tuples);
        assert_eq!(lt.locked_count(), 0);
        assert!(!lt.is_locked(t(0)));
    }

    #[test]
    fn spurious_release_is_harmless() {
        let lt = LockTable::new();
        lt.release(txn(1), t(1));
        lt.acquire(txn(2), t(1), LockMode::Shared, CcScheme::NoWait).unwrap();
        lt.release(txn(1), t(1)); // not an owner
        assert!(lt.is_locked(t(1)));
    }

    #[test]
    fn no_wait_under_concurrency_never_grants_conflicting_locks() {
        let lt = Arc::new(LockTable::new());
        let tuple = t(0);
        let successes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let in_cs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let lt = Arc::clone(&lt);
                let successes = Arc::clone(&successes);
                let in_cs = Arc::clone(&in_cs);
                std::thread::spawn(move || {
                    for s in 0..2000u32 {
                        let id = TxnId::compose(s, NodeId(0), WorkerId(i as u16));
                        if lt.acquire(id, tuple, LockMode::Exclusive, CcScheme::NoWait).is_ok() {
                            let now = in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            assert_eq!(now, 0, "two holders of an exclusive lock");
                            successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                            lt.release(id, tuple);
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert!(successes.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_eq!(lt.locked_count(), 0);
    }
}
