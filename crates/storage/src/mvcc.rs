//! Multi-version concurrency control plumbing: the commit clock that stamps
//! row versions and the snapshot registry that tracks active read-only
//! transactions.
//!
//! The shape follows the paper's division of labor: writers keep using the
//! 2PL host path (conflicting writers are already serialized by the lock
//! table), and each committed write additionally *installs* a version tagged
//! with a commit timestamp. Read-only transactions pick a snapshot timestamp
//! at admission and read the newest version at or below it — zero lock-table
//! interaction, zero 2PC. Correctness rests on two properties enforced here:
//!
//! 1. **Ordered publication.** [`CommitClock::reserve`] hands out timestamps,
//!    but [`CommitClock::stable`] only advances over the *contiguous prefix*
//!    of published timestamps: a timestamp published before its predecessors
//!    parks in a small pending set and is absorbed once the gap below it
//!    closes ([`CommitClock::publish`] never blocks — a descheduled
//!    committer delays `stable`, not its peers). A reader that snapshots at
//!    `stable()` can therefore never miss an in-flight install below its
//!    snapshot.
//! 2. **Guarded reclamation.** [`SnapshotSlot::begin`] announces a snapshot
//!    *and re-validates* the clock after the announcement; the garbage
//!    collector ([`SnapshotRegistry::low_watermark`]) reads the clock
//!    *before* scanning the slots. Between the two, any reader that finished
//!    `begin()` with snapshot `s` is either visible to the scan (watermark
//!    `<= s`) or started after the collector's clock read (watermark
//!    `<= bound <= s`) — so no version a completed `begin()` can still see
//!    is ever reclaimed.
//!
//! Timestamps are drawn from one logical clock for the whole cluster: the
//! simulator's nodes share an address space, which models the
//! synchronized-clock assumption the paper's epoch machinery already makes
//! for switch epochs.

use p4db_common::sync::unpoison;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Slot value of a worker with no read-only transaction in flight. Folds
/// away naturally in the watermark minimum.
pub const IDLE_SNAPSHOT: u64 = u64::MAX;

/// Default cap on a row's version-chain length before the installing writer
/// trims it inline against the current low-watermark.
pub const DEFAULT_VERSION_CAP: usize = 64;

/// The cluster commit clock. `reserve()` is called exactly once per
/// committing transaction that installed at least one host write — *after*
/// its WAL commit group is appended, so a reserved timestamp is always
/// published. Read-only and hot-only transactions never tick the clock.
#[derive(Debug)]
pub struct CommitClock {
    /// Next timestamp to hand out (timestamps start at 1).
    next: AtomicU64,
    /// Highest timestamp whose versions are fully installed, as are those of
    /// every timestamp below it.
    stable: AtomicU64,
    /// Timestamps published ahead of a still-installing predecessor, waiting
    /// for the gap below them to close. Bounded by the number of concurrently
    /// committing workers, so a linear scan is cheaper than a heap.
    pending: Mutex<Vec<u64>>,
}

impl Default for CommitClock {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitClock {
    pub fn new() -> Self {
        CommitClock { next: AtomicU64::new(1), stable: AtomicU64::new(0), pending: Mutex::new(Vec::new()) }
    }

    /// Draws the next commit timestamp. The caller *must* follow up with
    /// [`CommitClock::publish`] after installing its versions, or `stable`
    /// stalls forever.
    #[inline]
    pub fn reserve(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Publishes `ts` without ever blocking. If every smaller timestamp has
    /// already published, `stable` advances to `ts` and then absorbs any
    /// parked successors whose gap this publish just closed; otherwise `ts`
    /// parks in the pending set and the eventual publisher of its
    /// predecessor absorbs it. A committer descheduled mid-install therefore
    /// delays only `stable` (readers snapshot slightly older states), never
    /// its peers' commit latency. All `stable` stores happen under the
    /// pending lock, so the advance itself is serialized and monotonic.
    pub fn publish(&self, ts: u64) {
        debug_assert!(ts >= 1);
        let mut pending = unpoison(self.pending.lock());
        let stable = self.stable.load(Ordering::Acquire);
        if ts != stable + 1 {
            debug_assert!(ts > stable, "timestamp published twice");
            pending.push(ts);
            return;
        }
        let mut new_stable = ts;
        while let Some(at) = pending.iter().position(|&parked| parked == new_stable + 1) {
            pending.swap_remove(at);
            new_stable += 1;
        }
        self.stable.store(new_stable, Ordering::SeqCst);
    }

    /// The newest timestamp that is safe to snapshot: all versions at or
    /// below it are fully installed.
    #[inline]
    pub fn stable(&self) -> u64 {
        self.stable.load(Ordering::SeqCst)
    }
}

/// One worker's published snapshot: `IDLE_SNAPSHOT` when no read-only
/// transaction is in flight, the active snapshot timestamp otherwise.
/// Registered once per worker (never by slot-index arithmetic — a shared
/// slot would let one worker's `end()` hide another's active snapshot from
/// the watermark).
#[derive(Debug, Clone)]
pub struct SnapshotSlot(Arc<AtomicU64>);

impl SnapshotSlot {
    /// Announces a snapshot at the clock's current stable timestamp and
    /// returns it. The store-then-revalidate loop closes the race against a
    /// concurrent collector (see the module docs): once `begin` returns,
    /// every `low_watermark()` computed from here on is `<=` the returned
    /// snapshot until [`SnapshotSlot::end`] is called.
    pub fn begin(&self, clock: &CommitClock) -> u64 {
        loop {
            let snap = clock.stable();
            self.0.store(snap, Ordering::SeqCst);
            if clock.stable() == snap {
                return snap;
            }
        }
    }

    /// Clears the announcement. Must be called on every exit from the
    /// snapshot read path, including error paths.
    pub fn end(&self) {
        self.0.store(IDLE_SNAPSHOT, Ordering::SeqCst);
    }

    /// The currently announced snapshot, if any (test/diagnostic hook).
    pub fn active(&self) -> Option<u64> {
        match self.0.load(Ordering::SeqCst) {
            IDLE_SNAPSHOT => None,
            snap => Some(snap),
        }
    }
}

/// The cluster-wide set of snapshot slots. Slots are only ever added (a
/// departed worker's slot stays `IDLE_SNAPSHOT` forever, which costs one
/// atomic load per watermark computation and can never hold the watermark
/// back).
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    slots: RwLock<Vec<Arc<AtomicU64>>>,
}

impl SnapshotRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh idle slot for one worker.
    pub fn register(&self) -> SnapshotSlot {
        let slot = Arc::new(AtomicU64::new(IDLE_SNAPSHOT));
        unpoison(self.slots.write()).push(Arc::clone(&slot));
        SnapshotSlot(slot)
    }

    /// The cluster low-watermark: the minimum of the clock's stable
    /// timestamp and every active snapshot. Versions strictly below the
    /// newest version at or below this bound are reclaimable. The clock is
    /// read *before* the slot scan — the ordering half of the reclamation
    /// guarantee (see the module docs).
    pub fn low_watermark(&self, clock: &CommitClock) -> u64 {
        let bound = clock.stable();
        let slots = unpoison(self.slots.read());
        slots.iter().map(|slot| slot.load(Ordering::SeqCst)).fold(bound, u64::min)
    }

    /// Number of registered slots (diagnostic).
    pub fn len(&self) -> usize {
        unpoison(self.slots.read()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything the engine shares for MVCC: the commit clock, the snapshot
/// registry, and the version-chain cap that triggers inline writer-side
/// trimming.
#[derive(Debug)]
pub struct MvccState {
    pub clock: CommitClock,
    pub snapshots: SnapshotRegistry,
    /// A committing writer that grows a chain past this length trims it
    /// against the current low-watermark before releasing its locks.
    pub version_cap: usize,
}

impl Default for MvccState {
    fn default() -> Self {
        Self::new(DEFAULT_VERSION_CAP)
    }
}

impl MvccState {
    pub fn new(version_cap: usize) -> Self {
        MvccState { clock: CommitClock::new(), snapshots: SnapshotRegistry::new(), version_cap: version_cap.max(1) }
    }

    /// The minimum active snapshot merged with the stable timestamp — the
    /// bound below which versions may be reclaimed.
    pub fn low_watermark(&self) -> u64 {
        self.snapshots.low_watermark(&self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_stable_at_zero_and_publishes_in_order() {
        let clock = CommitClock::new();
        assert_eq!(clock.stable(), 0);
        let a = clock.reserve();
        let b = clock.reserve();
        assert_eq!((a, b), (1, 2));
        clock.publish(a);
        assert_eq!(clock.stable(), 1);
        clock.publish(b);
        assert_eq!(clock.stable(), 2);
    }

    #[test]
    fn out_of_order_publish_parks_until_the_gap_closes() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        let b = clock.reserve();
        let c = clock.reserve();
        // b and c publish ahead of a: stable must not move (a reader
        // snapshotting now would miss a's still-uninstalled versions).
        clock.publish(c);
        clock.publish(b);
        assert_eq!(clock.stable(), 0, "stable advanced over an unpublished gap");
        // Publishing a closes the gap and absorbs both parked successors.
        clock.publish(a);
        assert_eq!(clock.stable(), c);
    }

    #[test]
    fn watermark_tracks_minimum_active_snapshot() {
        let state = MvccState::new(8);
        // No readers: watermark == stable.
        assert_eq!(state.low_watermark(), 0);
        let ts = state.clock.reserve();
        state.clock.publish(ts);
        assert_eq!(state.low_watermark(), 1);

        let slot_a = state.snapshots.register();
        let slot_b = state.snapshots.register();
        let snap_a = slot_a.begin(&state.clock);
        assert_eq!(snap_a, 1);
        // Advance the clock past the reader.
        let ts = state.clock.reserve();
        state.clock.publish(ts);
        assert_eq!(state.clock.stable(), 2);
        // Active reader at 1 holds the watermark down.
        assert_eq!(state.low_watermark(), 1);
        let snap_b = slot_b.begin(&state.clock);
        assert_eq!(snap_b, 2);
        assert_eq!(state.low_watermark(), 1);
        slot_a.end();
        assert_eq!(state.low_watermark(), 2);
        slot_b.end();
        assert_eq!(state.low_watermark(), 2);
        assert_eq!(state.snapshots.len(), 2);
    }

    #[test]
    fn idle_slots_never_hold_the_watermark_back() {
        let state = MvccState::default();
        for _ in 0..16 {
            let _ = state.snapshots.register(); // dropped immediately, stays idle
        }
        for _ in 0..5 {
            let ts = state.clock.reserve();
            state.clock.publish(ts);
        }
        assert_eq!(state.low_watermark(), 5);
    }

    #[test]
    fn slot_active_reflects_begin_and_end() {
        let state = MvccState::default();
        let slot = state.snapshots.register();
        assert_eq!(slot.active(), None);
        let snap = slot.begin(&state.clock);
        assert_eq!(slot.active(), Some(snap));
        slot.end();
        assert_eq!(slot.active(), None);
    }
}
