//! # p4db-storage
//!
//! Host-side storage of the shared-nothing distributed DBMS that P4DB is
//! integrated into (§6): per-node in-memory tables, the row-granularity 2PL
//! lock manager with the NO_WAIT and WAIT_DIE deadlock-prevention variants,
//! secondary indexes, the per-node write-ahead log with the switch-GID
//! protocol, and the recovery procedures for both switch state and node
//! state.

pub mod checkpoint;
pub mod index;
pub mod locks;
pub mod mvcc;
pub mod node;
pub mod recovery;
pub mod segment;
pub mod table;
pub mod wal;

pub use checkpoint::{decode_checkpoint, take_fuzzy_checkpoint, Checkpoint, CheckpointStore, ShardRows};
pub use index::SecondaryIndex;
pub use locks::{LockMode, LockTable, LockWaitStats};
pub use mvcc::{CommitClock, MvccState, SnapshotRegistry, SnapshotSlot, DEFAULT_VERSION_CAP, IDLE_SNAPSHOT};
pub use node::NodeStorage;
pub use recovery::{
    recover_cold_records, recover_cold_state, recover_switch_state, replay_logged_op, replay_logged_txn,
    LoggedOpEffect, SwitchRecoveryOutcome,
};
pub use segment::{
    decode_segment_prefix, decode_segment_tail, decode_segments, encode_segment, peek_base_lsn, SegmentPrefix,
    SEGMENT_MAGIC,
};
pub use table::{Row, RowHandle, Table, DEFAULT_TABLE_SHARDS};
pub use wal::{LogRecord, LoggedSwitchOp, Wal, WalCodec, WalCodecError, DEFAULT_SEGMENT_RECORDS};
