//! The binary, segmented on-disk codec of the write-ahead log.
//!
//! This is the default crash-drill arm of [`crate::wal::Wal`] (the text
//! format stays available as the compatibility/differential arm). It reuses
//! the checksummed, truncation-safe wire idiom of `p4db_net::frame`: a
//! 5-byte versioned magic, then length-prefixed records each closed by an
//! FNV-1a-64 checksum over the record's own bytes, so a prefix of a segment
//! decodes to a prefix of its records and a torn final record is detected
//! rather than misparsed.
//!
//! ## Wire format
//!
//! ```text
//! segment   := magic base_lsn record*
//! magic     := "P4WS" 0x01                     (5 bytes)
//! base_lsn  := u64 LE        — LSN of the segment's first record
//! record    := len:u32 LE  body  crc:u64 LE    (crc over len+body bytes)
//! body      := tag:u8 fields…                  (all integers LE)
//! ```
//!
//! Record bodies: `1` ColdWrite (txn, table:u16, key, before, after — values
//! as `n:u8` + `n × u64`), `2` SwitchIntent (txn, `n:u16` ops of table:u16,
//! key, opcode:u8, operand, from-flag:u8 + from:u8), `3` SwitchResult (txn,
//! gid, `n:u16` results of table:u16, key, value), `4` Commit (txn), `5`
//! Abort (txn).
//!
//! ## Torn tail vs. interior corruption
//!
//! The same contract as the text codec (see [`crate::wal`]), expressed in
//! bytes: a record that fails **at the physical end of the final segment** —
//! a truncated length header, a body or checksum cut short, or a checksum
//! mismatch on a record ending exactly at the buffer's last byte — is a
//! legitimate torn tail; [`decode_segments`] returns the intact prefix plus
//! the tear as a note. A checksum mismatch with bytes *remaining after* the
//! record, or any failure in a sealed (non-final) segment, is interior
//! corruption — data loss that must not be silently truncated away — and is
//! a hard [`WalCodecError`]. (One inherent limit of length-prefixed framing:
//! a corrupted length field that points past the end of the final segment is
//! indistinguishable from a tear and is treated as one; in every other
//! position the checksum, which covers the length bytes, catches it.)

use crate::wal::{LogRecord, LoggedSwitchOp, WalCodecError};
use p4db_common::{GlobalTxnId, TableId, TupleId, TxnId, Value};
use p4db_switch::OpCode;

/// Versioned magic opening every binary WAL segment.
pub const SEGMENT_MAGIC: &[u8; 5] = b"P4WS\x01";

/// Byte length of the segment header (magic + base LSN).
const HEADER_BYTES: usize = SEGMENT_MAGIC.len() + 8;

/// FNV-1a 64-bit over raw bytes — the same function as the text codec's
/// per-line checksum, applied to the binary record frame.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_tuple(out: &mut Vec<u8>, tuple: TupleId) {
    put_u16(out, tuple.table.0);
    put_u64(out, tuple.key);
}

pub(crate) fn put_value(out: &mut Vec<u8>, value: &Value) {
    let fields = value.as_slice();
    out.push(fields.len() as u8);
    for &f in fields {
        put_u64(out, f);
    }
}

/// Stable wire code of an opcode (the binary sibling of [`OpCode::name`]).
fn opcode_code(op: OpCode) -> u8 {
    match op {
        OpCode::Read => 0,
        OpCode::Write => 1,
        OpCode::Add => 2,
        OpCode::FetchAdd => 3,
        OpCode::CondSub => 4,
        OpCode::WriteIfGreater => 5,
    }
}

fn opcode_from_code(code: u8) -> Option<OpCode> {
    Some(match code {
        0 => OpCode::Read,
        1 => OpCode::Write,
        2 => OpCode::Add,
        3 => OpCode::FetchAdd,
        4 => OpCode::CondSub,
        5 => OpCode::WriteIfGreater,
        _ => return None,
    })
}

fn encode_body(out: &mut Vec<u8>, record: &LogRecord) {
    match record {
        LogRecord::ColdWrite { txn, tuple, before, after } => {
            out.push(1);
            put_u64(out, txn.0);
            put_tuple(out, *tuple);
            put_value(out, before);
            put_value(out, after);
        }
        LogRecord::SwitchIntent { txn, ops } => {
            out.push(2);
            put_u64(out, txn.0);
            put_u16(out, ops.len() as u16);
            for op in ops {
                put_tuple(out, op.tuple);
                out.push(opcode_code(op.op));
                put_u64(out, op.operand);
                match op.operand_from {
                    Some(src) => out.extend_from_slice(&[1, src]),
                    None => out.extend_from_slice(&[0, 0]),
                }
            }
        }
        LogRecord::SwitchResult { txn, gid, results } => {
            out.push(3);
            put_u64(out, txn.0);
            put_u64(out, gid.0);
            put_u16(out, results.len() as u16);
            for &(tuple, value) in results {
                put_tuple(out, tuple);
                put_u64(out, value);
            }
        }
        LogRecord::Commit { txn } => {
            out.push(4);
            put_u64(out, txn.0);
        }
        LogRecord::Abort { txn } => {
            out.push(5);
            put_u64(out, txn.0);
        }
    }
}

/// Appends one framed record (`len` + body + `crc`) to `out`.
fn encode_record(out: &mut Vec<u8>, record: &LogRecord) {
    let frame_start = out.len();
    put_u32(out, 0); // length placeholder
    encode_body(out, record);
    let body_len = (out.len() - frame_start - 4) as u32;
    out[frame_start..frame_start + 4].copy_from_slice(&body_len.to_le_bytes());
    let crc = fnv1a_bytes(&out[frame_start..]);
    put_u64(out, crc);
}

/// Encodes `records` as one segment whose first record has LSN `base_lsn`.
pub fn encode_segment(base_lsn: u64, records: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + records.len() * 40);
    out.extend_from_slice(SEGMENT_MAGIC);
    put_u64(&mut out, base_lsn);
    for record in records {
        encode_record(&mut out, record);
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A cursor over one record body; every read is bounds-checked so a
/// malformed body yields a structured error, never a panic.
pub(crate) struct BodyReader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) at: usize,
    pub(crate) record: usize,
}

impl<'a> BodyReader<'a> {
    pub(crate) fn err(&self, message: impl Into<String>) -> WalCodecError {
        WalCodecError { line: self.record, message: message.into() }
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalCodecError> {
        let end = self.at + n;
        if end > self.bytes.len() {
            return Err(self.err(format!("record body too short for {what}")));
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, WalCodecError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &str) -> Result<u16, WalCodecError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WalCodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn tuple(&mut self) -> Result<TupleId, WalCodecError> {
        let table = self.u16("table id")?;
        let key = self.u64("tuple key")?;
        Ok(TupleId::new(TableId(table), key))
    }

    pub(crate) fn value(&mut self, what: &str) -> Result<Value, WalCodecError> {
        let n = self.u8(what)? as usize;
        if n == 0 || n > p4db_common::value::MAX_FIELDS {
            return Err(self.err(format!("invalid {what} width {n}")));
        }
        let mut fields = [0u64; p4db_common::value::MAX_FIELDS];
        for field in fields.iter_mut().take(n) {
            *field = self.u64(what)?;
        }
        Ok(Value::from_fields(&fields[..n]))
    }

    fn finish(self) -> Result<(), WalCodecError> {
        if self.at != self.bytes.len() {
            return Err(self.err(format!("{} trailing garbage bytes after record body", self.bytes.len() - self.at)));
        }
        Ok(())
    }
}

fn decode_body(record: usize, bytes: &[u8]) -> Result<LogRecord, WalCodecError> {
    let mut r = BodyReader { bytes, at: 0, record };
    let tag = r.u8("record tag")?;
    let decoded = match tag {
        1 => {
            let txn = TxnId(r.u64("transaction id")?);
            let tuple = r.tuple()?;
            let before = r.value("before image")?;
            let after = r.value("after image")?;
            LogRecord::ColdWrite { txn, tuple, before, after }
        }
        2 => {
            let txn = TxnId(r.u64("transaction id")?);
            let n = r.u16("op count")? as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let tuple = r.tuple()?;
                let code = r.u8("opcode")?;
                let op = opcode_from_code(code).ok_or_else(|| r.err(format!("unknown opcode {code}")))?;
                let operand = r.u64("operand")?;
                let has_from = r.u8("operand source flag")?;
                let src = r.u8("operand source")?;
                let operand_from = match has_from {
                    0 => None,
                    1 => Some(src),
                    other => return Err(r.err(format!("invalid operand source flag {other}"))),
                };
                ops.push(LoggedSwitchOp { tuple, op, operand, operand_from });
            }
            LogRecord::SwitchIntent { txn, ops }
        }
        3 => {
            let txn = TxnId(r.u64("transaction id")?);
            let gid = GlobalTxnId(r.u64("gid")?);
            let n = r.u16("result count")? as usize;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let tuple = r.tuple()?;
                let value = r.u64("result value")?;
                results.push((tuple, value));
            }
            LogRecord::SwitchResult { txn, gid, results }
        }
        4 => LogRecord::Commit { txn: TxnId(r.u64("transaction id")?) },
        5 => LogRecord::Abort { txn: TxnId(r.u64("transaction id")?) },
        other => return Err(r.err(format!("unknown record tag {other}"))),
    };
    r.finish()?;
    Ok(decoded)
}

/// The result of decoding a prefix of one segment.
#[derive(Debug)]
pub struct SegmentPrefix {
    /// LSN of the segment's first record; `None` when even the header was
    /// torn (nothing of the segment reached stable storage).
    pub base_lsn: Option<u64>,
    /// Every record that decoded cleanly before the tear (all of them, for a
    /// clean segment).
    pub records: Vec<LogRecord>,
    /// The tear that terminated decoding at the segment's physical end, if
    /// any. Interior corruption is a hard error, never a note.
    pub torn: Option<WalCodecError>,
}

/// Decodes one segment under the torn-tail contract (module docs): failures
/// at the physical end of the buffer become [`SegmentPrefix::torn`] notes,
/// failures with intact bytes after them are hard errors.
pub fn decode_segment_prefix(bytes: &[u8]) -> Result<SegmentPrefix, WalCodecError> {
    if bytes.len() < HEADER_BYTES {
        let message = format!("torn segment header ({} of {HEADER_BYTES} bytes)", bytes.len());
        return Ok(SegmentPrefix {
            base_lsn: None,
            records: Vec::new(),
            torn: Some(WalCodecError { line: 0, message }),
        });
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(WalCodecError { line: 0, message: "bad segment magic (not a P4WS v1 segment)".into() });
    }
    let base_lsn = u64::from_le_bytes(bytes[SEGMENT_MAGIC.len()..HEADER_BYTES].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut at = HEADER_BYTES;
    let mut torn = None;
    while at < bytes.len() {
        let record_no = records.len() + 1;
        let torn_err = |message: String| WalCodecError { line: record_no, message };
        if bytes.len() - at < 4 {
            torn = Some(torn_err(format!("torn record at byte {at}: truncated length header")));
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let body_end = at + 4 + len;
        let record_end = body_end + 8;
        if record_end > bytes.len() {
            torn = Some(torn_err(format!("torn record at byte {at}: truncated body or checksum")));
            break;
        }
        let stored = u64::from_le_bytes(bytes[body_end..record_end].try_into().expect("8 bytes"));
        let actual = fnv1a_bytes(&bytes[at..body_end]);
        if stored != actual {
            let message = format!(
                "checksum mismatch at byte {at} (stored {stored:016x}, computed {actual:016x}) — torn or corrupt \
                 record"
            );
            if record_end == bytes.len() {
                // The failing record is the last thing in the segment: a
                // torn tail (the tear landed inside the final record).
                torn = Some(torn_err(message));
                break;
            }
            // Intact bytes follow the failing record: interior data loss.
            return Err(torn_err(format!("interior corruption (intact records follow): {message}")));
        }
        records.push(decode_body(record_no, &bytes[at + 4..body_end])?);
        at = record_end;
    }
    Ok(SegmentPrefix { base_lsn: Some(base_lsn), records, torn })
}

/// Decodes a whole segment sequence into one record vector. A torn tail is
/// tolerated in the **final** segment only and returned as a note; a tear in
/// any sealed segment, a base-LSN discontinuity (a missing or reordered
/// segment) or interior corruption anywhere is a hard error.
#[allow(clippy::type_complexity)]
pub fn decode_segments(blobs: &[impl AsRef<[u8]>]) -> Result<(Vec<LogRecord>, Option<WalCodecError>), WalCodecError> {
    let mut records: Vec<LogRecord> = Vec::new();
    let mut torn = None;
    for (i, blob) in blobs.iter().enumerate() {
        let last = i + 1 == blobs.len();
        let prefix = decode_segment_prefix(blob.as_ref())?;
        if let Some(note) = prefix.torn {
            if !last {
                return Err(WalCodecError {
                    line: note.line,
                    message: format!(
                        "segment {i} is torn but is not the final segment — interior data loss: {}",
                        note.message
                    ),
                });
            }
            torn = Some(note);
        }
        if let Some(base) = prefix.base_lsn {
            if base != records.len() as u64 {
                return Err(WalCodecError {
                    line: 0,
                    message: format!(
                        "segment {i} starts at LSN {base} but {} records precede it — missing or reordered segment",
                        records.len()
                    ),
                });
            }
        }
        records.extend(prefix.records);
    }
    Ok((records, torn))
}

/// Reads a segment's base LSN from its header without decoding any records.
/// `None` means the header itself is torn (fewer than `HEADER_BYTES` (13)
/// bytes); a wrong magic is a hard error as in [`decode_segment_prefix`].
pub fn peek_base_lsn(bytes: &[u8]) -> Result<Option<u64>, WalCodecError> {
    if bytes.len() < HEADER_BYTES {
        return Ok(None);
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(WalCodecError { line: 0, message: "bad segment magic (not a P4WS v1 segment)".into() });
    }
    Ok(Some(u64::from_le_bytes(bytes[SEGMENT_MAGIC.len()..HEADER_BYTES].try_into().expect("8 bytes"))))
}

/// Decodes only the suffix of a segment sequence needed to replay records
/// from `from_lsn` onward — the checkpoint-tail read path. Sealed segments
/// that lie wholly below `from_lsn` are *skipped without decoding* (their
/// headers are still checked: valid magic and strictly increasing base
/// LSNs), which is what makes a checkpointed restart O(tail) instead of
/// O(log). Decoding starts at the last segment whose base LSN is ≤
/// `from_lsn` and follows the same continuity and final-only-tear rules as
/// [`decode_segments`]. Returns the records from `from_lsn` on, plus the
/// torn-tail note if the final segment was torn.
#[allow(clippy::type_complexity)]
pub fn decode_segment_tail(
    blobs: &[impl AsRef<[u8]>],
    from_lsn: u64,
) -> Result<(Vec<LogRecord>, Option<WalCodecError>), WalCodecError> {
    // Peek every header up front; the skip decision needs the successor's
    // base LSN. A torn header is only legitimate on the final segment.
    let mut bases = Vec::with_capacity(blobs.len());
    for (i, blob) in blobs.iter().enumerate() {
        match peek_base_lsn(blob.as_ref())? {
            Some(base) => {
                if bases.last().is_some_and(|&prev| base <= prev) {
                    return Err(WalCodecError {
                        line: 0,
                        message: format!(
                            "segment {i} base LSN {base} does not increase — missing or reordered segment"
                        ),
                    });
                }
                bases.push(base);
            }
            None if i + 1 == blobs.len() => break, // torn final header, handled below
            None => {
                return Err(WalCodecError {
                    line: 0,
                    message: format!("segment {i} has a torn header but is not the final segment"),
                })
            }
        }
    }
    // Last segment whose base is ≤ from_lsn: the fence lands inside it (or
    // at its start), so everything before it holds only pre-fence records.
    let start = bases.iter().rposition(|&base| base <= from_lsn).unwrap_or(0);
    let mut records: Vec<LogRecord> = Vec::new();
    let mut expected_next = bases.get(start).copied();
    let mut torn = None;
    for (i, blob) in blobs.iter().enumerate().skip(start) {
        let last = i + 1 == blobs.len();
        let prefix = decode_segment_prefix(blob.as_ref())?;
        if let Some(note) = prefix.torn {
            if !last {
                return Err(WalCodecError {
                    line: note.line,
                    message: format!(
                        "segment {i} is torn but is not the final segment — interior data loss: {}",
                        note.message
                    ),
                });
            }
            torn = Some(note);
        }
        if let (Some(base), Some(expected)) = (prefix.base_lsn, expected_next) {
            if base != expected {
                return Err(WalCodecError {
                    line: 0,
                    message: format!(
                        "segment {i} starts at LSN {base} but LSN {expected} was expected — missing or reordered \
                         segment"
                    ),
                });
            }
            expected_next = Some(expected + prefix.records.len() as u64);
        }
        records.extend(prefix.records);
    }
    // Drop the pre-fence records of the first decoded segment.
    let first_base = bases.get(start).copied().unwrap_or(0);
    let skip = (from_lsn.saturating_sub(first_base) as usize).min(records.len());
    records.drain(..skip);
    Ok((records, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;
    use p4db_common::{NodeId, WorkerId};

    fn txn(seq: u32) -> TxnId {
        TxnId::compose(seq, NodeId(0), WorkerId(0))
    }

    fn tuple(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::ColdWrite {
                txn: txn(3),
                tuple: tuple(9),
                before: Value::from_fields(&[1, 7, 9]),
                after: Value::from_fields(&[2, 7, 9]),
            },
            LogRecord::SwitchIntent {
                txn: txn(3),
                ops: vec![
                    LoggedSwitchOp { tuple: tuple(1), op: OpCode::Add, operand: 2, operand_from: None },
                    LoggedSwitchOp { tuple: tuple(2), op: OpCode::CondSub, operand: 5, operand_from: Some(0) },
                ],
            },
            LogRecord::SwitchResult { txn: txn(3), gid: GlobalTxnId(0), results: vec![(tuple(1), 3), (tuple(2), 95)] },
            LogRecord::Commit { txn: txn(3) },
            LogRecord::Abort { txn: txn(4) },
        ]
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let records = sample_records();
        let blob = encode_segment(0, &records);
        let prefix = decode_segment_prefix(&blob).unwrap();
        assert_eq!(prefix.base_lsn, Some(0));
        assert!(prefix.torn.is_none());
        assert_eq!(prefix.records, records);
        // Every opcode round-trips through its wire code.
        for code in 0..6u8 {
            assert_eq!(opcode_code(opcode_from_code(code).unwrap()), code);
        }
        assert!(opcode_from_code(6).is_none());
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_intact_prefix() {
        let records = sample_records();
        let blob = encode_segment(0, &records);
        // Record boundaries: the byte length of every i-record prefix.
        let boundaries: Vec<usize> = (0..=records.len()).map(|i| encode_segment(0, &records[..i]).len()).collect();
        for cut in 0..blob.len() {
            let prefix = decode_segment_prefix(&blob[..cut]).unwrap();
            let intact = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            assert_eq!(prefix.records, records[..intact], "cut at byte {cut}");
            let at_boundary = boundaries.contains(&cut);
            assert_eq!(prefix.torn.is_none(), at_boundary, "cut at byte {cut}");
        }
    }

    #[test]
    fn interior_corruption_is_a_hard_error_tail_corruption_a_tear() {
        let records = sample_records();
        let blob = encode_segment(0, &records);
        // Flip a byte inside the FIRST record's body: intact records follow,
        // so this is data loss, not a tear.
        let mut corrupt = blob.clone();
        corrupt[HEADER_BYTES + 5] ^= 0xff;
        let err = decode_segment_prefix(&corrupt).unwrap_err();
        assert!(err.message.contains("interior corruption"), "{err}");
        // Flip the LAST byte (inside the final record's checksum): a tear.
        let mut torn = blob.clone();
        *torn.last_mut().unwrap() ^= 0xff;
        let prefix = decode_segment_prefix(&torn).unwrap();
        assert_eq!(prefix.records, records[..records.len() - 1]);
        assert!(prefix.torn.unwrap().message.contains("checksum mismatch"));
        // Wrong magic is refused outright.
        let mut bad = blob;
        bad[0] = b'X';
        assert!(decode_segment_prefix(&bad).unwrap_err().message.contains("magic"));
    }

    #[test]
    fn segment_sequences_check_continuity_and_final_only_tears() {
        let records = sample_records();
        let a = encode_segment(0, &records[..2]);
        let b = encode_segment(2, &records[2..]);
        let (all, torn) = decode_segments(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(all, records);
        assert!(torn.is_none());
        // A torn FINAL segment is fine; the same tear in a sealed one is not.
        let torn_b = &b[..b.len() - 3];
        let (prefix, torn) = decode_segments(&[a.clone(), torn_b.to_vec()]).unwrap();
        assert_eq!(prefix, records[..records.len() - 1]);
        assert!(torn.is_some());
        let torn_a = &a[..a.len() - 3];
        let err = decode_segments(&[torn_a.to_vec(), b.clone()]).unwrap_err();
        assert!(err.message.contains("not the final segment"), "{err}");
        // A gap in the sequence (missing segment) is a hard error.
        let err = decode_segments(&[b]).unwrap_err();
        assert!(err.message.contains("missing or reordered"), "{err}");
    }

    #[test]
    fn tail_decode_matches_full_decode_suffix_at_every_fence() {
        // 2-record segments over the 5 sample records: [0,1] [2,3] [4].
        let records = sample_records();
        let blobs =
            vec![encode_segment(0, &records[..2]), encode_segment(2, &records[2..4]), encode_segment(4, &records[4..])];
        for fence in 0..=records.len() as u64 + 2 {
            let (tail, torn) = decode_segment_tail(&blobs, fence).unwrap();
            assert!(torn.is_none());
            let expected = &records[(fence as usize).min(records.len())..];
            assert_eq!(tail, expected, "fence {fence}");
        }
        // A torn final segment still tears; the pre-fence sealed segments are
        // skipped without being decoded, so corruption *below* the fence in a
        // skipped segment's body goes unread (only its header is checked).
        let mut torn_blobs = blobs.clone();
        let last = torn_blobs.last_mut().unwrap();
        last.truncate(last.len() - 3);
        let (tail, torn) = decode_segment_tail(&torn_blobs, 3).unwrap();
        assert_eq!(tail, records[3..4]);
        assert!(torn.is_some());
        // Headers of skipped segments are still validated: bad magic is a
        // hard error, and a non-increasing base LSN (reordered segments) too.
        let mut bad = blobs.clone();
        bad[0][0] = b'X';
        assert!(decode_segment_tail(&bad, 4).unwrap_err().message.contains("magic"));
        let reordered = vec![blobs[1].clone(), blobs[0].clone(), blobs[2].clone()];
        assert!(decode_segment_tail(&reordered, 4).unwrap_err().message.contains("missing or reordered"));
    }

    #[test]
    fn wal_segment_arm_matches_text_arm() {
        // The two serialisation arms of the same log decode to identical
        // record vectors.
        let wal = Wal::with_segment_capacity(2);
        for r in sample_records() {
            wal.append(r);
        }
        let from_text = Wal::deserialize(&wal.serialize()).unwrap();
        let blobs = wal.serialize_segments();
        let views: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        let (from_binary, torn) = Wal::deserialize_segments(&views, 2).unwrap();
        assert!(torn.is_none());
        assert_eq!(from_text.records(), from_binary.records());
    }
}
