//! The replicated hot-set index (§6.1).
//!
//! Every database node keeps a small index with the primary keys of all hot
//! tuples and, for each, the owning switch plus the MAU stage / register
//! array / cell it was offloaded to. The index is consulted on every
//! transaction to decide whether it is hot, cold or warm, to route a hot
//! transaction to its owning switch, and to build the switch packet
//! (including the `is_multipass` flag and the pipeline-lock demand) without
//! asking any switch. In this reproduction the "replica" is a shared
//! immutable structure built once after offloading.

use p4db_common::sync::unpoison;
use p4db_common::{SwitchId, TupleId};
use p4db_switch::{ControlPlane, RegisterSlot};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Immutable hot-set index, shared by all workers of all nodes. Each hot
/// tuple maps to exactly one `(switch, register slot)` pair.
#[derive(Clone, Debug, Default)]
pub struct HotSetIndex {
    map: HashMap<TupleId, (SwitchId, RegisterSlot)>,
}

impl HotSetIndex {
    /// An empty index: every tuple is cold (the No-Switch / LM-Switch data
    /// path still consults it for hot-tuple *identity* in LM mode, see
    /// [`Self::from_tuples`]).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the index from a single switch control plane after offloading
    /// (the single-switch topology: everything owned by switch 0).
    pub fn from_control_plane(cp: &ControlPlane) -> Self {
        Self::from_control_planes([(SwitchId(0), cp)])
    }

    /// Builds the index from the control planes of a multi-switch topology:
    /// each switch's placements enter under its id. Placement maps are
    /// disjoint by construction (the layout assigns every hot tuple to one
    /// switch), so insertion order does not matter.
    pub fn from_control_planes<'a>(cps: impl IntoIterator<Item = (SwitchId, &'a ControlPlane)>) -> Self {
        let mut map = HashMap::new();
        for (switch, cp) in cps {
            for (tuple, slot) in cp.placements() {
                map.insert(tuple, (switch, slot));
            }
        }
        HotSetIndex { map }
    }

    /// Builds an index that only records hot-tuple identity (used by the
    /// LM-Switch baseline, where hot tuples stay on the nodes but their locks
    /// are managed by the switch). The register slots are synthetic.
    pub fn from_tuples(tuples: impl IntoIterator<Item = TupleId>) -> Self {
        HotSetIndex { map: tuples.into_iter().map(|t| (t, (SwitchId(0), RegisterSlot::new(0, 0, 0)))).collect() }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether a tuple is part of the offloaded hot set.
    #[inline]
    pub fn is_hot(&self, tuple: TupleId) -> bool {
        self.map.contains_key(&tuple)
    }

    /// The register slot of a hot tuple.
    #[inline]
    pub fn slot(&self, tuple: TupleId) -> Option<RegisterSlot> {
        self.map.get(&tuple).map(|&(_, slot)| slot)
    }

    /// The switch a hot tuple is offloaded to.
    #[inline]
    pub fn owner(&self, tuple: TupleId) -> Option<SwitchId> {
        self.map.get(&tuple).map(|&(s, _)| s)
    }

    /// Both coordinates at once: `(owning switch, register slot)`.
    #[inline]
    pub fn entry(&self, tuple: TupleId) -> Option<(SwitchId, RegisterSlot)> {
        self.map.get(&tuple).copied()
    }

    /// Iterates all `(tuple, slot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, RegisterSlot)> + '_ {
        self.map.iter().map(|(t, &(_, s))| (*t, s))
    }

    /// Iterates all `(tuple, switch, slot)` triples.
    pub fn iter_with_owner(&self) -> impl Iterator<Item = (TupleId, SwitchId, RegisterSlot)> + '_ {
        self.map.iter().map(|(t, &(sw, s))| (*t, sw, s))
    }

    /// A stable lock id for a hot tuple, used by the LM-Switch baseline.
    pub fn lock_id(tuple: TupleId) -> u64 {
        (tuple.table.0 as u64) << 48 ^ tuple.key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// The cluster-wide slot for the current hot-set index.
///
/// The index itself stays immutable (workers snapshot it once per
/// transaction so classification and packet construction always agree), but
/// the *slot* is swappable: a mid-run switch re-offload — crash recovery
/// that places the hot set into fresh register slots — publishes the rebuilt
/// index here and every subsequent transaction picks it up. This models the
/// control plane pushing an updated index replica to the nodes (§6.1).
#[derive(Debug)]
pub struct HotIndexCell {
    inner: RwLock<Arc<HotSetIndex>>,
}

impl HotIndexCell {
    pub fn new(index: HotSetIndex) -> Self {
        HotIndexCell { inner: RwLock::new(Arc::new(index)) }
    }

    /// The current index. Cheap (an `Arc` clone under a read lock); callers
    /// executing a transaction take one snapshot and use it throughout.
    pub fn load(&self) -> Arc<HotSetIndex> {
        let guard = unpoison(self.inner.read());
        Arc::clone(&guard)
    }

    /// Publishes a new index, returning the previous one.
    pub fn swap(&self, index: Arc<HotSetIndex>) -> Arc<HotSetIndex> {
        let mut guard = unpoison(self.inner.write());
        std::mem::replace(&mut *guard, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{TableId, Value};
    use p4db_switch::{RegisterMemory, SwitchConfig};
    use std::sync::Arc;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    #[test]
    fn from_control_plane_reflects_offloads() {
        let config = SwitchConfig::tiny();
        let memory = Arc::new(RegisterMemory::new(config));
        let mut cp = ControlPlane::new(config, memory);
        cp.offload_into(t(1), 0, 0, Value::scalar(0).byte_width(), 5).unwrap();
        cp.offload_into(t(2), 1, 1, 8, 7).unwrap();
        let idx = HotSetIndex::from_control_plane(&cp);
        assert_eq!(idx.len(), 2);
        assert!(idx.is_hot(t(1)));
        assert!(!idx.is_hot(t(3)));
        let slot = idx.slot(t(2)).unwrap();
        assert_eq!((slot.stage, slot.array), (1, 1));
        assert_eq!(idx.owner(t(1)), Some(SwitchId(0)), "single-switch topologies own everything at switch 0");
    }

    #[test]
    fn from_control_planes_records_per_switch_ownership() {
        let config = SwitchConfig::tiny();
        let mut cps = Vec::new();
        for keys in [[1u64, 2], [3, 4]] {
            let memory = Arc::new(RegisterMemory::new(config));
            let mut cp = ControlPlane::new(config, memory);
            for k in keys {
                cp.offload_into(t(k), (k % 4) as u8, 0, 8, 0).unwrap();
            }
            cps.push(cp);
        }
        let idx = HotSetIndex::from_control_planes(cps.iter().enumerate().map(|(i, cp)| (SwitchId(i as u16), cp)));
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.owner(t(1)), Some(SwitchId(0)));
        assert_eq!(idx.owner(t(2)), Some(SwitchId(0)));
        assert_eq!(idx.owner(t(3)), Some(SwitchId(1)));
        assert_eq!(idx.owner(t(4)), Some(SwitchId(1)));
        assert_eq!(idx.owner(t(9)), None);
        let (sw, slot) = idx.entry(t(3)).unwrap();
        assert_eq!(sw, SwitchId(1));
        assert_eq!(slot.stage, 3);
        assert_eq!(idx.iter_with_owner().filter(|&(_, sw, _)| sw == SwitchId(1)).count(), 2);
    }

    #[test]
    fn from_tuples_marks_identity_only() {
        let idx = HotSetIndex::from_tuples([t(1), t(2)]);
        assert!(idx.is_hot(t(1)));
        assert!(idx.slot(t(1)).is_some());
        assert!(!idx.is_hot(t(9)));
    }

    #[test]
    fn empty_index_classifies_everything_cold() {
        let idx = HotSetIndex::empty();
        assert!(idx.is_empty());
        assert!(!idx.is_hot(t(0)));
    }

    #[test]
    fn hot_index_cell_swaps_atomically() {
        let cell = HotIndexCell::new(HotSetIndex::from_tuples([t(1)]));
        let before = cell.load();
        assert!(before.is_hot(t(1)));
        let old = cell.swap(Arc::new(HotSetIndex::from_tuples([t(2)])));
        assert!(old.is_hot(t(1)), "swap returns the previous index");
        assert!(cell.load().is_hot(t(2)));
        assert!(!cell.load().is_hot(t(1)));
        // Snapshots taken before the swap stay valid.
        assert!(before.is_hot(t(1)));
    }

    #[test]
    fn lock_ids_are_stable_and_distinct_enough() {
        assert_eq!(HotSetIndex::lock_id(t(5)), HotSetIndex::lock_id(t(5)));
        assert_ne!(HotSetIndex::lock_id(t(5)), HotSetIndex::lock_id(t(6)));
        assert_ne!(HotSetIndex::lock_id(TupleId::new(TableId(1), 5)), HotSetIndex::lock_id(t(5)));
    }
}
