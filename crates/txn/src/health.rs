//! Per-switch health accounting: the circuit breaker that guards the hot
//! path and the in-doubt ledger consumed by the resolver.
//!
//! The paper's premise — routing hot transactions through an in-network
//! accelerator — makes each switch a single point of failure for its slice
//! of the hot set. This module is the detection half of the self-healing
//! story: workers feed per-switch success/failure observations into a
//! deterministic Closed → Open → Half-Open breaker
//! ([`BreakerCore`]), and every in-doubt outcome (intent logged, reply
//! lost) is parked in a ledger ([`InDoubtEntry`]) for definitive
//! resolution against the switch's audit log later.
//!
//! Division of labour:
//! - **This module** is pure bookkeeping — no I/O, no knowledge of the
//!   fabric. That keeps the breaker state machine property-testable.
//! - The **executor** consults [`SwitchHealth::is_open`] before sending a
//!   hot packet (fast-fail, no intent in flight) and
//!   [`SwitchHealth::is_degraded`] at classification (demote to the host
//!   2PL path once degraded mode is up).
//! - The **supervisor** (core crate) drives probes, degrade, recovery and
//!   re-admission, closing the loop.

use crate::request::TxnOp;
use p4db_common::sync::unpoison;
use p4db_common::{NodeId, SwitchId, TxnId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Circuit-breaker knobs. Deterministic thresholds — no wall-clock decay —
/// so chaos runs reproduce bit-for-bit from a seed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BreakerConfig {
    /// Master switch. Disabled (the default) short-circuits every check to
    /// "healthy": byte-compatible with the pre-breaker behaviour.
    pub enabled: bool,
    /// Consecutive switch failures (timeouts / in-doubt outcomes) that trip
    /// the breaker Closed → Open.
    pub trip_threshold: u32,
    /// Consecutive successful probes in Half-Open required before the
    /// supervisor may close the breaker and re-admit traffic.
    pub close_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { enabled: false, trip_threshold: 4, close_threshold: 3 }
    }
}

impl BreakerConfig {
    /// Enabled with the default thresholds.
    pub fn enabled() -> Self {
        BreakerConfig { enabled: true, ..BreakerConfig::default() }
    }
}

/// The three breaker states.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BreakerState {
    /// Healthy: hot traffic flows to the switch.
    Closed,
    /// Tripped: hot sends fast-fail, the supervisor degrades and probes.
    Open,
    /// A probe got through: counting consecutive probe successes toward
    /// re-admission.
    HalfOpen,
}

/// Pure breaker state machine. All transitions are driven by explicit
/// observations — no timers — so the whole space is enumerable in tests.
#[derive(Clone, Debug)]
pub struct BreakerCore {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    consecutive_probe_oks: u32,
    /// Bumped on every close: lets late observations from before a recovery
    /// be attributed to the right incarnation.
    generation: u64,
}

impl BreakerCore {
    pub fn new(config: BreakerConfig) -> Self {
        BreakerCore {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            consecutive_probe_oks: 0,
            generation: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A switch interaction failed (timeout or in-doubt). Returns `true`
    /// exactly when this observation trips the breaker (a transition into
    /// `Open` from a non-`Open` state).
    pub fn on_failure(&mut self) -> bool {
        if !self.config.enabled {
            return false;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.trip_threshold {
                    self.state = BreakerState::Open;
                    self.consecutive_failures = 0;
                    self.consecutive_probe_oks = 0;
                    true
                } else {
                    false
                }
            }
            // A real transaction failing during half-open re-trips
            // immediately: the recovery was premature.
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.consecutive_probe_oks = 0;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// A switch interaction succeeded: a healthy reply clears the failure
    /// streak (only consecutive failures trip).
    pub fn on_success(&mut self) {
        if self.state == BreakerState::Closed {
            self.consecutive_failures = 0;
        }
    }

    /// A heartbeat probe was answered. Open → Half-Open (the answered probe
    /// counts as the first success); in Half-Open the streak grows.
    pub fn probe_ok(&mut self) {
        match self.state {
            BreakerState::Open => {
                self.state = BreakerState::HalfOpen;
                self.consecutive_probe_oks = 1;
            }
            BreakerState::HalfOpen => self.consecutive_probe_oks += 1,
            BreakerState::Closed => {}
        }
    }

    /// A heartbeat probe went unanswered: any half-open progress is lost.
    pub fn probe_failed(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Open;
            self.consecutive_probe_oks = 0;
        }
    }

    /// Whether the half-open streak has reached the close threshold.
    pub fn ready_to_close(&self) -> bool {
        self.state == BreakerState::HalfOpen && self.consecutive_probe_oks >= self.config.close_threshold
    }

    /// Closes the breaker (re-admission complete) and starts a new
    /// generation. Idempotent when already closed.
    pub fn close(&mut self) {
        if self.state != BreakerState::Closed {
            self.state = BreakerState::Closed;
            self.consecutive_failures = 0;
            self.consecutive_probe_oks = 0;
            self.generation += 1;
        }
    }
}

/// One unresolved in-doubt outcome: the intent reached the coordinator WAL
/// (record index `logged_at` on `node`), the packet went out, and no reply
/// came back. The switch either executed it or never saw it — the resolver
/// finds out which.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InDoubtEntry {
    pub switch: SwitchId,
    pub txn: TxnId,
    pub node: NodeId,
    /// Coordinator WAL length right after the intent was appended. Compared
    /// against the recovery fence to detect intents already folded into a
    /// WAL-reconstruction of the switch state.
    pub logged_at: usize,
    /// The sub-transaction's operation footprint, self-contained
    /// (`operand_from` remapped to positions within this list). When the
    /// switch confirms the intent never executed, the resolver replays these
    /// as an ordinary host transaction.
    pub ops: Vec<TxnOp>,
}

/// Shared per-switch health state, owned by `EngineShared`. Hot-path reads
/// (`is_open` / `is_degraded`) are single atomic loads; state transitions
/// take the per-switch breaker mutex.
pub struct SwitchHealth {
    config: BreakerConfig,
    breakers: Vec<Mutex<BreakerCore>>,
    /// Lock-free mirror of `state == Open || state == HalfOpen` per switch —
    /// consulted before every hot send.
    open: Vec<AtomicBool>,
    /// Set once degraded mode is up (host rows reconstructed, index
    /// swapped): only then does classification demote the switch's tuples.
    degraded: Vec<AtomicBool>,
    /// In-doubt outcomes observed per switch (monotonic; resolution does not
    /// decrement — the resolver reports its own outcome counts).
    in_doubt: Vec<AtomicU64>,
    trips: AtomicU64,
    ledger: Mutex<Vec<InDoubtEntry>>,
    /// Per-switch recovery fence: the per-node WAL lengths captured when the
    /// switch's state was last WAL-reconstructed. Intents logged strictly
    /// before the fence are already folded into the reconstruction.
    fences: Mutex<Vec<Vec<usize>>>,
}

impl SwitchHealth {
    pub fn new(num_switches: usize, num_nodes: usize, config: BreakerConfig) -> Self {
        SwitchHealth {
            config,
            breakers: (0..num_switches).map(|_| Mutex::new(BreakerCore::new(config))).collect(),
            open: (0..num_switches).map(|_| AtomicBool::new(false)).collect(),
            degraded: (0..num_switches).map(|_| AtomicBool::new(false)).collect(),
            in_doubt: (0..num_switches).map(|_| AtomicU64::new(0)).collect(),
            trips: AtomicU64::new(0),
            ledger: Mutex::new(Vec::new()),
            fences: Mutex::new(vec![vec![0; num_nodes]; num_switches]),
        }
    }

    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    pub fn num_switches(&self) -> usize {
        self.breakers.len()
    }

    /// Whether the breaker is open (or half-open): hot sends must fast-fail.
    pub fn is_open(&self, switch: SwitchId) -> bool {
        self.config.enabled && self.open[switch.index()].load(Ordering::Acquire)
    }

    /// Whether degraded mode is up for this switch: classification demotes
    /// its tuples to the host path.
    pub fn is_degraded(&self, switch: SwitchId) -> bool {
        self.config.enabled && self.degraded[switch.index()].load(Ordering::Acquire)
    }

    pub fn set_degraded(&self, switch: SwitchId, value: bool) {
        self.degraded[switch.index()].store(value, Ordering::Release);
    }

    /// Records a failed switch interaction. Returns `true` when this
    /// observation trips the breaker (the caller owns the open→degrade
    /// follow-up).
    pub fn record_failure(&self, switch: SwitchId) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut breaker = unpoison(self.breakers[switch.index()].lock());
        let tripped = breaker.on_failure();
        if tripped {
            self.open[switch.index()].store(true, Ordering::Release);
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
        tripped
    }

    /// Records a healthy switch reply (clears the failure streak).
    pub fn record_success(&self, switch: SwitchId) {
        if !self.config.enabled {
            return;
        }
        unpoison(self.breakers[switch.index()].lock()).on_success();
    }

    /// Feeds a probe outcome into the breaker.
    pub fn probe_outcome(&self, switch: SwitchId, answered: bool) {
        let mut breaker = unpoison(self.breakers[switch.index()].lock());
        if answered {
            breaker.probe_ok();
        } else {
            breaker.probe_failed();
        }
    }

    /// Whether the half-open streak has earned re-admission.
    pub fn ready_to_close(&self, switch: SwitchId) -> bool {
        unpoison(self.breakers[switch.index()].lock()).ready_to_close()
    }

    /// Closes the breaker after re-admission: hot sends flow again.
    pub fn close(&self, switch: SwitchId) {
        let mut breaker = unpoison(self.breakers[switch.index()].lock());
        breaker.close();
        self.open[switch.index()].store(false, Ordering::Release);
    }

    pub fn state(&self, switch: SwitchId) -> BreakerState {
        unpoison(self.breakers[switch.index()].lock()).state()
    }

    pub fn generation(&self, switch: SwitchId) -> u64 {
        unpoison(self.breakers[switch.index()].lock()).generation()
    }

    /// Total breaker trips across all switches.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Parks an in-doubt outcome for later resolution.
    pub fn note_in_doubt(&self, entry: InDoubtEntry) {
        self.in_doubt[entry.switch.index()].fetch_add(1, Ordering::Relaxed);
        unpoison(self.ledger.lock()).push(entry);
    }

    /// In-doubt outcomes observed so far, per switch.
    pub fn in_doubt_per_switch(&self) -> Vec<u64> {
        self.in_doubt.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Drains the unresolved ledger (the resolver re-parks what it cannot
    /// settle via [`SwitchHealth::park_unresolved`]).
    pub fn take_ledger(&self) -> Vec<InDoubtEntry> {
        std::mem::take(&mut *unpoison(self.ledger.lock()))
    }

    /// Number of entries currently awaiting resolution.
    pub fn ledger_len(&self) -> usize {
        unpoison(self.ledger.lock()).len()
    }

    /// Returns entries the resolver could not settle to the ledger.
    pub fn park_unresolved(&self, entries: impl IntoIterator<Item = InDoubtEntry>) {
        unpoison(self.ledger.lock()).extend(entries);
    }

    /// Records the per-node WAL fence captured when `switch`'s state was
    /// WAL-reconstructed (degrade or recovery): intents logged before the
    /// fence are already folded into the reconstruction.
    pub fn set_fence(&self, switch: SwitchId, per_node_wal_lens: Vec<usize>) {
        unpoison(self.fences.lock())[switch.index()] = per_node_wal_lens;
    }

    /// The fence for (`switch`, `node`); 0 until a reconstruction happens.
    pub fn fence(&self, switch: SwitchId, node: NodeId) -> usize {
        unpoison(self.fences.lock())[switch.index()].get(node.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(trip: u32, close: u32) -> BreakerConfig {
        BreakerConfig { enabled: true, trip_threshold: trip, close_threshold: close }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = BreakerCore::new(cfg(3, 2));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(b.on_failure(), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.on_failure(), "already open: no second trip signal");

        b.probe_ok();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.ready_to_close(), "one probe, close threshold two");
        b.probe_ok();
        assert!(b.ready_to_close());
        b.close();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let mut b = BreakerCore::new(cfg(3, 1));
        for _ in 0..100 {
            assert!(!b.on_failure());
            assert!(!b.on_failure());
            b.on_success();
        }
        assert_eq!(b.state(), BreakerState::Closed, "never three in a row: never trips");
    }

    #[test]
    fn halfopen_failure_or_failed_probe_reopens_and_resets_the_streak() {
        let mut b = BreakerCore::new(cfg(1, 3));
        assert!(b.on_failure());
        b.probe_ok();
        b.probe_ok();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.probe_failed();
        assert_eq!(b.state(), BreakerState::Open, "failed probe loses all half-open progress");

        b.probe_ok();
        assert!(b.on_failure(), "a real txn failure during half-open re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        b.probe_ok();
        assert!(!b.ready_to_close(), "streak restarted from one");
        b.probe_ok();
        b.probe_ok();
        assert!(b.ready_to_close());
    }

    /// Exhaustive property sweep: for every (trip, close) in a grid and every
    /// observation sequence of length 8 drawn from a 4-symbol alphabet, the
    /// breaker obeys its invariants. Deterministic — no randomness.
    #[test]
    fn breaker_property_sweep_holds_invariants() {
        #[derive(Copy, Clone, Debug)]
        enum Obs {
            Fail,
            Ok,
            ProbeOk,
            ProbeFail,
        }
        const ALPHABET: [Obs; 4] = [Obs::Fail, Obs::Ok, Obs::ProbeOk, Obs::ProbeFail];
        const LEN: usize = 8;

        for trip in 1..=3u32 {
            for close in 1..=3u32 {
                // Enumerate all 4^LEN observation sequences via counting.
                for seq_id in 0..4usize.pow(LEN as u32) {
                    let mut b = BreakerCore::new(cfg(trip, close));
                    let mut trips = 0u64;
                    let mut id = seq_id;
                    for _ in 0..LEN {
                        let obs = ALPHABET[id % 4];
                        id /= 4;
                        let before = b.state();
                        match obs {
                            Obs::Fail => {
                                let tripped = b.on_failure();
                                // The trip signal fires iff we entered Open.
                                assert_eq!(tripped, before != BreakerState::Open && b.state() == BreakerState::Open);
                                if tripped {
                                    trips += 1;
                                }
                            }
                            Obs::Ok => {
                                b.on_success();
                                assert_eq!(b.state(), before, "on_success never changes state");
                            }
                            Obs::ProbeOk => {
                                b.probe_ok();
                                match before {
                                    BreakerState::Open => assert_eq!(b.state(), BreakerState::HalfOpen),
                                    s => assert_eq!(b.state(), s),
                                }
                            }
                            Obs::ProbeFail => {
                                b.probe_failed();
                                match before {
                                    BreakerState::HalfOpen => assert_eq!(b.state(), BreakerState::Open),
                                    s => assert_eq!(b.state(), s),
                                }
                            }
                        }
                        // ready_to_close implies HalfOpen, always.
                        if b.ready_to_close() {
                            assert_eq!(b.state(), BreakerState::HalfOpen);
                        }
                        // Generation only moves on close().
                        assert_eq!(b.generation(), 0);
                    }
                    // Closing from any state is safe and lands Closed.
                    let was_closed = b.state() == BreakerState::Closed;
                    b.close();
                    assert_eq!(b.state(), BreakerState::Closed);
                    assert_eq!(b.generation(), if was_closed { 0 } else { 1 });
                    let _ = trips;
                }
            }
        }
    }

    #[test]
    fn disabled_config_never_trips_or_opens() {
        let health = SwitchHealth::new(2, 2, BreakerConfig::default());
        let s = SwitchId(0);
        for _ in 0..1000 {
            assert!(!health.record_failure(s));
        }
        assert!(!health.is_open(s));
        assert!(!health.is_degraded(s));
        assert_eq!(health.trips(), 0);
    }

    #[test]
    fn switch_health_tracks_per_switch_state_independently() {
        let health = SwitchHealth::new(2, 3, cfg(2, 1));
        let (a, b) = (SwitchId(0), SwitchId(1));
        assert!(!health.record_failure(a));
        assert!(health.record_failure(a));
        assert!(health.is_open(a));
        assert!(!health.is_open(b), "switch 1 unaffected");
        assert_eq!(health.trips(), 1);

        health.probe_outcome(a, true);
        assert_eq!(health.state(a), BreakerState::HalfOpen);
        assert!(health.is_open(a), "half-open still fast-fails real traffic");
        assert!(health.ready_to_close(a));
        health.close(a);
        assert!(!health.is_open(a));
        assert_eq!(health.generation(a), 1);
    }

    #[test]
    fn ledger_and_fences_round_trip() {
        let health = SwitchHealth::new(1, 2, cfg(1, 1));
        let entry =
            InDoubtEntry { switch: SwitchId(0), txn: TxnId(7), node: NodeId(1), logged_at: 42, ops: Vec::new() };
        health.note_in_doubt(entry.clone());
        assert_eq!(health.in_doubt_per_switch(), vec![1]);
        assert_eq!(health.ledger_len(), 1);
        let drained = health.take_ledger();
        assert_eq!(drained, vec![entry]);
        assert_eq!(health.ledger_len(), 0);
        health.park_unresolved(drained);
        assert_eq!(health.ledger_len(), 1);
        assert_eq!(health.in_doubt_per_switch(), vec![1], "re-parking does not double-count");

        assert_eq!(health.fence(SwitchId(0), NodeId(1)), 0);
        health.set_fence(SwitchId(0), vec![10, 50]);
        assert_eq!(health.fence(SwitchId(0), NodeId(0)), 10);
        assert_eq!(health.fence(SwitchId(0), NodeId(1)), 50);
    }
}
