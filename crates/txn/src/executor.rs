//! The distributed transaction engine of the host DBMS, integrating the
//! switch as an "additional database node" (§6).
//!
//! Every worker thread owns a [`Worker`] handle and calls [`Worker::execute`]
//! for each transaction. The engine classifies the request's operations into
//! hot (offloaded to the switch) and cold (host) sets and runs one of three
//! flows:
//!
//! * **hot** — all operations hot: a single switch transaction, no host locks
//!   at all (§6.1);
//! * **cold** — no hot operations: classic 2PL (NO_WAIT / WAIT_DIE) with 2PC
//!   for distributed transactions (§3.2);
//! * **warm** — a mix: the cold part runs under 2PL up to the point where it
//!   can no longer abort, then the switch sub-transaction is sent, then the
//!   cold part commits; the switch multicasts the decision for distributed
//!   warm transactions (§6.2, Fig 8/10).
//!
//! The LM-Switch baseline (switch as central lock manager) and the
//! Chiller-style contention-centric re-ordering (Fig 18b) are variations of
//! the cold path selected through [`EngineConfig`].

use crate::health::{InDoubtEntry, SwitchHealth};
use crate::hotset::{HotIndexCell, HotSetIndex};
use crate::request::{OpKind, TxnOp, TxnOutcome, TxnRequest};
use crate::switch_client::build_switch_txn;
use p4db_common::simtime::Stopwatch;
use p4db_common::stats::{Phase, TxnClass, WorkerStats};
use p4db_common::{
    AbortReason, CcScheme, Error, GlobalTxnId, NodeId, Result, SwitchId, SystemMode, TupleId, TxnId, Value, WorkerId,
};
use p4db_net::{BatchRecvOutcome, EndpointId, Fabric, LatencyModel, Mailbox, RecvOutcome};
use p4db_storage::{LockMode, LogRecord, MvccState, NodeStorage, RowHandle, SnapshotSlot};
use p4db_switch::{SwitchConfig, SwitchMessage, TxnHeader, TxnReply};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine-wide configuration (immutable during a run).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub mode: SystemMode,
    pub cc: CcScheme,
    pub switch_config: SwitchConfig,
    /// Chiller-style contention-centric execution for the host path:
    /// contended (hot-set) tuples are accessed last and their locks released
    /// first (used only by the Fig 18b comparison).
    pub chiller: bool,
    /// Whether switch transactions are logged to the WAL (§6.1). On by
    /// default; the microbenchmarks can disable it to isolate data-path cost.
    pub log_switch_txns: bool,
    /// How long a worker waits for a switch reply before giving up on it.
    /// Generous by default; fault-injection runs shrink it so dropped
    /// packets surface quickly.
    pub switch_timeout: Duration,
    /// What a switch-reply timeout means. With message faults active a
    /// timeout is an expected lost packet: the transaction commits *in
    /// doubt* (its intent is logged, the switch cannot abort). Without
    /// faults nothing can be lost on the wire, so a timeout is a wedged
    /// switch and surfaces loudly as [`p4db_common::Error::Disconnected`].
    pub in_doubt_on_timeout: bool,
    /// Hot-path batching on the worker side: up to this many queued all-hot
    /// transactions are pipelined per [`Worker::execute_batch`] call — their
    /// intents group-committed in one WAL write, their packets sent as one
    /// fabric frame, their replies collected together, and their results
    /// group-committed again. `1` disables pipelining and reproduces the
    /// one-transaction-at-a-time behaviour exactly.
    pub batch_size: u16,
    /// Runs the *seed's* node-local hot path instead of the sharded one:
    /// locks acquired at access time, one table-map lookup per access, one
    /// lock-table mutex acquisition per released tuple. Pair with
    /// single-shard storage (`ClusterConfig::single_latch` sets both) to
    /// reproduce the pre-sharding engine — the baseline arm of the
    /// node-scaling benchmark and of the sharding differential suite.
    pub single_latch: bool,
    /// In-doubt resolver retry budget: how many times a status query to the
    /// switch is retried before an entry is re-parked as unresolved.
    pub resolver_retries: u32,
}

impl EngineConfig {
    pub fn new(mode: SystemMode, cc: CcScheme, switch_config: SwitchConfig) -> Self {
        EngineConfig {
            mode,
            cc,
            switch_config,
            chiller: false,
            log_switch_txns: true,
            switch_timeout: Duration::from_secs(30),
            in_doubt_on_timeout: false,
            batch_size: 1,
            single_latch: false,
            resolver_retries: 3,
        }
    }
}

/// State shared by every worker of the cluster.
pub struct EngineShared {
    pub nodes: Vec<Arc<NodeStorage>>,
    pub latency: LatencyModel,
    pub fabric: Fabric<SwitchMessage>,
    /// The replicated hot-set index, swappable for mid-run re-offload
    /// recovery. Workers snapshot it once per transaction.
    pub hot_index: HotIndexCell,
    pub config: EngineConfig,
    /// MVCC plumbing of the snapshot read path: the commit clock that stamps
    /// row versions, the registry of active snapshots, and the version-chain
    /// cap. One logical clock serves the whole cluster (the synchronized-
    /// clock assumption the epoch machinery already makes). Unused — never
    /// ticked, never read — when no read-only transactions run.
    pub mvcc: MvccState,
    /// Per-switch circuit breakers, degraded-mode flags and the in-doubt
    /// ledger. With the breaker disabled (the default) every check
    /// short-circuits to "healthy" — byte-compatible with the pre-breaker
    /// engine.
    pub health: SwitchHealth,
}

impl EngineShared {
    pub fn node(&self, id: NodeId) -> &Arc<NodeStorage> {
        &self.nodes[id.index()]
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Result of one switch sub-transaction as seen by the issuing worker.
enum SwitchSubTxn {
    /// The reply arrived: GID plus per-original-op result values.
    Completed { gid: GlobalTxnId, values: HashMap<usize, u64> },
    /// No reply within the timeout: the packet or its reply was lost. The
    /// intent is logged, so the transaction counts as committed; recovery
    /// orders it from the logs.
    InDoubt,
}

/// Undo and footprint state of one host (sub-)transaction. One instance
/// lives inside each [`Worker`] as reusable scratch: `clear()` keeps every
/// vector's capacity, so a steady-state host transaction allocates nothing
/// per operation.
#[derive(Default)]
struct HostTxnState {
    /// Every held host lock: home node, tuple, and the admission-time
    /// [`TupleId::mix`] hash (reused by the grouped per-shard release).
    locks: Vec<(NodeId, TupleId, u64)>,
    /// `(row handle, before image)` pairs, undone in reverse on abort — no
    /// table lookups on the rollback path.
    undo: Vec<(RowHandle, Value)>,
    inserted: Vec<(NodeId, TupleId)>,
    cold_writes: Vec<LogRecord>,
    /// LM-Switch: lock ids currently held on the switch lock manager.
    switch_locks: Vec<(u64, bool)>,
    /// Admission-resolved row handles, aligned with `order`; `None` for
    /// inserting operations (their rows do not exist yet).
    resolved: Vec<Option<RowHandle>>,
    /// Cold operation indices in execution order (Chiller may reorder).
    order: Vec<usize>,
    /// Per-node `(hash, tuple)` scratch of the grouped lock release.
    release_scratch: Vec<(u64, TupleId)>,
    /// `(row handle, after word)` of every host write, in operation order —
    /// the versions to install at commit, stamped with one reserved commit
    /// timestamp while the exclusive locks are still held. (Sharded path
    /// only; the single-latch seed arm stays version-free.)
    installs: Vec<(RowHandle, u64)>,
}

impl HostTxnState {
    fn clear(&mut self) {
        self.locks.clear();
        self.undo.clear();
        self.inserted.clear();
        self.cold_writes.clear();
        self.switch_locks.clear();
        self.resolved.clear();
        self.order.clear();
        self.release_scratch.clear();
        self.installs.clear();
    }
}

/// A per-thread handle into the transaction engine.
pub struct Worker {
    shared: Arc<EngineShared>,
    node: NodeId,
    id: WorkerId,
    endpoint: EndpointId,
    mailbox: Mailbox<SwitchMessage>,
    seq: u32,
    token: u64,
    /// Reusable host-transaction scratch (see [`HostTxnState`]).
    scratch: HostTxnState,
    /// Reusable classification buffers (hot / cold operation indices).
    scratch_hot: Vec<usize>,
    scratch_cold: Vec<usize>,
    /// This worker's slot in the snapshot registry: announces the snapshot
    /// of an in-flight read-only transaction to the version-chain GC.
    snapshot_slot: SnapshotSlot,
}

impl Worker {
    /// Creates the worker and registers its response endpoint on the fabric.
    pub fn new(shared: Arc<EngineShared>, node: NodeId, id: WorkerId) -> Self {
        let endpoint = EndpointId::Worker(node, id);
        let mailbox = shared.fabric.register(endpoint);
        let snapshot_slot = shared.mvcc.snapshots.register();
        Worker {
            shared,
            node,
            id,
            endpoint,
            mailbox,
            seq: 0,
            token: 0,
            scratch: HostTxnState::default(),
            scratch_hot: Vec::new(),
            scratch_cold: Vec::new(),
            snapshot_slot,
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn id(&self) -> WorkerId {
        self.id
    }

    pub fn shared(&self) -> &Arc<EngineShared> {
        &self.shared
    }

    fn next_txn_id(&mut self) -> TxnId {
        self.seq = self.seq.wrapping_add(1);
        TxnId::compose(self.seq, self.node, self.id)
    }

    fn next_token(&mut self) -> u64 {
        self.token = self.token.wrapping_add(1);
        self.token
    }

    /// Executes one transaction attempt. Aborts are returned as
    /// `Err(Error::Abort(_))`; the caller (worker loop) decides whether to
    /// retry. The hot-set index is snapshotted once here, so classification,
    /// packet construction and Chiller ordering always agree even if a
    /// re-offload swaps the index mid-transaction.
    pub fn execute(&mut self, req: &TxnRequest, stats: &mut WorkerStats) -> Result<TxnOutcome> {
        if req.is_empty() {
            return Ok(TxnOutcome {
                class: TxnClass::Cold,
                results: Vec::new(),
                gid: None,
                in_doubt: false,
                snapshot: None,
            });
        }
        let index = self.shared.hot_index.load();
        // Declared read-only: try the lock-free snapshot path first. The
        // single-latch seed arm has no version chains, so it keeps the
        // seed's locking reads; an ineligible request (a non-`Read`
        // operation, or a tuple offloaded to a switch whose host row is
        // therefore stale) falls through to the locking path below.
        if req.read_only && !self.shared.config.single_latch {
            if let Some(outcome) = self.try_execute_snapshot(req, &index, stats)? {
                return Ok(outcome);
            }
        }
        if self.shared.config.single_latch {
            // Seed shape: classification buffers allocated per transaction.
            let (hot, cold, demoted) = self.classify(req, &index);
            stats.degraded_hot += demoted;
            return match (hot.is_empty(), cold.is_empty()) {
                // All-hot *and* single-owner: the abort-free switch path. A
                // hot set spanning two switches has no single pipeline that
                // can execute it, so it falls back to the host path below.
                (false, true) if !Self::spans_switches(req, &hot, &index) => self.execute_hot(req, &hot, &index, stats),
                (true, _) => self.execute_host(req, &[], &cold, &index, stats),
                _ => self.execute_host(req, &hot, &cold, &index, stats),
            };
        }
        // Sharded path: classification reuses the worker's buffers.
        let mut hot = std::mem::take(&mut self.scratch_hot);
        let mut cold = std::mem::take(&mut self.scratch_cold);
        stats.degraded_hot += self.classify_into(req, &index, &mut hot, &mut cold);
        let result = match (hot.is_empty(), cold.is_empty()) {
            (false, true) if !Self::spans_switches(req, &hot, &index) => self.execute_hot(req, &hot, &index, stats),
            (true, _) => self.execute_host(req, &[], &cold, &index, stats),
            _ => self.execute_host(req, &hot, &cold, &index, stats),
        };
        self.scratch_hot = hot;
        self.scratch_cold = cold;
        result
    }

    /// The lock-free snapshot read path (read-only transactions): picks a
    /// snapshot timestamp at admission, announces it in the worker's
    /// [`SnapshotSlot`] (so GC never reclaims a version it still needs), and
    /// reads each tuple's newest version at or below the snapshot — **zero
    /// lock-table interaction, zero 2PC, zero per-op allocations** (the one
    /// allocation is the per-transaction results vector, exactly like the
    /// locking path). Remote-home reads still pay the node round trip, as
    /// the locking path does.
    ///
    /// Returns `Ok(None)` when the request is not eligible: an operation is
    /// not a plain `Read`, or a tuple is offloaded to a switch (its host row
    /// is stale while the switch owns it) — those fall back to the locking
    /// path, still correct, just not lock-free.
    fn try_execute_snapshot(
        &mut self,
        req: &TxnRequest,
        index: &HotSetIndex,
        stats: &mut WorkerStats,
    ) -> Result<Option<TxnOutcome>> {
        for op in &req.ops {
            let offloaded = self.shared.config.mode == SystemMode::P4db && index.is_hot(op.tuple);
            if op.kind != OpKind::Read || offloaded {
                return Ok(None);
            }
        }
        let mut watch = Stopwatch::start();
        let mut results = vec![0u64; req.ops.len()];
        let snap = self.snapshot_slot.begin(&self.shared.mvcc.clock);
        let mut run = Ok(());
        for (i, op) in req.ops.iter().enumerate() {
            if op.home != self.node {
                self.shared.latency.impose_node_rtt();
                stats.record_phase(Phase::RemoteAccess, watch.lap());
            }
            let visible = match self.shared.node(op.home).peek(op.tuple) {
                Ok(row) => row.and_then(|r| r.read_at(snap)),
                Err(e) => {
                    run = Err(e);
                    break;
                }
            };
            match visible {
                Some(word) => results[i] = word,
                None => {
                    // No version at or below the snapshot: the row did not
                    // exist (yet) in this transaction's consistent view —
                    // the same error a locking read of a missing row raises.
                    run = Err(Error::TupleNotFound(op.tuple));
                    break;
                }
            }
        }
        // The slot is cleared on *every* exit, error paths included — a
        // leaked announcement would pin the GC watermark forever.
        self.snapshot_slot.end();
        stats.record_phase(Phase::LocalAccess, watch.lap());
        run?;
        stats.snapshot_reads += 1;
        Ok(Some(TxnOutcome { class: TxnClass::Cold, results, gid: None, in_doubt: false, snapshot: Some(snap) }))
    }

    /// Whether the hot operations resolve to more than one owning switch —
    /// the *cross-switch* class. No single switch can execute such a
    /// transaction abort-free, so it runs through the host path, which sends
    /// at most one sub-transaction per owning switch (see
    /// [`Worker::commit_host_txn`]). Single-switch topologies never produce
    /// it.
    fn spans_switches(req: &TxnRequest, hot: &[usize], index: &HotSetIndex) -> bool {
        let mut first = None;
        for &i in hot {
            match (first, index.owner(req.ops[i].tuple)) {
                (None, owner @ Some(_)) => first = owner,
                (Some(f), Some(o)) if o != f => return true,
                _ => {}
            }
        }
        false
    }

    /// Executes a batch of transactions, pipelining the all-hot ones: their
    /// intents are group-committed in one WAL write, their packets leave as
    /// one fabric frame, and their replies are drained together — the
    /// per-transaction overheads of the hot path amortised over the batch
    /// (the engine-side half of the switch's frame batching). Transactions
    /// with any cold operation, and everything when
    /// [`EngineConfig::batch_size`] is 1, run through the unbatched
    /// [`Worker::execute`] path unchanged. Returns one result per request,
    /// in request order; hot transactions cannot abort, so batched results
    /// never need the caller's retry loop.
    pub fn execute_batch(&mut self, reqs: &[&TxnRequest], stats: &mut WorkerStats) -> Vec<Result<TxnOutcome>> {
        if reqs.len() <= 1 || self.shared.config.batch_size <= 1 {
            return reqs.iter().map(|r| self.execute(r, stats)).collect();
        }
        let index = self.shared.hot_index.load();
        let mut pipeline = Vec::new();
        // Eligibility scan through the reusable classification buffers — no
        // allocations per scanned request.
        let mut hot = std::mem::take(&mut self.scratch_hot);
        let mut cold = std::mem::take(&mut self.scratch_cold);
        for (i, req) in reqs.iter().enumerate() {
            self.classify_into(req, &index, &mut hot, &mut cold);
            // Cross-switch requests are not pipelineable (they need the host
            // path's per-switch sub-transactions); they fall through to the
            // unbatched `execute` below like any mixed request.
            if !req.is_empty() && cold.is_empty() && !hot.is_empty() && !Self::spans_switches(req, &hot, &index) {
                pipeline.push(i);
            }
        }
        self.scratch_hot = hot;
        self.scratch_cold = cold;
        let mut results: Vec<Option<Result<TxnOutcome>>> = reqs.iter().map(|_| None).collect();
        if pipeline.len() > 1 {
            match self.run_hot_pipeline(reqs, &pipeline, &index, stats) {
                Ok(outcomes) => {
                    for (&slot, outcome) in pipeline.iter().zip(outcomes) {
                        results[slot] = Some(outcome);
                    }
                }
                // A wedged or shutting-down cluster fails the whole frame,
                // exactly as each transaction would fail individually.
                Err(e) => {
                    for &slot in &pipeline {
                        results[slot] = Some(Err(e.clone()));
                    }
                }
            }
        }
        for (i, req) in reqs.iter().enumerate() {
            if results[i].is_none() {
                results[i] = Some(self.execute(req, stats));
            }
        }
        results.into_iter().map(|r| r.expect("every request resolved")).collect()
    }

    /// The pipelined hot path: build every packet, group-commit every intent
    /// *before* the frame leaves the node (the durability point of §6.1 is
    /// unchanged — all intents are on stable storage before any packet is on
    /// the wire), send one frame, await all replies, group-commit all
    /// results. Returns one result per entry of `idxs`, in order: a request
    /// that fails to build gets its own [`Error::InvalidTxn`] — exactly what
    /// the unbatched path would return it — without failing its batchmates;
    /// replies lost to the wire surface as in-doubt outcomes exactly like
    /// the unbatched path. The outer `Err` is reserved for batch-wide
    /// failures (cluster shutdown, wedged switch).
    #[allow(clippy::type_complexity)]
    fn run_hot_pipeline(
        &mut self,
        reqs: &[&TxnRequest],
        idxs: &[usize],
        index: &HotSetIndex,
        stats: &mut WorkerStats,
    ) -> Result<Vec<Result<TxnOutcome>>> {
        let mut watch = Stopwatch::start();
        let mut results: Vec<Result<TxnOutcome>> = Vec::with_capacity(idxs.len());
        let mut batch = Vec::with_capacity(idxs.len());
        let mut intents = Vec::with_capacity(idxs.len());
        for (slot, &i) in idxs.iter().enumerate() {
            let req = &reqs[i];
            // Every operation is hot and the eligibility scan rejected
            // cross-switch requests, so the first operation's owner is the
            // whole transaction's owner.
            let switch = index.owner(req.ops[0].tuple).unwrap_or(SwitchId(0));
            // Breaker open: fast-fail before anything is logged or sent (no
            // intent in flight), without failing the batchmates.
            if self.shared.health.is_open(switch) {
                results.push(Err(Error::Abort(AbortReason::SwitchUnavailable { switch })));
                continue;
            }
            let txn_id = self.next_txn_id();
            let token = self.next_token();
            let mut header = TxnHeader::new(self.endpoint, token);
            header.txn_id = txn_id;
            let hot_ops: Vec<(usize, TxnOp)> = req.ops.iter().copied().enumerate().collect();
            // A malformed transaction fails alone, never its batchmates.
            let built = match build_switch_txn(&hot_ops, index, &self.shared.config.switch_config, header) {
                Ok(built) => built,
                Err(e) => {
                    results.push(Err(e));
                    continue;
                }
            };
            if built.txn.header.is_multipass {
                stats.switch_multi_pass += 1;
            } else {
                stats.switch_single_pass += 1;
            }
            if self.shared.config.log_switch_txns {
                intents.push(LogRecord::SwitchIntent { txn: txn_id, ops: built.logged_ops.clone() });
            }
            // Placeholder, overwritten once the reply (or its loss) is known.
            results.push(Err(Error::Disconnected));
            batch.push((slot, i, txn_id, token, switch, built));
        }
        // Durability: one group commit covers every intent of the frame.
        if !intents.is_empty() {
            self.coordinator_storage().wal().append_group(intents);
        }
        // The in-doubt ledger fence: every intent of this frame is in the
        // coordinator WAL at or below this index.
        let logged_at = self.coordinator_storage().wal().len();
        stats.record_phase(Phase::TxnEngine, watch.lap());

        if batch.is_empty() {
            stats.record_phase(Phase::SwitchTxn, watch.lap());
            return Ok(results);
        }

        // One frame *per destination switch*, one imposed wire latency each:
        // the transactions bound for one switch share the NIC doorbell and
        // the ½ RTT to it. Single-switch topologies produce exactly one
        // frame, as before.
        let mut frames: Vec<(SwitchId, Vec<SwitchMessage>)> = Vec::new();
        for (_, _, _, _, switch, b) in &batch {
            let payload = SwitchMessage::Txn(b.txn.clone());
            match frames.iter_mut().find(|(s, _)| s == switch) {
                Some((_, payloads)) => payloads.push(payload),
                None => frames.push((*switch, vec![payload])),
            }
        }
        for (switch, payloads) in frames {
            if !self.shared.fabric.send_frame(self.endpoint, EndpointId::Switch(switch), payloads) {
                return Err(Error::Disconnected);
            }
        }
        let wanted: HashSet<u64> = batch.iter().map(|&(_, _, _, token, _, _)| token).collect();
        let mut replies: HashMap<u64, TxnReply> = HashMap::with_capacity(batch.len());
        let deadline = Instant::now() + self.shared.config.switch_timeout;
        while replies.len() < batch.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.mailbox.recv_batch_timeout(remaining, batch.len()) {
                BatchRecvOutcome::Frame(envs) => {
                    for env in envs {
                        // Stale replies (from previous, timed-out attempts)
                        // and unrelated messages are dropped.
                        if let SwitchMessage::TxnReply(r) = env.payload {
                            if wanted.contains(&r.token) {
                                replies.insert(r.token, r);
                            }
                        }
                    }
                }
                BatchRecvOutcome::TimedOut => {
                    if !self.shared.config.in_doubt_on_timeout {
                        return Err(Error::Disconnected);
                    }
                    // Under fault injection the missing packets or replies
                    // were lost: their transactions commit in doubt below.
                    break;
                }
                BatchRecvOutcome::Disconnected => return Err(Error::Disconnected),
            }
        }
        // Return-path wire latency, once per reply frame — not imposed when
        // the whole frame was lost (the unbatched TimedOut arm imposes none
        // either).
        if !replies.is_empty() {
            self.shared.latency.impose_switch_rtt_wire();
        }
        stats.record_phase(Phase::SwitchTxn, watch.lap());

        let mut result_records = Vec::with_capacity(batch.len());
        for (slot, i, txn_id, token, switch, built) in batch {
            let mut values = vec![0u64; reqs[i].ops.len()];
            results[slot] = match replies.remove(&token) {
                Some(reply) => {
                    self.shared.health.record_success(switch);
                    let mut logged_results = Vec::with_capacity(reply.results.len());
                    for (instr_idx, res) in reply.results.iter().enumerate() {
                        let orig = built.orig_index[instr_idx];
                        values[orig] = res.value;
                        logged_results.push((reqs[i].ops[orig].tuple, res.value));
                    }
                    if self.shared.config.log_switch_txns {
                        result_records.push(LogRecord::SwitchResult {
                            txn: txn_id,
                            gid: reply.gid,
                            results: logged_results,
                        });
                    }
                    Ok(TxnOutcome {
                        class: TxnClass::Hot,
                        results: values,
                        gid: Some(reply.gid),
                        in_doubt: false,
                        snapshot: None,
                    })
                }
                // Intent logged, switch cannot abort: committed in doubt.
                None => {
                    stats.switch_timeouts += 1;
                    if self.shared.health.record_failure(switch) {
                        stats.breaker_trips += 1;
                    }
                    if self.shared.config.log_switch_txns {
                        // All-hot by construction: the footprint is the whole
                        // request, operand indices already self-contained.
                        self.shared.health.note_in_doubt(InDoubtEntry {
                            switch,
                            txn: txn_id,
                            node: self.node,
                            logged_at,
                            ops: reqs[i].ops.clone(),
                        });
                    }
                    Ok(TxnOutcome { class: TxnClass::Hot, results: values, gid: None, in_doubt: true, snapshot: None })
                }
            };
        }
        if !result_records.is_empty() {
            self.coordinator_storage().wal().append_group(result_records);
        }
        stats.record_phase(Phase::TxnEngine, watch.lap());
        Ok(results)
    }

    /// Splits the request's operation indices into hot (switch) and cold
    /// (host) sets. Everything is cold unless the full P4DB mode is active.
    /// The third element counts hot-eligible operations demoted to the host
    /// path because their owning switch is in degraded mode.
    fn classify(&self, req: &TxnRequest, index: &HotSetIndex) -> (Vec<usize>, Vec<usize>, u64) {
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        let demoted = self.classify_into(req, index, &mut hot, &mut cold);
        (hot, cold, demoted)
    }

    /// [`Worker::classify`] into caller-provided buffers — the single
    /// classification rule shared by both engine arms (the sharded path
    /// passes its reusable scratch, everything else fresh vectors). Returns
    /// the number of operations demoted because of a degraded switch.
    fn classify_into(&self, req: &TxnRequest, index: &HotSetIndex, hot: &mut Vec<usize>, cold: &mut Vec<usize>) -> u64 {
        hot.clear();
        cold.clear();
        let mut demoted = 0u64;
        for (i, op) in req.ops.iter().enumerate() {
            let hot_eligible =
                self.shared.config.mode == SystemMode::P4db && op.kind.switch_executable() && index.is_hot(op.tuple);
            // Degraded mode: the switch's values have been reconstructed
            // into the host rows, so its tuples run under host 2PL. The
            // check matters only for workers still holding a pre-degrade
            // index snapshot — the post-degrade index no longer contains
            // these tuples at all.
            let degraded = hot_eligible && index.owner(op.tuple).is_some_and(|s| self.shared.health.is_degraded(s));
            if degraded {
                demoted += 1;
            }
            if hot_eligible && !degraded {
                hot.push(i);
            } else {
                cold.push(i);
            }
        }
        demoted
    }

    // --- Hot transactions -------------------------------------------------

    fn execute_hot(
        &mut self,
        req: &TxnRequest,
        hot: &[usize],
        index: &HotSetIndex,
        stats: &mut WorkerStats,
    ) -> Result<TxnOutcome> {
        let txn_id = self.next_txn_id();
        let mut results = vec![0u64; req.ops.len()];
        // The dispatcher rejected cross-switch requests, so every hot
        // operation shares the first one's owning switch.
        let switch = index.owner(req.ops[hot[0]].tuple).unwrap_or(SwitchId(0));
        let hot_ops: Vec<(usize, TxnOp)> = hot.iter().map(|&i| (i, req.ops[i])).collect();
        match self.run_switch_subtxn(txn_id, switch, req, &hot_ops, index, false, stats)? {
            SwitchSubTxn::Completed { gid, values } => {
                for (idx, value) in values {
                    results[idx] = value;
                }
                Ok(TxnOutcome { class: TxnClass::Hot, results, gid: Some(gid), in_doubt: false, snapshot: None })
            }
            // The intent is logged, the switch cannot abort: the transaction
            // counts as committed even though its reply is lost (§6.1).
            SwitchSubTxn::InDoubt => {
                Ok(TxnOutcome { class: TxnClass::Hot, results, gid: None, in_doubt: true, snapshot: None })
            }
        }
    }

    /// Builds, logs, sends and awaits one switch sub-transaction. Every
    /// operation of `hot_ops` must be owned by `switch`; the caller groups
    /// per owner before calling (and patches cross-group operand
    /// dependencies into literals — the switches cannot forward values to
    /// each other).
    #[allow(clippy::too_many_arguments)]
    fn run_switch_subtxn(
        &mut self,
        txn_id: TxnId,
        switch: SwitchId,
        req: &TxnRequest,
        hot_ops: &[(usize, TxnOp)],
        index: &HotSetIndex,
        multicast_decision: bool,
        stats: &mut WorkerStats,
    ) -> Result<SwitchSubTxn> {
        // Breaker open: fast-fail before anything is logged or sent, so no
        // intent is in flight and the abort is clean to retry. The retry
        // re-classifies and lands on the host path once degraded mode is up.
        if self.shared.health.is_open(switch) {
            return Err(Error::Abort(AbortReason::SwitchUnavailable { switch }));
        }
        let mut watch = Stopwatch::start();
        let token = self.next_token();
        let mut header = TxnHeader::new(self.endpoint, token);
        header.txn_id = txn_id;
        header.multicast_decision = multicast_decision;
        let built = build_switch_txn(hot_ops, index, &self.shared.config.switch_config, header)?;

        if built.txn.header.is_multipass {
            stats.switch_multi_pass += 1;
        } else {
            stats.switch_single_pass += 1;
        }

        // Durability: the intent is logged *before* the packet leaves the
        // node; from this moment the transaction counts as committed (§6.1).
        if self.shared.config.log_switch_txns {
            self.coordinator_storage()
                .wal()
                .append(LogRecord::SwitchIntent { txn: txn_id, ops: built.logged_ops.clone() });
        }
        // The in-doubt ledger fence: the intent is in the coordinator WAL at
        // or below this index.
        let logged_at = self.coordinator_storage().wal().len();
        stats.record_phase(Phase::TxnEngine, watch.lap());

        // ½ RTT to the switch (imposed by the fabric), execution, ½ RTT back.
        let sent =
            self.shared.fabric.send(self.endpoint, EndpointId::Switch(switch), SwitchMessage::Txn(built.txn.clone()));
        if !sent {
            return Err(Error::Disconnected);
        }
        let deadline = Instant::now() + self.shared.config.switch_timeout;
        let reply = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.mailbox.recv_timeout(remaining) {
                RecvOutcome::Msg(env) => match env.payload {
                    SwitchMessage::TxnReply(r) if r.token == token => break r,
                    // Stale replies (from a previous, timed-out attempt) and
                    // unrelated messages are dropped.
                    _ => continue,
                },
                // Under fault injection the request or its reply was lost on
                // the wire: the transaction is in doubt. Its intent is
                // already logged, so recovery will account for it (§A.3,
                // Fig 9); the live run simply proceeds without the results.
                // Without faults nothing can be lost, so a timeout means the
                // switch is wedged — fail loudly instead.
                RecvOutcome::TimedOut => {
                    if !self.shared.config.in_doubt_on_timeout {
                        return Err(Error::Disconnected);
                    }
                    stats.switch_timeouts += 1;
                    if self.shared.health.record_failure(switch) {
                        stats.breaker_trips += 1;
                    }
                    if self.shared.config.log_switch_txns {
                        // Self-contained footprint: operand references are
                        // remapped from request indices to positions within
                        // this sub-transaction (cross-group dependencies were
                        // already patched into literals by the caller).
                        let pos: HashMap<usize, u8> =
                            hot_ops.iter().enumerate().map(|(p, &(orig, _))| (orig, p as u8)).collect();
                        let ops = hot_ops
                            .iter()
                            .map(|&(_, mut op)| {
                                op.operand_from = op.operand_from.and_then(|src| pos.get(&(src as usize)).copied());
                                op
                            })
                            .collect();
                        self.shared.health.note_in_doubt(InDoubtEntry {
                            switch,
                            txn: txn_id,
                            node: self.node,
                            logged_at,
                            ops,
                        });
                    }
                    stats.record_phase(Phase::SwitchTxn, watch.lap());
                    return Ok(SwitchSubTxn::InDoubt);
                }
                RecvOutcome::Disconnected => return Err(Error::Disconnected),
            }
        };
        self.shared.health.record_success(switch);
        // Return-path wire latency.
        self.shared.latency.impose_switch_rtt_wire();
        stats.record_phase(Phase::SwitchTxn, watch.lap());

        // Scatter results back to the original operation indices and log the
        // switch's reply (GID + read/write results) for recovery.
        let mut values = HashMap::with_capacity(reply.results.len());
        let mut logged_results = Vec::with_capacity(reply.results.len());
        for (instr_idx, res) in reply.results.iter().enumerate() {
            let orig = built.orig_index[instr_idx];
            values.insert(orig, res.value);
            logged_results.push((req.ops[orig].tuple, res.value));
        }
        if self.shared.config.log_switch_txns {
            self.coordinator_storage().wal().append(LogRecord::SwitchResult {
                txn: txn_id,
                gid: reply.gid,
                results: logged_results,
            });
        }
        stats.record_phase(Phase::TxnEngine, watch.lap());
        Ok(SwitchSubTxn::Completed { gid: reply.gid, values })
    }

    fn coordinator_storage(&self) -> &Arc<NodeStorage> {
        self.shared.node(self.node)
    }

    // --- Cold / warm transactions ------------------------------------------

    /// Executes the host part of a transaction (all of it for cold
    /// transactions, the cold subset for warm ones), then — for warm
    /// transactions — triggers the switch sub-transaction before committing.
    ///
    /// Two implementations share this entry point. The default runs
    /// shared-nothing end to end: the whole cold footprint is resolved to
    /// [`RowHandle`]s at *admission* (piggybacked on 2PL acquisition, one
    /// tuple hash each), execution then touches no maps at all, and the
    /// commit releases locks in grouped per-shard batches. With
    /// [`EngineConfig::single_latch`] the seed's per-op path runs instead —
    /// lock-at-access, map lookup per access, per-tuple release — as the
    /// baseline arm of the node-scaling benchmark.
    fn execute_host(
        &mut self,
        req: &TxnRequest,
        hot: &[usize],
        cold: &[usize],
        index: &HotSetIndex,
        stats: &mut WorkerStats,
    ) -> Result<TxnOutcome> {
        let txn_id = self.next_txn_id();
        let mut results = vec![0u64; req.ops.len()];
        let run = if self.shared.config.single_latch {
            // Seed shape: fresh undo/lock vectors allocated per transaction.
            let mut state = HostTxnState::default();
            self.run_host_txn_single_latch(req, hot, cold, index, stats, txn_id, &mut state, &mut results)
        } else {
            // The scratch moves out of `self` for the duration of the
            // transaction (so `&mut self` methods can run against it) and
            // moves back afterwards, keeping its capacity across
            // transactions: steady state allocates nothing per operation.
            let mut state = std::mem::take(&mut self.scratch);
            state.clear();
            let run = self.run_host_txn(req, hot, cold, index, stats, txn_id, &mut state, &mut results);
            self.scratch = state;
            run
        };
        let (gid, in_doubt) = run?;
        let class = if hot.is_empty() { TxnClass::Cold } else { TxnClass::Warm };
        Ok(TxnOutcome { class, results, gid, in_doubt, snapshot: None })
    }

    /// The shared-nothing host path: admission, zero-lookup execution, then
    /// the common vote/switch/commit tail.
    #[allow(clippy::too_many_arguments)]
    fn run_host_txn(
        &mut self,
        req: &TxnRequest,
        hot: &[usize],
        cold: &[usize],
        index: &HotSetIndex,
        stats: &mut WorkerStats,
        txn_id: TxnId,
        state: &mut HostTxnState,
        results: &mut [u64],
    ) -> Result<(Option<GlobalTxnId>, bool)> {
        let mut watch = Stopwatch::start();

        // Chiller-style ordering: contended tuples last, so their locks are
        // held for the shortest time.
        state.order.extend_from_slice(cold);
        if self.shared.config.chiller {
            let ops = &req.ops;
            state.order.sort_by_key(|&i| index.is_hot(ops[i].tuple));
        }

        // --- Admission: lock + resolve the whole footprint, one hash per
        // tuple. The `TupleId::mix` value selects the lock-table shard, the
        // row-store shard, and is kept for the grouped release at commit.
        // Chiller-contended tuples are the exception: their whole point is
        // *late* acquisition + early release, so they skip admission and are
        // locked at access time in the execution loop below.
        for slot in 0..state.order.len() {
            let i = state.order[slot];
            let op = &req.ops[i];
            let lm_lock = self.shared.config.mode == SystemMode::LmSwitch && index.is_hot(op.tuple);
            if self.shared.config.chiller && index.is_hot(op.tuple) && !lm_lock {
                state.resolved.push(None);
                continue;
            }
            // Remote operations pay a full node-to-node round trip (the
            // request carries the lock acquisition and the row-handle
            // resolution, as in the paper's 2PL/2PC baseline).
            if op.home != self.node {
                self.shared.latency.impose_node_rtt();
                stats.record_phase(Phase::RemoteAccess, watch.lap());
            }
            // Lock acquisition: at the owning node (normal path) or at the
            // switch lock manager for hot-set tuples in LM-Switch mode.
            let handle = if lm_lock {
                match self.lm_acquire(op.tuple, op.kind.is_write()) {
                    Ok(true) => {}
                    Ok(false) => {
                        let e = Error::lock_conflict(op.tuple);
                        self.fail_host(txn_id, state, stats, &e);
                        return Err(e);
                    }
                    Err(e) => {
                        self.fail_host(txn_id, state, stats, &e);
                        return Err(e);
                    }
                }
                state.switch_locks.push((HotSetIndex::lock_id(op.tuple), op.kind.is_write()));
                // The data still lives on the host; resolve without a host
                // lock (the switch lock manager serialises access).
                match self.shared.node(op.home).table(op.tuple.table) {
                    Ok(table) => table.get(op.tuple.key),
                    Err(e) => {
                        self.fail_host(txn_id, state, stats, &e);
                        return Err(e);
                    }
                }
            } else {
                match self.admit_op(txn_id, op, state) {
                    Ok(handle) => handle,
                    Err(e) => {
                        self.fail_host(txn_id, state, stats, &e);
                        return Err(e);
                    }
                }
            };
            state.resolved.push(handle);
        }
        // One phase lap covers the whole admission loop (per-op laps would
        // cost a clock read per tuple for the same Fig 18a totals).
        stats.record_phase(Phase::LockAcquisition, watch.lap());

        // --- Execution: pre-resolved handles only — no map lookups, no
        // per-op allocations. (Remote rows were paid for at admission; the
        // data accesses themselves run on local handles, so the whole loop
        // accounts as local access.)
        for slot in 0..state.order.len() {
            let i = state.order[slot];
            let op = &req.ops[i];
            let chiller_hot = self.shared.config.chiller
                && index.is_hot(op.tuple)
                && !(self.shared.config.mode == SystemMode::LmSwitch);
            // Chiller: contended tuples were skipped at admission — acquire
            // their locks now, at access time (late acquisition), and
            // resolve the handle under the same hash. The laps around the
            // acquisition keep its time (including any WAIT_DIE waiting) in
            // the lock-acquisition phase, like the seed arm accounts it.
            if chiller_hot && state.resolved[slot].is_none() {
                stats.record_phase(Phase::LocalAccess, watch.lap());
                if op.home != self.node {
                    self.shared.latency.impose_node_rtt();
                    stats.record_phase(Phase::RemoteAccess, watch.lap());
                }
                match self.admit_op(txn_id, op, state) {
                    Ok(handle) => state.resolved[slot] = handle,
                    Err(e) => {
                        self.fail_host(txn_id, state, stats, &e);
                        return Err(e);
                    }
                }
                stats.record_phase(Phase::LockAcquisition, watch.lap());
            }
            match self.apply_resolved_op(txn_id, &req.ops, slot, results, state) {
                Ok(value) => results[i] = value,
                Err(e) => {
                    self.fail_host(txn_id, state, stats, &e);
                    return Err(e);
                }
            }
            // Chiller: release the lock on a contended tuple as soon as its
            // *last* operation is done (early lock release). Releasing at
            // every occurrence would leave a later access of the same tuple
            // running without its lock — unlike the seed, this path never
            // re-acquires at access time for already-admitted tuples.
            // LM-held tuples are not in `state.locks`, so the scan skips
            // them naturally.
            if self.shared.config.chiller
                && index.is_hot(op.tuple)
                && !state.order[slot + 1..].iter().any(|&later| req.ops[later].tuple == op.tuple)
            {
                if let Some(pos) = state.locks.iter().position(|&(n, t, _)| n == op.home && t == op.tuple) {
                    let (home, tuple, _) = state.locks.remove(pos);
                    self.shared.node(home).locks().release(txn_id, tuple);
                }
            }
        }
        stats.record_phase(Phase::LocalAccess, watch.lap());

        self.commit_host_txn(req, hot, index, stats, txn_id, state, results, &mut watch)
    }

    /// Applies one cold operation against its admission-resolved handle,
    /// staging undo and log records. Only inserts (whose rows do not exist
    /// at admission) and reads of rows inserted *by this transaction* touch
    /// the table maps.
    ///
    /// Insert is a *replace*: aborting a transaction whose insert displaced
    /// an existing row removes the key outright (before-image `0`), exactly
    /// like the seed engine — the workloads only ever insert fresh keys, and
    /// the differential suite holds both engine arms to the same behaviour.
    fn apply_resolved_op(
        &self,
        txn_id: TxnId,
        ops: &[TxnOp],
        slot: usize,
        results: &[u64],
        state: &mut HostTxnState,
    ) -> Result<u64> {
        let op = &ops[state.order[slot]];
        let operand_override = op.operand_from.map(|src| results[src as usize]);
        match op.kind {
            OpKind::Insert(v) => {
                let v = operand_override.unwrap_or(v);
                let table = self.shared.node(op.home).table(op.tuple.table)?;
                // `insert_fresh`: the row is created *by this transaction*,
                // so snapshot readers older than its commit must see
                // tuple-not-found rather than the uncommitted value.
                let handle = table.insert_fresh(op.tuple.key, Value::scalar(v));
                // The insert may have *replaced* a live row with a fresh
                // one: every later operation of this transaction on the
                // same tuple was admission-resolved to the old row and must
                // be re-pointed at the fresh handle (and the fresh row is
                // made resolvable for rows that did not exist at admission).
                state.resolved[slot] = Some(Arc::clone(&handle));
                for later in slot + 1..state.order.len() {
                    if ops[state.order[later]].tuple == op.tuple {
                        state.resolved[later] = Some(Arc::clone(&handle));
                    }
                }
                state.inserted.push((op.home, op.tuple));
                state.installs.push((handle, v));
                state.cold_writes.push(LogRecord::ColdWrite {
                    txn: txn_id,
                    tuple: op.tuple,
                    before: Value::scalar(0),
                    after: Value::scalar(v),
                });
                Ok(v)
            }
            _ => {
                if state.resolved[slot].is_none() {
                    // Not found at admission: either an earlier operation of
                    // this transaction inserted the row since, or it is a
                    // genuine miss — resolve now, erroring like the seed did.
                    let table = self.shared.node(op.home).table(op.tuple.table)?;
                    state.resolved[slot] = Some(table.get_or_err(op.tuple.key)?);
                }
                let row = state.resolved[slot].as_ref().expect("resolved above");
                if op.kind == OpKind::Read {
                    return Ok(row.read().switch_word());
                }
                let before = row.read();
                let current = before.switch_word();
                let new = match op.kind {
                    OpKind::Write(v) => operand_override.unwrap_or(v),
                    OpKind::Add(d) => {
                        let delta = operand_override.map(|v| v as i64).unwrap_or(d);
                        (current as i64).wrapping_add(delta) as u64
                    }
                    OpKind::FetchAdd(d) => {
                        let delta = operand_override.map(|v| v as i64).unwrap_or(d);
                        (current as i64).wrapping_add(delta) as u64
                    }
                    OpKind::CondSub(a) => {
                        let amount = operand_override.unwrap_or(a);
                        if amount > i64::MAX as u64 || (current as i64) < amount as i64 {
                            return Err(Error::Abort(AbortReason::ConstraintViolation));
                        }
                        ((current as i64) - amount as i64) as u64
                    }
                    OpKind::Read | OpKind::Insert(_) => unreachable!("handled above"),
                };
                let mut after = before;
                after.set_switch_word(new);
                row.write(after);
                state.undo.push((Arc::clone(row), before));
                state.installs.push((Arc::clone(row), new));
                state.cold_writes.push(LogRecord::ColdWrite { txn: txn_id, tuple: op.tuple, before, after });
                Ok(if matches!(op.kind, OpKind::FetchAdd(_)) { current } else { new })
            }
        }
    }

    /// The seed's host path, preserved verbatim as the *single-latch
    /// baseline* ([`EngineConfig::single_latch`], benchmarked by
    /// `fig_node_scaling`): locks acquired at access time, one map lookup
    /// per access, one lock-table mutex acquisition per released tuple.
    #[allow(clippy::too_many_arguments)]
    fn run_host_txn_single_latch(
        &mut self,
        req: &TxnRequest,
        hot: &[usize],
        cold: &[usize],
        index: &HotSetIndex,
        stats: &mut WorkerStats,
        txn_id: TxnId,
        state: &mut HostTxnState,
        results: &mut [u64],
    ) -> Result<(Option<GlobalTxnId>, bool)> {
        let mut watch = Stopwatch::start();

        state.order.extend_from_slice(cold);
        if self.shared.config.chiller {
            let ops = &req.ops;
            state.order.sort_by_key(|&i| index.is_hot(ops[i].tuple));
        }

        for slot in 0..state.order.len() {
            let i = state.order[slot];
            let op = &req.ops[i];
            match self.execute_cold_op_single_latch(txn_id, op, i, index, results, state, stats, &mut watch) {
                Ok(()) => {}
                Err(e) => {
                    self.fail_host(txn_id, state, stats, &e);
                    return Err(e);
                }
            }
        }

        self.commit_host_txn(req, hot, index, stats, txn_id, state, results, &mut watch)
    }

    /// One cold operation of the single-latch baseline: lock, look up, access
    /// — the per-op shape (and cost) of the pre-sharding engine.
    #[allow(clippy::too_many_arguments)]
    fn execute_cold_op_single_latch(
        &mut self,
        txn_id: TxnId,
        op: &TxnOp,
        op_index: usize,
        index: &HotSetIndex,
        results: &mut [u64],
        state: &mut HostTxnState,
        stats: &mut WorkerStats,
        watch: &mut Stopwatch,
    ) -> Result<()> {
        let remote = op.home != self.node;
        let storage = Arc::clone(self.shared.node(op.home));
        let lock_mode = if op.kind.is_write() { LockMode::Exclusive } else { LockMode::Shared };

        if remote {
            self.shared.latency.impose_node_rtt();
            stats.record_phase(Phase::RemoteAccess, watch.lap());
        }

        let lm_lock = self.shared.config.mode == SystemMode::LmSwitch && index.is_hot(op.tuple);
        if lm_lock {
            let granted = self.lm_acquire(op.tuple, op.kind.is_write())?;
            if !granted {
                return Err(Error::lock_conflict(op.tuple));
            }
            state.switch_locks.push((HotSetIndex::lock_id(op.tuple), op.kind.is_write()));
            stats.record_phase(Phase::LockAcquisition, watch.lap());
        } else {
            storage.locks().acquire(txn_id, op.tuple, lock_mode, self.shared.config.cc)?;
            state.locks.push((op.home, op.tuple, op.tuple.mix()));
            stats.record_phase(Phase::LockAcquisition, watch.lap());
        }

        // Data access on the owning node, resolved through the maps per op.
        let table = storage.table(op.tuple.table)?;
        let operand_override = op.operand_from.map(|src| results[src as usize]);
        let value = match op.kind {
            OpKind::Insert(v) => {
                let v = operand_override.unwrap_or(v);
                table.insert(op.tuple.key, Value::scalar(v));
                state.inserted.push((op.home, op.tuple));
                state.cold_writes.push(LogRecord::ColdWrite {
                    txn: txn_id,
                    tuple: op.tuple,
                    before: Value::scalar(0),
                    after: Value::scalar(v),
                });
                v
            }
            OpKind::Read => table.read(op.tuple.key)?.switch_word(),
            _ => {
                let row = table.get_or_err(op.tuple.key)?;
                let before = row.read();
                let current = before.switch_word();
                let new = match op.kind {
                    OpKind::Write(v) => operand_override.unwrap_or(v),
                    OpKind::Add(d) => {
                        let delta = operand_override.map(|v| v as i64).unwrap_or(d);
                        (current as i64).wrapping_add(delta) as u64
                    }
                    OpKind::FetchAdd(d) => {
                        let delta = operand_override.map(|v| v as i64).unwrap_or(d);
                        (current as i64).wrapping_add(delta) as u64
                    }
                    OpKind::CondSub(a) => {
                        let amount = operand_override.unwrap_or(a);
                        if amount > i64::MAX as u64 || (current as i64) < amount as i64 {
                            return Err(Error::Abort(AbortReason::ConstraintViolation));
                        }
                        ((current as i64) - amount as i64) as u64
                    }
                    OpKind::Read | OpKind::Insert(_) => unreachable!("handled above"),
                };
                let mut after = before;
                after.set_switch_word(new);
                row.write(after);
                state.undo.push((Arc::clone(&row), before));
                state.cold_writes.push(LogRecord::ColdWrite { txn: txn_id, tuple: op.tuple, before, after });
                if matches!(op.kind, OpKind::FetchAdd(_)) {
                    current
                } else {
                    new
                }
            }
        };
        results[op_index] = value;
        stats.record_phase(if remote { Phase::RemoteAccess } else { Phase::LocalAccess }, watch.lap());

        if self.shared.config.chiller && index.is_hot(op.tuple) && !lm_lock {
            if let Some(pos) = state.locks.iter().position(|&(n, t, _)| n == op.home && t == op.tuple) {
                let (home, tuple, _) = state.locks.remove(pos);
                self.shared.node(home).locks().release(txn_id, tuple);
            }
        }
        Ok(())
    }

    /// The common tail of both host paths: 2PC vote, the warm switch
    /// sub-transaction, the group commit and the lock release.
    #[allow(clippy::too_many_arguments)]
    fn commit_host_txn(
        &mut self,
        req: &TxnRequest,
        hot: &[usize],
        index: &HotSetIndex,
        stats: &mut WorkerStats,
        txn_id: TxnId,
        state: &mut HostTxnState,
        results: &mut [u64],
        watch: &mut Stopwatch,
    ) -> Result<(Option<GlobalTxnId>, bool)> {
        // The cold part can no longer abort. For distributed transactions run
        // the 2PC voting phase now (participants hold their locks and have
        // validated constraints, so they vote yes).
        let distributed = if self.shared.config.single_latch {
            // Seed shape: materialise the deduplicated participant list.
            req.participant_nodes().iter().any(|&n| n != self.node)
        } else {
            req.ops.iter().any(|op| op.home != self.node)
        };
        if distributed {
            self.shared.latency.impose_node_rtt();
            stats.record_phase(Phase::RemoteAccess, watch.lap());
        }

        // Warm transactions: trigger the switch sub-transaction between the
        // voting phase and the commit (Fig 8 / Fig 10). The switch cannot
        // abort, so the outcome is already decided — even a lost reply does
        // not change it: the cold part is beyond its abort point and the
        // logged intent makes the switch part durable, so the transaction
        // commits in doubt rather than rolling back half of itself.
        let mut gid = None;
        let mut in_doubt = false;
        if !hot.is_empty() {
            // Group the hot operations by owning switch: at most one
            // sub-transaction per switch per transaction (a second one under
            // the same TxnId would double-apply during recovery). A
            // single-switch topology yields exactly one group — the
            // pre-multi-switch behaviour.
            let mut groups: Vec<(SwitchId, Vec<usize>)> = Vec::new();
            for &i in hot {
                let owner = index.owner(req.ops[i].tuple).unwrap_or(SwitchId(0));
                match groups.iter_mut().find(|(s, _)| *s == owner) {
                    Some((_, group)) => group.push(i),
                    None => groups.push((owner, vec![i])),
                }
            }
            if groups.len() > 1 {
                stats.cross_switch_fallback += 1;
            }
            // `have[i]`: `results[i]` already holds operation i's final value
            // (cold operations ran above; hot ones as their group's reply
            // arrives), so it can be patched into a dependent instruction.
            let mut have = vec![true; req.ops.len()];
            for &i in hot {
                have[i] = false;
            }
            while !groups.is_empty() {
                // Run groups whose external dependencies are satisfied
                // first, so their values can be patched into later groups.
                // An unsatisfiable cycle across groups cannot stall the loop
                // (the fallback runs the first group with the values at
                // hand); no generated workload produces one.
                let next = groups
                    .iter()
                    .position(|(_, group)| {
                        group.iter().all(|&i| match req.ops[i].operand_from {
                            Some(src) => group.contains(&(src as usize)) || have[src as usize],
                            None => true,
                        })
                    })
                    .unwrap_or(0);
                let (switch, group) = groups.remove(next);
                // Dependencies crossing a sub-transaction boundary are
                // resolved here on the host: the dependent instruction gets
                // the already-known value as a literal operand. The logged
                // intent carries the same literal, so replay and recovery
                // reproduce exactly what the switch executed.
                let mut hot_ops: Vec<(usize, TxnOp)> = Vec::with_capacity(group.len());
                for &i in &group {
                    let mut op = req.ops[i];
                    if let Some(src) = op.operand_from {
                        if !group.contains(&(src as usize)) {
                            op.kind = Self::patch_operand(op.kind, results[src as usize]);
                            op.operand_from = None;
                        }
                    }
                    hot_ops.push((i, op));
                }
                match self.run_switch_subtxn(txn_id, switch, req, &hot_ops, index, distributed, stats) {
                    Ok(SwitchSubTxn::Completed { gid: g, values }) => {
                        for (idx, value) in values {
                            results[idx] = value;
                            have[idx] = true;
                        }
                        // The first completed sub-transaction's GID stands
                        // in for the transaction (GIDs are per-switch serial
                        // numbers, so there is no single global one).
                        gid = gid.or(Some(g));
                    }
                    Ok(SwitchSubTxn::InDoubt) => in_doubt = true,
                    Err(e) => {
                        // A packet that failed to *build* — or was fast-
                        // failed by an open circuit breaker — never logged
                        // an intent and never left the node, so — although
                        // the cold part is past its conflict-abort point —
                        // rolling it back is still sound, and the only way
                        // not to leak its locks. Sub-transactions already
                        // sent to other switches stay committed through
                        // their logged intents, exactly like any in-doubt
                        // outcome. Any other error means the fabric or
                        // switch is gone mid-shutdown; propagate as before.
                        if matches!(e, Error::InvalidTxn(_))
                            || matches!(e, Error::Abort(AbortReason::SwitchUnavailable { .. }))
                        {
                            self.fail_host(txn_id, state, stats, &e);
                        }
                        return Err(e);
                    }
                }
            }
        }

        // Commit: persist cold writes + commit record as one group commit
        // (the transaction's records were staged in `state.cold_writes`; one
        // log write makes them durable together), then release locks.
        let wal = self.coordinator_storage().wal();
        if self.shared.config.single_latch {
            // Seed shape: the group travels through an intermediate vector.
            let mut group: Vec<LogRecord> = state.cold_writes.drain(..).collect();
            group.push(LogRecord::Commit { txn: txn_id });
            wal.append_group(group);
        } else {
            // The staged records drain straight into the log under its one
            // lock acquisition — no intermediate vector.
            wal.append_group(state.cold_writes.drain(..).chain(std::iter::once(LogRecord::Commit { txn: txn_id })));
        }
        // Version installation: one commit timestamp for the whole
        // transaction, reserved only *after* the commit group is durable (a
        // reserved timestamp is always published) and installed while the
        // exclusive locks are still held — per-row version order therefore
        // agrees with the 2PL serialization order. `publish` makes the
        // timestamp visible to snapshot readers only once every earlier
        // timestamp is fully installed. Sharded path only: the single-latch
        // seed arm never fills `installs`.
        if !state.installs.is_empty() {
            let mvcc = &self.shared.mvcc;
            let ts = mvcc.clock.reserve();
            for (row, word) in state.installs.drain(..) {
                if row.install_version(ts, word) > mvcc.version_cap {
                    // Chain over the cap: trim inline against the current
                    // low-watermark (cheap — a handful of atomic loads).
                    row.trim_versions_below(mvcc.low_watermark());
                }
            }
            mvcc.clock.publish(ts);
        }
        self.release_all(txn_id, state);
        stats.record_phase(Phase::TxnEngine, watch.lap());
        Ok((gid, in_doubt))
    }

    /// The one-hash admission step for a single cold operation: acquires the
    /// 2PL lock and resolves the row handle with one [`TupleId::mix`]
    /// (mirroring [`NodeStorage::admit`], but recording the granted lock —
    /// with its hash, for the grouped release — into `state.locks` *before*
    /// the table lookup, so every error path cleans up through
    /// [`Worker::abort_host`]). Both the admission loop and the Chiller
    /// late-acquisition path go through here.
    fn admit_op(&self, txn_id: TxnId, op: &TxnOp, state: &mut HostTxnState) -> Result<Option<RowHandle>> {
        let storage = self.shared.node(op.home);
        let mode = if op.kind.is_write() { LockMode::Exclusive } else { LockMode::Shared };
        let hash = op.tuple.mix();
        storage.locks().acquire_prehashed(hash, txn_id, op.tuple, mode, self.shared.config.cc)?;
        state.locks.push((op.home, op.tuple, hash));
        Ok(storage.table(op.tuple.table)?.get_prehashed(hash, op.tuple.key))
    }

    /// Replaces an operation's operand with an already-known value — the
    /// host-side resolution of an `operand_from` dependency that crosses a
    /// switch sub-transaction boundary. Mirrors the host path's
    /// `operand_override` semantics for each kind.
    fn patch_operand(kind: OpKind, value: u64) -> OpKind {
        match kind {
            OpKind::Write(_) => OpKind::Write(value),
            OpKind::Add(_) => OpKind::Add(value as i64),
            OpKind::FetchAdd(_) => OpKind::FetchAdd(value as i64),
            OpKind::CondSub(_) => OpKind::CondSub(value),
            other => other,
        }
    }

    /// Aborts the host transaction and records the abort in the statistics.
    fn fail_host(&mut self, txn_id: TxnId, state: &mut HostTxnState, stats: &mut WorkerStats, e: &Error) {
        self.abort_host(txn_id, state, stats);
        stats.record_abort(e.abort_reason().unwrap_or(AbortReason::ConstraintViolation));
    }

    /// Acquires a lock on the switch lock manager (LM-Switch baseline).
    fn lm_acquire(&mut self, tuple: TupleId, exclusive: bool) -> Result<bool> {
        let token = self.next_token();
        let req =
            p4db_switch::LockRequest { origin: self.endpoint, token, lock_id: HotSetIndex::lock_id(tuple), exclusive };
        // The LM-Switch baseline is a single-switch comparison arm: the lock
        // manager always runs on switch 0.
        if !self.shared.fabric.send(self.endpoint, EndpointId::Switch(SwitchId(0)), SwitchMessage::LockRequest(req)) {
            return Err(Error::Disconnected);
        }
        let deadline = Instant::now() + self.shared.config.switch_timeout;
        let reply = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.mailbox.recv_timeout(remaining) {
                RecvOutcome::Msg(env) => match env.payload {
                    SwitchMessage::LockReply(r) if r.token == token => break r,
                    _ => continue,
                },
                // Under fault injection a lost lock request or grant is
                // treated as a denial: the transaction aborts under NO_WAIT
                // and retries with a fresh request. (If the grant itself was
                // lost the switch-side lock leaks — contention on that tuple
                // then shows up as repeated denials, a degradation the chaos
                // harness tolerates.) Without faults, fail loudly.
                RecvOutcome::TimedOut => {
                    if !self.shared.config.in_doubt_on_timeout {
                        return Err(Error::Disconnected);
                    }
                    return Ok(false);
                }
                RecvOutcome::Disconnected => return Err(Error::Disconnected),
            }
        };
        // Return-path wire latency for the grant/deny message.
        self.shared.latency.impose_switch_rtt_wire();
        Ok(reply.granted)
    }

    /// Rolls a host (sub-)transaction back: undoes writes through their
    /// admission-resolved handles (no table lookups), removes inserted rows,
    /// releases all locks and logs the abort.
    fn abort_host(&mut self, txn_id: TxnId, state: &mut HostTxnState, _stats: &mut WorkerStats) {
        for (row, before) in state.undo.drain(..).rev() {
            row.write(before);
        }
        for (home, tuple) in state.inserted.drain(..).rev() {
            if let Ok(table) = self.shared.node(home).table(tuple.table) {
                table.remove(tuple.key);
            }
        }
        // The staged cold writes go into the log *with* the abort, as one
        // atomic group — mirroring the commit path. Genesis replay treats
        // them as undone either way, but checkpoint-tail recovery depends on
        // the before-images: a fuzzy shard scan may have captured this
        // transaction's dirty value, and only the logged group lets the tail
        // rewrite the row back to its pre-transaction image.
        let wal = self.coordinator_storage().wal();
        wal.append_group(state.cold_writes.drain(..).chain(std::iter::once(LogRecord::Abort { txn: txn_id })));
        self.release_all(txn_id, state);
    }

    /// Releases every lock still held by the transaction (host lock tables
    /// and, in LM-Switch mode, the switch lock manager). On the sharded path
    /// host locks go out in grouped per-shard batches — one lock-table mutex
    /// acquisition per touched shard, reusing the admission-time hashes; the
    /// single-latch baseline releases one tuple at a time like the seed.
    fn release_all(&mut self, txn_id: TxnId, state: &mut HostTxnState) {
        if self.shared.config.single_latch {
            for &(home, tuple, _) in &state.locks {
                self.shared.node(home).locks().release(txn_id, tuple);
            }
        } else {
            // Batch per run of same-node locks (footprints are usually
            // single-node, so this is one batch; an interleaved multi-node
            // footprint just produces a few more, which is still correct).
            let mut at = 0;
            while at < state.locks.len() {
                let home = state.locks[at].0;
                state.release_scratch.clear();
                while at < state.locks.len() && state.locks[at].0 == home {
                    let (_, tuple, hash) = state.locks[at];
                    state.release_scratch.push((hash, tuple));
                    at += 1;
                }
                self.shared.node(home).locks().release_batch(txn_id, &state.release_scratch);
            }
        }
        for &(lock_id, exclusive) in &state.switch_locks {
            // Releases are asynchronous (no grant to wait for); the switch
            // processes them at line rate.
            self.shared.fabric.send_no_latency(
                self.endpoint,
                EndpointId::Switch(SwitchId(0)),
                SwitchMessage::LockRelease(p4db_switch::LockRelease { lock_id, exclusive }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::BreakerConfig;
    use p4db_common::{LatencyConfig, TableId};
    use p4db_storage::recover_switch_state;
    use p4db_switch::{start_switch, ControlPlane, RegisterMemory, SwitchHandle};

    const TBL: TableId = TableId(0);

    struct Rig {
        shared: Arc<EngineShared>,
        _switch: SwitchHandle,
        control_plane: ControlPlane,
    }

    fn t(key: u64) -> TupleId {
        TupleId::new(TBL, key)
    }

    /// Two-node cluster; keys 0..10 are hot (offloaded in P4DB mode), keys
    /// 100.. are cold. Key k lives on node (k % 2).
    fn rig(mode: SystemMode, cc: CcScheme) -> Rig {
        let switch_config = p4db_switch::SwitchConfig::tiny();
        let latency = LatencyModel::new(LatencyConfig::zero());
        let fabric: Fabric<SwitchMessage> = Fabric::new(latency.clone());
        let memory = Arc::new(RegisterMemory::new(switch_config));
        let mut control_plane = ControlPlane::new(switch_config, Arc::clone(&memory));

        let nodes: Vec<Arc<NodeStorage>> = (0..2)
            .map(|n| {
                let storage = NodeStorage::new(NodeId(n), [TBL]);
                let table = storage.table(TBL).unwrap();
                // Hot rows 0..10 and cold rows 100..120, initial value 100.
                for k in (0..10u64).chain(100..120) {
                    if k % 2 == n as u64 {
                        table.insert(k, Value::scalar(100));
                    }
                }
                Arc::new(storage)
            })
            .collect();

        // Offload the hot set (all modes build the index; only P4DB stores
        // data on the switch, LM-Switch uses identity only).
        for k in 0..10u64 {
            control_plane.offload_into(t(k), (k % 4) as u8, ((k / 4) % 2) as u8, 8, 100).unwrap();
        }
        let hot_index = match mode {
            SystemMode::P4db => HotSetIndex::from_control_plane(&control_plane),
            SystemMode::LmSwitch => HotSetIndex::from_tuples((0..10).map(t)),
            SystemMode::NoSwitch => HotSetIndex::empty(),
        };

        let switch = start_switch(switch_config, memory, fabric.clone());
        let shared = Arc::new(EngineShared {
            nodes,
            latency,
            fabric,
            hot_index: HotIndexCell::new(hot_index),
            config: EngineConfig::new(mode, cc, switch_config),
            mvcc: MvccState::default(),
            health: SwitchHealth::new(1, 2, BreakerConfig::default()),
        });
        Rig { shared, _switch: switch, control_plane }
    }

    fn worker(rig: &Rig, node: u16, id: u16) -> Worker {
        Worker::new(Arc::clone(&rig.shared), NodeId(node), WorkerId(id))
    }

    fn home(key: u64) -> NodeId {
        NodeId((key % 2) as u16)
    }

    fn op(key: u64, kind: OpKind) -> TxnOp {
        TxnOp::new(t(key), kind, home(key))
    }

    #[test]
    fn hot_txn_runs_entirely_on_the_switch() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        let req = TxnRequest::new(vec![op(1, OpKind::Add(5)), op(2, OpKind::Read)]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Hot);
        assert!(out.gid.is_some());
        assert_eq!(out.results[0], 105);
        assert_eq!(out.results[1], 100);
        // Host rows are untouched; the switch is authoritative for hot data.
        assert_eq!(rig.shared.node(home(1)).table(TBL).unwrap().read(1).unwrap().switch_word(), 100);
        assert_eq!(rig.control_plane.read_tuple(t(1)), Some(105));
        // No host locks were taken.
        assert_eq!(rig.shared.node(NodeId(0)).locks().locked_count(), 0);
        assert_eq!(rig.shared.node(NodeId(1)).locks().locked_count(), 0);
        assert_eq!(stats.switch_single_pass, 1);
    }

    #[test]
    fn execute_batch_pipelines_all_hot_requests() {
        let mut rig = rig(SystemMode::P4db, CcScheme::NoWait);
        // Enable worker-side batching (the rig's default EngineConfig is
        // unbatched); the switch stays unbatched — the two knobs compose but
        // are independent.
        Arc::get_mut(&mut rig.shared).expect("rig shared is unshared").config.batch_size = 8;
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        // Mixed batch: two all-hot requests (pipelined), one cold, one empty.
        let reqs = [
            TxnRequest::new(vec![op(1, OpKind::Add(5)), op(2, OpKind::Read)]),
            TxnRequest::new(vec![op(100, OpKind::Add(7))]),
            TxnRequest::new(vec![op(3, OpKind::FetchAdd(10))]),
            TxnRequest::new(vec![]),
        ];
        let results = w.execute_batch(&reqs.iter().collect::<Vec<_>>(), &mut stats);
        assert_eq!(results.len(), 4);
        let hot_a = results[0].as_ref().unwrap();
        assert_eq!(hot_a.class, TxnClass::Hot);
        assert_eq!(hot_a.results, vec![105, 100]);
        assert!(hot_a.gid.is_some());
        let cold = results[1].as_ref().unwrap();
        assert_eq!(cold.class, TxnClass::Cold);
        assert_eq!(cold.results, vec![107]);
        let hot_b = results[2].as_ref().unwrap();
        assert_eq!(hot_b.class, TxnClass::Hot);
        assert_eq!(hot_b.results, vec![100], "FetchAdd returns the previous value");
        assert_ne!(hot_a.gid, hot_b.gid, "every batched transaction gets its own GID");
        assert_eq!(results[3].as_ref().unwrap().class, TxnClass::Cold);
        assert_eq!(rig.control_plane.read_tuple(t(1)), Some(105));
        assert_eq!(rig.control_plane.read_tuple(t(3)), Some(110));
        assert_eq!(stats.switch_single_pass, 2);
        // The WAL holds intents + results for both hot txns (group-committed)
        // and the cold write + commit for the cold one.
        let records = rig.shared.node(NodeId(0)).wal().records();
        assert_eq!(records.iter().filter(|r| matches!(r, LogRecord::SwitchIntent { .. })).count(), 2);
        assert_eq!(records.iter().filter(|r| matches!(r, LogRecord::SwitchResult { .. })).count(), 2);
        // Both intents precede both results: intents hit stable storage
        // before the frame left the node.
        let first_result = records.iter().position(|r| matches!(r, LogRecord::SwitchResult { .. })).unwrap();
        let last_intent = records.iter().rposition(|r| matches!(r, LogRecord::SwitchIntent { .. })).unwrap();
        assert!(last_intent < first_result);
    }

    #[test]
    fn execute_batch_with_batching_disabled_matches_execute() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        let reqs = [TxnRequest::new(vec![op(1, OpKind::Add(1))]), TxnRequest::new(vec![op(1, OpKind::Add(2))])];
        let results = w.execute_batch(&reqs.iter().collect::<Vec<_>>(), &mut stats);
        assert_eq!(results[0].as_ref().unwrap().results, vec![101]);
        assert_eq!(results[1].as_ref().unwrap().results, vec![103]);
    }

    #[test]
    fn cold_txn_updates_host_rows_under_locks() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        let req = TxnRequest::new(vec![op(100, OpKind::Add(7)), op(101, OpKind::Read)]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Cold);
        assert_eq!(out.results[0], 107);
        assert_eq!(out.results[1], 100);
        assert_eq!(rig.shared.node(home(100)).table(TBL).unwrap().read(100).unwrap().switch_word(), 107);
        // All locks released after commit.
        assert_eq!(rig.shared.node(NodeId(0)).locks().locked_count(), 0);
        assert_eq!(rig.shared.node(NodeId(1)).locks().locked_count(), 0);
        // WAL has the cold write and the commit record.
        let records = rig.shared.node(NodeId(0)).wal().records();
        assert!(records.iter().any(|r| matches!(r, LogRecord::ColdWrite { .. })));
        assert!(records.iter().any(|r| matches!(r, LogRecord::Commit { .. })));
    }

    #[test]
    fn no_switch_mode_treats_hot_tuples_as_cold() {
        let rig = rig(SystemMode::NoSwitch, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        let req = TxnRequest::new(vec![op(1, OpKind::Add(5))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Cold);
        assert!(out.gid.is_none());
        assert_eq!(rig.shared.node(home(1)).table(TBL).unwrap().read(1).unwrap().switch_word(), 105);
    }

    #[test]
    fn warm_txn_spans_switch_and_host_and_commits_both() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        // Hot op on tuple 3 (switch) plus cold ops on 100 (node 0) and 101
        // (node 1) → a distributed warm transaction.
        let req = TxnRequest::new(vec![op(3, OpKind::Add(10)), op(100, OpKind::Add(1)), op(101, OpKind::Write(55))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Warm);
        assert!(out.gid.is_some());
        assert_eq!(out.results[0], 110);
        assert_eq!(rig.control_plane.read_tuple(t(3)), Some(110));
        assert_eq!(rig.shared.node(home(100)).table(TBL).unwrap().read(100).unwrap().switch_word(), 101);
        assert_eq!(rig.shared.node(home(101)).table(TBL).unwrap().read(101).unwrap().switch_word(), 55);
        assert_eq!(rig.shared.node(NodeId(0)).locks().locked_count(), 0);
        assert_eq!(rig.shared.node(NodeId(1)).locks().locked_count(), 0);
    }

    #[test]
    fn lock_conflict_aborts_and_rolls_back_under_no_wait() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w1 = worker(&rig, 0, 0);
        let mut w2 = worker(&rig, 0, 1);
        let mut stats = WorkerStats::new();

        // w1 manually holds an exclusive lock on tuple 101 (node 1).
        let blocker = TxnId::compose(1, NodeId(1), WorkerId(9));
        rig.shared.node(NodeId(1)).locks().acquire(blocker, t(101), LockMode::Exclusive, CcScheme::NoWait).unwrap();

        // w2's transaction writes 100 first (succeeds) then 101 (conflicts).
        let req = TxnRequest::new(vec![op(100, OpKind::Add(5)), op(101, OpKind::Add(5))]);
        let err = w2.execute(&req, &mut stats).unwrap_err();
        assert!(err.is_abort());
        assert_eq!(stats.aborts_total(), 1);
        // The write to 100 was rolled back and its lock released.
        assert_eq!(rig.shared.node(home(100)).table(TBL).unwrap().read(100).unwrap().switch_word(), 100);
        assert!(!rig.shared.node(NodeId(0)).locks().is_locked(t(100)));

        // Cleanup so w1 is not reported unused.
        rig.shared.node(NodeId(1)).locks().release(blocker, t(101));
        let _ = &mut w1;
    }

    #[test]
    fn constraint_violation_aborts_on_the_host_path() {
        let rig = rig(SystemMode::NoSwitch, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        // Balance is 100; withdrawing 150 must abort and leave state intact.
        let req = TxnRequest::new(vec![op(100, OpKind::CondSub(150)), op(102, OpKind::Add(1))]);
        let err = w.execute(&req, &mut stats).unwrap_err();
        assert_eq!(err.abort_reason(), Some(AbortReason::ConstraintViolation));
        assert_eq!(rig.shared.node(home(100)).table(TBL).unwrap().read(100).unwrap().switch_word(), 100);
        assert_eq!(rig.shared.node(home(102)).table(TBL).unwrap().read(102).unwrap().switch_word(), 100);
    }

    #[test]
    fn constrained_write_on_the_switch_does_not_abort() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        // Overdraft on a hot tuple: the switch simply does not apply it.
        let req = TxnRequest::new(vec![op(1, OpKind::CondSub(500))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Hot);
        assert_eq!(out.results[0], 100, "value unchanged");
        assert_eq!(rig.control_plane.read_tuple(t(1)), Some(100));
        assert_eq!(stats.aborts_total(), 0);
    }

    #[test]
    fn insert_over_existing_key_rebinds_later_ops_to_the_fresh_row() {
        let rig = rig(SystemMode::NoSwitch, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        // Key 100 exists (value 100); the Insert *replaces* its row. The Add
        // was admission-resolved against the old row and must be re-pointed
        // at the fresh one, or it would update a detached row.
        let req = TxnRequest::new(vec![op(100, OpKind::Insert(7)), op(100, OpKind::Add(1))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.results, vec![7, 8]);
        assert_eq!(rig.shared.node(home(100)).table(TBL).unwrap().read(100).unwrap().switch_word(), 8);
        assert_eq!(rig.shared.node(NodeId(0)).locks().locked_count(), 0);
    }

    #[test]
    fn insert_goes_to_the_host_even_in_p4db_mode() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        let req = TxnRequest::new(vec![TxnOp::new(t(5000), OpKind::Insert(42), NodeId(0))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Cold);
        assert_eq!(rig.shared.node(NodeId(0)).table(TBL).unwrap().read(5000).unwrap().switch_word(), 42);
    }

    #[test]
    fn lm_switch_mode_serialises_hot_tuples_through_the_switch_lock_manager() {
        let rig = rig(SystemMode::LmSwitch, CcScheme::NoWait);
        let mut w1 = worker(&rig, 0, 0);
        let mut w2 = worker(&rig, 1, 0);
        let mut stats = WorkerStats::new();

        // Both touch hot tuple 1. Sequentially they must both succeed (locks
        // are released after commit), and the data lives on the host.
        let req = TxnRequest::new(vec![op(1, OpKind::Add(5))]);
        w1.execute(&req, &mut stats).unwrap();
        w2.execute(&req, &mut stats).unwrap();
        assert_eq!(rig.shared.node(home(1)).table(TBL).unwrap().read(1).unwrap().switch_word(), 110);
        // The switch data plane never executed a transaction in LM mode.
        assert_eq!(rig._switch.stats().txns_executed, 0);
        assert!(rig._switch.stats().lm_requests >= 2);
    }

    #[test]
    fn wait_die_lets_the_older_transaction_wait_and_commit() {
        let rig = rig(SystemMode::NoSwitch, CcScheme::WaitDie);
        let shared = Arc::clone(&rig.shared);
        // A younger transaction holds the lock briefly on another thread; the
        // older transaction (smaller sequence from worker 0, seq 1) waits.
        let blocker = TxnId::compose(1000, NodeId(0), WorkerId(5));
        shared.node(NodeId(1)).locks().acquire(blocker, t(101), LockMode::Exclusive, CcScheme::WaitDie).unwrap();
        let release = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || {
                std::thread::sleep(Duration::from_millis(20));
                shared.node(NodeId(1)).locks().release(blocker, t(101));
            }
        });
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        let req = TxnRequest::new(vec![op(101, OpKind::Add(3))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.results[0], 103);
        release.join().unwrap();
    }

    #[test]
    fn switch_state_is_recoverable_from_the_node_logs() {
        let rig = rig(SystemMode::P4db, CcScheme::NoWait);
        let mut w = worker(&rig, 0, 0);
        let mut stats = WorkerStats::new();
        for _ in 0..5 {
            w.execute(&TxnRequest::new(vec![op(1, OpKind::Add(10))]), &mut stats).unwrap();
        }
        // Crash the switch data and recover it from the logs.
        let initial: HashMap<TupleId, u64> = (0..10).map(|k| (t(k), 100u64)).collect();
        let logs: Vec<&p4db_storage::Wal> = rig.shared.nodes.iter().map(|n| n.wal()).collect();
        let outcome = recover_switch_state(&initial, &logs);
        assert_eq!(outcome.values[&t(1)], 150);
        assert_eq!(outcome.inconsistencies, 0);
        assert_eq!(outcome.completed, 5);
        assert_eq!(rig.control_plane.read_tuple(t(1)), Some(150), "recovered value matches live switch");
    }

    #[test]
    fn chiller_mode_reorders_and_releases_contended_locks_early() {
        let mut cfg_rig = rig(SystemMode::NoSwitch, CcScheme::NoWait);
        // Chiller needs hot-tuple identity even though data stays on the host.
        Arc::get_mut(&mut cfg_rig.shared).map(|_| ()).unwrap_or(());
        let shared = Arc::new(EngineShared {
            nodes: cfg_rig.shared.nodes.clone(),
            latency: cfg_rig.shared.latency.clone(),
            fabric: cfg_rig.shared.fabric.clone(),
            hot_index: HotIndexCell::new(HotSetIndex::from_tuples((0..10).map(t))),
            config: EngineConfig {
                chiller: true,
                ..EngineConfig::new(SystemMode::NoSwitch, CcScheme::NoWait, cfg_rig.shared.config.switch_config)
            },
            mvcc: MvccState::default(),
            health: SwitchHealth::new(1, 2, BreakerConfig::default()),
        });
        let mut w = Worker::new(shared.clone(), NodeId(0), WorkerId(7));
        let mut stats = WorkerStats::new();
        let req = TxnRequest::new(vec![op(1, OpKind::Add(5)), op(100, OpKind::Add(5))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.class, TxnClass::Cold);
        assert_eq!(shared.node(home(1)).table(TBL).unwrap().read(1).unwrap().switch_word(), 105);
        assert_eq!(shared.node(NodeId(0)).locks().locked_count(), 0);

        // A contended tuple touched twice: the early release must wait for
        // the *last* access (releasing after the first would let the second
        // run unlocked), and the repeated access sees the first one's write.
        let req = TxnRequest::new(vec![op(3, OpKind::Add(5)), op(100, OpKind::Read), op(3, OpKind::Add(7))]);
        let out = w.execute(&req, &mut stats).unwrap();
        assert_eq!(out.results[0], 105);
        assert_eq!(out.results[2], 112);
        assert_eq!(shared.node(home(3)).table(TBL).unwrap().read(3).unwrap().switch_word(), 112);
        assert_eq!(shared.node(NodeId(0)).locks().locked_count(), 0);
        assert_eq!(shared.node(NodeId(1)).locks().locked_count(), 0);
    }
}
