//! # p4db-txn
//!
//! The distributed transaction engine of P4DB's host DBMS (§6): hot / cold /
//! warm classification against the replicated hot-set index, switch packet
//! construction with the node-side view of the data layout, 2PL (NO_WAIT /
//! WAIT_DIE) with 2PC for the host path, the warm-transaction scheme that
//! stitches the abort-free switch sub-transaction into the commit protocol,
//! the durability protocol (switch intents and GIDs in the node WALs), and
//! the LM-Switch / Chiller baselines used in the evaluation.

pub mod builder;
pub mod executor;
pub mod health;
pub mod hotset;
pub mod request;
pub mod switch_client;

pub use builder::{Placement, Txn};
pub use executor::{EngineConfig, EngineShared, Worker};
pub use health::{BreakerConfig, BreakerCore, BreakerState, InDoubtEntry, SwitchHealth};
pub use hotset::{HotIndexCell, HotSetIndex};
pub use p4db_storage::mvcc::MvccState;
pub use request::{OpKind, TxnOp, TxnOutcome, TxnRequest};
pub use switch_client::{build_switch_txn, BuiltSwitchTxn};
