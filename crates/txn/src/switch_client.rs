//! Building switch transactions on the database nodes (§5.4, §6.1).
//!
//! The issuing node owns all the information needed to fill in the packet's
//! processing header: the replicated hot-set index tells it which register
//! slot each hot tuple lives in, from which it derives the instruction order,
//! the `is_multipass` flag and the pipeline-lock demand.

use crate::hotset::HotSetIndex;
use crate::request::{OpKind, TxnOp};
use p4db_common::{Error, Result};
use p4db_storage::LoggedSwitchOp;
use p4db_switch::{locks_for_stages, plan_passes, Instruction, OpCode, SwitchConfig, SwitchTxn, TxnHeader};

/// A switch sub-transaction built from the hot operations of a request,
/// together with the mapping back to the original operation indices.
#[derive(Clone, Debug)]
pub struct BuiltSwitchTxn {
    pub txn: SwitchTxn,
    /// `orig_index[i]` is the index (within the original request) of the
    /// operation that instruction `i` implements.
    pub orig_index: Vec<usize>,
    /// The same operations in WAL form, for the durability protocol.
    pub logged_ops: Vec<LoggedSwitchOp>,
}

fn op_to_opcode(kind: OpKind) -> (OpCode, u64) {
    match kind {
        OpKind::Read => (OpCode::Read, 0),
        OpKind::Write(v) => (OpCode::Write, v),
        OpKind::Add(d) => (OpCode::Add, d as u64),
        OpKind::FetchAdd(d) => (OpCode::FetchAdd, d as u64),
        OpKind::CondSub(a) => (OpCode::CondSub, a),
        OpKind::Insert(_) => unreachable!("inserts are never offloaded to the switch"),
    }
}

/// Builds the switch packet for the given hot operations.
///
/// Operations without read-dependencies are re-ordered to follow the
/// pipeline's stage order (the node may freely order independent operations,
/// which is how YCSB/SmallBank hot transactions become single-pass under the
/// declustered layout). Operations connected by `operand_from` dependencies
/// keep their relative order.
///
/// # Errors
/// Returns [`Error::InvalidTxn`] if an operation's tuple is missing from the
/// hot-set index, or if an `operand_from` reference points outside the
/// switch sub-transaction (workloads must keep read-dependent pairs in the
/// same temperature class). Both are terminal, non-retryable errors: the
/// engine classifies and builds against one index snapshot, so a missing
/// slot means the caller classified against a *different* index than it
/// passed here — a caller bug, not a transient race.
pub fn build_switch_txn(
    hot_ops: &[(usize, TxnOp)],
    hot_index: &HotSetIndex,
    switch_config: &SwitchConfig,
    mut header: TxnHeader,
) -> Result<BuiltSwitchTxn> {
    let slot_of = |op: &TxnOp| {
        hot_index
            .slot(op.tuple)
            .ok_or_else(|| Error::InvalidTxn(format!("hot operation on {} is not in the hot-set index", op.tuple)))
    };
    // Re-order for stage order unless a dependency forbids it.
    let has_dependencies = hot_ops.iter().any(|(_, op)| op.operand_from.is_some());
    let mut ordered: Vec<(usize, TxnOp)> = hot_ops.to_vec();
    if !has_dependencies {
        let mut keyed = Vec::with_capacity(ordered.len());
        for (orig, op) in ordered {
            let slot = slot_of(&op)?;
            keyed.push(((slot.stage, slot.array, slot.index), (orig, op)));
        }
        keyed.sort_by_key(|(key, _)| *key);
        ordered = keyed.into_iter().map(|(_, op)| op).collect();
    }

    // Map original op index -> instruction index, needed to remap
    // operand_from references.
    let mut instr_of_orig = vec![usize::MAX; hot_ops.iter().map(|(i, _)| *i).max().map_or(0, |m| m + 1)];
    for (instr_idx, (orig, _)) in ordered.iter().enumerate() {
        instr_of_orig[*orig] = instr_idx;
    }

    let mut instructions = Vec::with_capacity(ordered.len());
    let mut orig_index = Vec::with_capacity(ordered.len());
    let mut logged_ops = Vec::with_capacity(ordered.len());
    for (instr_idx, (orig, op)) in ordered.iter().enumerate() {
        let slot = slot_of(op)?;
        let (opcode, operand) = op_to_opcode(op.kind);
        let operand_from = match op.operand_from {
            Some(src) => {
                let mapped =
                    instr_of_orig.get(src as usize).copied().filter(|&m| m != usize::MAX).ok_or_else(|| {
                        Error::InvalidTxn(format!(
                            "operation {orig} takes its operand from operation {src}, which is not part of the same \
                             switch sub-transaction"
                        ))
                    })?;
                if mapped >= instr_idx {
                    return Err(Error::InvalidTxn(format!(
                        "operation {orig}'s operand source {src} does not precede it in the switch instruction order"
                    )));
                }
                Some(mapped as u8)
            }
            None => None,
        };
        let mut instr = Instruction::new(slot, opcode, operand);
        instr.operand_from = operand_from;
        instructions.push(instr);
        orig_index.push(*orig);
        logged_ops.push(LoggedSwitchOp { tuple: op.tuple, op: opcode, operand, operand_from });
    }

    // Fill in the processing header from the node's view of the layout.
    let passes = plan_passes(&instructions);
    header.is_multipass = passes.len() > 1;
    header.locks = locks_for_stages(instructions.iter().map(|i| i.slot.stage), switch_config);

    Ok(BuiltSwitchTxn { txn: SwitchTxn::new(header, instructions), orig_index, logged_ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::{NodeId, TableId, TupleId, WorkerId};
    use p4db_net::EndpointId;
    use p4db_switch::{ControlPlane, LockMask, RegisterMemory, SwitchConfig};
    use std::sync::Arc;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn header() -> TxnHeader {
        TxnHeader::new(EndpointId::Worker(NodeId(0), WorkerId(0)), 1)
    }

    /// Hot index with tuple k offloaded to stage (k % 4), array (k % 2).
    fn index_with(keys: &[u64]) -> (HotSetIndex, SwitchConfig) {
        let config = SwitchConfig::tiny();
        let memory = Arc::new(RegisterMemory::new(config));
        let mut cp = ControlPlane::new(config, memory);
        for &k in keys {
            cp.offload_into(t(k), (k % 4) as u8, (k % 2) as u8, 8, 0).unwrap();
        }
        (HotSetIndex::from_control_plane(&cp), config)
    }

    #[test]
    fn independent_ops_are_reordered_into_stage_order() {
        let (idx, config) = index_with(&[3, 0, 2]);
        let ops = vec![
            (0usize, TxnOp::new(t(3), OpKind::Read, NodeId(0))),
            (1, TxnOp::new(t(0), OpKind::Add(1), NodeId(0))),
            (2, TxnOp::new(t(2), OpKind::Read, NodeId(0))),
        ];
        let built = build_switch_txn(&ops, &idx, &config, header()).unwrap();
        // Stage order: t(0) stage 0, t(2) stage 2, t(3) stage 3.
        assert_eq!(built.orig_index, vec![1, 2, 0]);
        assert!(!built.txn.header.is_multipass);
        assert_eq!(built.txn.instructions.len(), 3);
        assert_eq!(built.logged_ops.len(), 3);
    }

    #[test]
    fn dependent_ops_keep_order_and_remap_operand_sources() {
        let (idx, config) = index_with(&[1, 2]);
        // op0 reads t(1) (stage 1), op1 adds the read value to t(2) (stage 2).
        let ops = vec![
            (0usize, TxnOp::new(t(1), OpKind::Read, NodeId(0))),
            (1, TxnOp::new(t(2), OpKind::Add(0), NodeId(0)).with_operand_from(0)),
        ];
        let built = build_switch_txn(&ops, &idx, &config, header()).unwrap();
        assert_eq!(built.orig_index, vec![0, 1]);
        assert_eq!(built.txn.instructions[1].operand_from, Some(0));
        assert!(!built.txn.header.is_multipass);
    }

    #[test]
    fn reverse_stage_dependency_is_flagged_multipass_with_locks() {
        let (idx, config) = index_with(&[3, 1]);
        // Read t(3) (stage 3) then dependent write to t(1) (stage 1): cannot
        // be reordered, needs two passes and pipeline locks.
        let ops = vec![
            (0usize, TxnOp::new(t(3), OpKind::Read, NodeId(0))),
            (1, TxnOp::new(t(1), OpKind::Write(0), NodeId(0)).with_operand_from(0)),
        ];
        let built = build_switch_txn(&ops, &idx, &config, header()).unwrap();
        assert!(built.txn.header.is_multipass);
        assert_ne!(built.txn.header.locks, LockMask::NONE);
    }

    #[test]
    fn single_pass_header_still_names_locks_that_must_be_free() {
        let (idx, config) = index_with(&[0]);
        let ops = vec![(0usize, TxnOp::new(t(0), OpKind::Add(5), NodeId(0)))];
        let built = build_switch_txn(&ops, &idx, &config, header()).unwrap();
        assert!(!built.txn.header.is_multipass);
        // Stage 0 is in the "left" half of the tiny config.
        assert_eq!(built.txn.header.locks, LockMask::LEFT);
    }

    #[test]
    fn building_with_a_cold_tuple_is_a_structured_error() {
        let (idx, config) = index_with(&[0]);
        let ops = vec![(0usize, TxnOp::new(t(99), OpKind::Read, NodeId(0)))];
        match build_switch_txn(&ops, &idx, &config, header()) {
            Err(p4db_common::Error::InvalidTxn(msg)) => assert!(msg.contains("hot-set index"), "{msg}"),
            other => panic!("expected InvalidTxn, got {other:?}"),
        }
    }

    #[test]
    fn dangling_operand_reference_is_a_structured_error() {
        let (idx, config) = index_with(&[1]);
        // operand_from(5) points outside the (single-op) sub-transaction.
        let ops = vec![(0usize, TxnOp::new(t(1), OpKind::Add(0), NodeId(0)).with_operand_from(5))];
        assert!(matches!(build_switch_txn(&ops, &idx, &config, header()), Err(p4db_common::Error::InvalidTxn(_))));
    }
}
