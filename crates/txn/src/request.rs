//! The logical transaction representation handed from the workload generators
//! to the transaction engine.
//!
//! A transaction is an ordered list of operations over tuples; every
//! operation knows the node that owns its tuple in the shared-nothing
//! partitioning. The engine classifies the operations into hot (switch) and
//! cold (host) sets, which yields the paper's hot / cold / warm transaction
//! classes.

use p4db_common::stats::TxnClass;
use p4db_common::{NodeId, TupleId};

/// What an operation does to its tuple. All operations work on the tuple's
/// 64-bit switch column (field 0 of the row); wider payload fields only
/// matter for capacity accounting.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Read the value.
    Read,
    /// Overwrite the value.
    Write(u64),
    /// Add a (signed) delta.
    Add(i64),
    /// Add a delta but return the previous value (TPC-C `d_next_o_id`).
    FetchAdd(i64),
    /// Subtract `amount` only if the result stays non-negative; otherwise the
    /// operation reports failure (SmallBank overdraft checks). On the host
    /// path a failed check aborts the transaction; on the switch it becomes a
    /// constrained write that simply does not apply.
    CondSub(u64),
    /// Insert a new row with the given initial value (always executed on the
    /// host — the switch does not allocate rows at runtime).
    Insert(u64),
}

impl OpKind {
    /// Whether this operation may modify data (and therefore needs an
    /// exclusive lock on the host path).
    pub fn is_write(self) -> bool {
        !matches!(self, OpKind::Read)
    }

    /// Whether the switch can execute this operation on an offloaded tuple.
    pub fn switch_executable(self) -> bool {
        !matches!(self, OpKind::Insert(_))
    }
}

/// One operation of a transaction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TxnOp {
    pub tuple: TupleId,
    pub kind: OpKind,
    /// Node owning the tuple's partition.
    pub home: NodeId,
    /// Read-dependent operand: index of an earlier operation whose result
    /// value replaces this operation's immediate operand (e.g. SmallBank
    /// `Amalgamate` credits the amount read from the other account).
    pub operand_from: Option<u8>,
}

impl TxnOp {
    pub fn new(tuple: TupleId, kind: OpKind, home: NodeId) -> Self {
        TxnOp { tuple, kind, home, operand_from: None }
    }

    pub fn with_operand_from(mut self, src: u8) -> Self {
        self.operand_from = Some(src);
        self
    }
}

/// A logical transaction request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnRequest {
    pub ops: Vec<TxnOp>,
    /// Declared read-only (every operation is a `Read`): the engine may
    /// execute it on the lock-free snapshot path — a consistent snapshot
    /// timestamp instead of 2PL locks, zero lock-table interaction, zero
    /// 2PC. Set via [`crate::Txn::read_only`] or
    /// [`TxnRequest::into_read_only`].
    pub read_only: bool,
}

impl TxnRequest {
    pub fn new(ops: Vec<TxnOp>) -> Self {
        TxnRequest { ops, read_only: false }
    }

    /// Marks the request read-only. Callers must only set this on requests
    /// whose every operation is a `Read`; the engine falls back to the
    /// locking path (and `Session::read_only` rejects outright) otherwise.
    pub fn into_read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the transaction touches partitions of more than one node or a
    /// partition that is not the coordinator's — the paper's definition of a
    /// distributed transaction.
    pub fn is_distributed(&self, coordinator: NodeId) -> bool {
        self.ops.iter().any(|op| op.home != coordinator)
    }

    /// The distinct home nodes of this transaction's operations.
    pub fn participant_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.ops.iter().map(|op| op.home).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

/// The result of executing a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Hot / cold / warm classification it executed as.
    pub class: TxnClass,
    /// One result value per operation, in operation order (reads return the
    /// value read, writes/adds the new value, fetch-adds the old value).
    pub results: Vec<u64>,
    /// The switch-assigned GID if a switch sub-transaction was involved.
    pub gid: Option<p4db_common::GlobalTxnId>,
    /// `true` when the switch sub-transaction's reply never arrived (the
    /// request or the reply was lost, e.g. under fault injection). The
    /// transaction still *counts as committed* — its intent was logged
    /// before the packet left the node (§6.1) and switch transactions never
    /// abort — but the result values of its hot operations are unknown
    /// (reported as 0) and `gid` is `None`; recovery resolves its position
    /// from the logs (§A.3, Fig 9).
    pub in_doubt: bool,
    /// The snapshot timestamp this transaction read at, when it executed on
    /// the lock-free snapshot path (`None` for every locking execution).
    pub snapshot: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::TableId;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    #[test]
    fn op_kind_classification() {
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write(1).is_write());
        assert!(OpKind::CondSub(5).is_write());
        assert!(OpKind::Insert(0).is_write());
        assert!(OpKind::Add(1).switch_executable());
        assert!(!OpKind::Insert(0).switch_executable());
    }

    #[test]
    fn distributed_detection() {
        let req =
            TxnRequest::new(vec![TxnOp::new(t(1), OpKind::Read, NodeId(0)), TxnOp::new(t(2), OpKind::Read, NodeId(1))]);
        assert!(req.is_distributed(NodeId(0)));
        assert!(req.is_distributed(NodeId(2)));
        assert_eq!(req.participant_nodes(), vec![NodeId(0), NodeId(1)]);

        let local = TxnRequest::new(vec![TxnOp::new(t(1), OpKind::Read, NodeId(0))]);
        assert!(!local.is_distributed(NodeId(0)));
    }

    #[test]
    fn operand_forwarding_builder() {
        let op = TxnOp::new(t(1), OpKind::Add(0), NodeId(0)).with_operand_from(2);
        assert_eq!(op.operand_from, Some(2));
    }
}
