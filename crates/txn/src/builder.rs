//! The typed, placement-aware transaction builder — the client-facing way to
//! construct transactions without hand-assigning per-operation `home` nodes.
//!
//! A [`Txn`] accumulates operations over [`TupleId`]s only; the node that
//! owns each tuple is resolved when the builder is [`Txn::resolve`]d against
//! a [`Placement`] (in practice the cluster's `PartitionMap`, which wraps the
//! workload's static partitioning scheme). Tuples the placement does not
//! claim — replicated catalogues, freshly inserted rows — run on the
//! coordinating node. Both the ad-hoc client path (`Session::execute`) and
//! the built-in workload generators produce their requests through this
//! builder, so there is exactly one way transactions are formed.

use crate::request::{OpKind, TxnOp, TxnRequest};
use p4db_common::{Error, NodeId, Result, TupleId};

/// Resolves a tuple's home node under a static partitioning scheme.
///
/// Returning `None` means the tuple has no fixed owner (replicated read-only
/// data, or rows created by the transaction itself); such operations execute
/// on the transaction's coordinator node.
///
/// Any `Fn(TupleId) -> Option<NodeId>` is a placement, so tests and small
/// tools can pass a closure instead of a full partition map.
pub trait Placement {
    /// The node owning `tuple`, or `None` for coordinator-local data.
    fn home_of(&self, tuple: TupleId) -> Option<NodeId>;
}

impl<F> Placement for F
where
    F: Fn(TupleId) -> Option<NodeId>,
{
    fn home_of(&self, tuple: TupleId) -> Option<NodeId> {
        self(tuple)
    }
}

/// One not-yet-placed operation of a [`Txn`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct PendingOp {
    tuple: TupleId,
    kind: OpKind,
    operand_from: Option<usize>,
    /// Explicit placement override (see [`Txn::at`]); `None` = resolve.
    pinned: Option<NodeId>,
}

/// A typed transaction under construction.
///
/// Operations are appended fluently and refer to tuples only; call
/// [`Txn::resolve`] (or hand the builder to a `Session`) to obtain an
/// executable [`TxnRequest`] with every operation's home node filled in.
///
/// ```
/// use p4db_common::{NodeId, TableId, TupleId};
/// use p4db_txn::Txn;
///
/// let accounts = TableId(2);
/// let t = |key| TupleId::new(accounts, key);
/// // Key k lives on node (k % 2) — normally this comes from the cluster's
/// // partition map; any closure works as a placement.
/// let placement = |tuple: TupleId| Some(NodeId((tuple.key % 2) as u16));
///
/// // Transfer 5 from account 0 to account 1, aborting on overdraft.
/// let req = Txn::new()
///     .cond_sub(t(0), 5)
///     .add(t(1), 5)
///     .resolve(&placement, NodeId(0))
///     .unwrap();
/// assert_eq!(req.ops.len(), 2);
/// assert_eq!(req.ops[1].home, NodeId(1));
/// assert!(req.is_distributed(NodeId(0)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Txn {
    ops: Vec<PendingOp>,
    read_only: bool,
}

impl Txn {
    /// Starts an empty transaction.
    pub fn new() -> Self {
        Txn::default()
    }

    /// Declares the transaction read-only, eligible for the lock-free
    /// snapshot read path: it reads a consistent snapshot (the newest
    /// committed version of each tuple at one timestamp) with zero
    /// lock-table interaction and zero 2PC. [`Txn::resolve`] rejects a
    /// read-only transaction containing any non-`Read` operation.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Appends an operation of arbitrary kind (escape hatch; prefer the named
    /// methods).
    pub fn op(mut self, tuple: TupleId, kind: OpKind) -> Self {
        self.ops.push(PendingOp { tuple, kind, operand_from: None, pinned: None });
        self
    }

    /// Reads the tuple's switch column.
    pub fn read(self, tuple: TupleId) -> Self {
        self.op(tuple, OpKind::Read)
    }

    /// Overwrites the tuple's switch column.
    pub fn write(self, tuple: TupleId, value: u64) -> Self {
        self.op(tuple, OpKind::Write(value))
    }

    /// Adds a signed delta to the tuple's switch column.
    pub fn add(self, tuple: TupleId, delta: i64) -> Self {
        self.op(tuple, OpKind::Add(delta))
    }

    /// Adds a delta and yields the *previous* value (TPC-C `d_next_o_id`).
    pub fn fetch_add(self, tuple: TupleId, delta: i64) -> Self {
        self.op(tuple, OpKind::FetchAdd(delta))
    }

    /// Subtracts `amount` only if the result stays non-negative. On the host
    /// path a failed check aborts the transaction; on the switch it becomes a
    /// constrained write that simply does not apply.
    pub fn cond_sub(self, tuple: TupleId, amount: u64) -> Self {
        self.op(tuple, OpKind::CondSub(amount))
    }

    /// Inserts a new row (always executed on the host).
    pub fn insert(self, tuple: TupleId, value: u64) -> Self {
        self.op(tuple, OpKind::Insert(value))
    }

    /// Makes the *last appended* operation take its operand from the result
    /// of the earlier operation at index `src` (a read-dependent write, e.g.
    /// SmallBank `Amalgamate` crediting the amount read from another
    /// account). Validated by [`Txn::resolve`].
    ///
    /// # Panics
    /// Panics if no operation has been appended yet.
    pub fn operand_from(mut self, src: usize) -> Self {
        self.ops.last_mut().expect("operand_from must follow an operation").operand_from = Some(src);
        self
    }

    /// Pins the *last appended* operation to an explicit home node,
    /// bypassing placement resolution — needed for inserts of new rows that
    /// should live on a specific partition.
    ///
    /// # Panics
    /// Panics if no operation has been appended yet.
    pub fn at(mut self, home: NodeId) -> Self {
        self.ops.last_mut().expect("at must follow an operation").pinned = Some(home);
        self
    }

    /// Number of operations appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Resolves every operation's home node against `placement` and returns
    /// the executable request. Operations the placement does not claim (and
    /// operations over rows the transaction inserts itself) are placed on
    /// `coordinator`.
    ///
    /// Fails with [`Error::InvalidTxn`] if an `operand_from` reference does
    /// not point at an earlier operation or exceeds the engine's `u8` operand
    /// index space, or if a [`Txn::read_only`] transaction contains a
    /// non-`Read` operation.
    pub fn resolve(&self, placement: &impl Placement, coordinator: NodeId) -> Result<TxnRequest> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for (index, op) in self.ops.iter().enumerate() {
            if self.read_only && op.kind != OpKind::Read {
                return Err(Error::InvalidTxn(format!(
                    "read-only transaction contains a {:?} at operation {index}",
                    op.kind
                )));
            }
            if let Some(src) = op.operand_from {
                if src >= index {
                    return Err(Error::InvalidTxn(format!(
                        "operation {index} takes its operand from operation {src}, which is not an earlier operation"
                    )));
                }
                if src > u8::MAX as usize {
                    return Err(Error::InvalidTxn(format!(
                        "operand_from source {src} exceeds the engine's 255-operation index space"
                    )));
                }
            }
            let home = op.pinned.or_else(|| placement.home_of(op.tuple)).unwrap_or(coordinator);
            let mut resolved = TxnOp::new(op.tuple, op.kind, home);
            resolved.operand_from = op.operand_from.map(|src| src as u8);
            ops.push(resolved);
        }
        let request = TxnRequest::new(ops);
        Ok(if self.read_only { request.into_read_only() } else { request })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::TableId;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn mod2(tuple: TupleId) -> Option<NodeId> {
        Some(NodeId((tuple.key % 2) as u16))
    }

    #[test]
    fn builder_resolves_homes_from_the_placement() {
        let req = Txn::new().read(t(4)).add(t(5), 3).resolve(&mod2, NodeId(0)).unwrap();
        assert_eq!(req.ops[0].home, NodeId(0));
        assert_eq!(req.ops[1].home, NodeId(1));
        assert_eq!(req.ops[0].kind, OpKind::Read);
        assert_eq!(req.ops[1].kind, OpKind::Add(3));
    }

    #[test]
    fn unclaimed_tuples_fall_back_to_the_coordinator() {
        let nowhere = |_: TupleId| None;
        let req = Txn::new().insert(t(99), 7).resolve(&nowhere, NodeId(3)).unwrap();
        assert_eq!(req.ops[0].home, NodeId(3));
    }

    #[test]
    fn at_pins_an_operation_and_overrides_the_placement() {
        let req = Txn::new().insert(t(4), 1).at(NodeId(1)).resolve(&mod2, NodeId(0)).unwrap();
        assert_eq!(req.ops[0].home, NodeId(1));
    }

    #[test]
    fn operand_from_attaches_to_the_last_operation() {
        let req = Txn::new().read(t(0)).write(t(0), 0).add(t(1), 0).operand_from(0).resolve(&mod2, NodeId(0)).unwrap();
        assert_eq!(req.ops[2].operand_from, Some(0));
        assert_eq!(req.ops[0].operand_from, None);
        assert_eq!(req.ops[1].operand_from, None);
    }

    #[test]
    fn forward_operand_reference_is_rejected() {
        let err = Txn::new().add(t(0), 0).operand_from(0).resolve(&mod2, NodeId(0)).unwrap_err();
        assert!(matches!(err, Error::InvalidTxn(_)), "got {err:?}");
        let err = Txn::new().read(t(0)).add(t(1), 0).operand_from(5).resolve(&mod2, NodeId(0)).unwrap_err();
        assert!(matches!(err, Error::InvalidTxn(_)), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "operand_from must follow an operation")]
    fn operand_from_on_an_empty_builder_panics() {
        let _ = Txn::new().operand_from(0);
    }

    #[test]
    fn empty_txn_resolves_to_an_empty_request() {
        let req = Txn::new().resolve(&mod2, NodeId(0)).unwrap();
        assert!(req.is_empty());
        assert!(Txn::new().is_empty());
        assert_eq!(Txn::new().read(t(0)).len(), 1);
    }
}
