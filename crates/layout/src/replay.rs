//! Offline hot-set detection by statement replay (§3.1).
//!
//! P4DB decides which tuples are hot statically: a representative workload is
//! replayed statement-by-statement, access frequencies are counted, and the
//! most frequently accessed tuples (up to the switch capacity) become the hot
//! set that gets offloaded.

use crate::graph::TxnTrace;
use p4db_common::TupleId;
use std::collections::HashMap;

/// Accumulates access frequencies from replayed transactions.
#[derive(Clone, Debug, Default)]
pub struct HotSetDetector {
    counts: HashMap<TupleId, u64>,
    total_accesses: u64,
}

impl HotSetDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access.
    pub fn record_access(&mut self, tuple: TupleId) {
        *self.counts.entry(tuple).or_insert(0) += 1;
        self.total_accesses += 1;
    }

    /// Replays a whole transaction trace.
    pub fn record_trace(&mut self, trace: &TxnTrace) {
        for a in &trace.accesses {
            self.record_access(a.tuple);
        }
    }

    /// Number of distinct tuples observed.
    pub fn distinct_tuples(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Access count for one tuple.
    pub fn count(&self, tuple: TupleId) -> u64 {
        self.counts.get(&tuple).copied().unwrap_or(0)
    }

    /// The `k` most frequently accessed tuples, most frequent first. Ties are
    /// broken by tuple id so the result is deterministic.
    pub fn top_k(&self, k: usize) -> Vec<TupleId> {
        let mut all: Vec<(TupleId, u64)> = self.counts.iter().map(|(t, c)| (*t, *c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0.table.0, a.0.key).cmp(&(b.0.table.0, b.0.key))));
        all.into_iter().take(k).map(|(t, _)| t).collect()
    }

    /// The smallest prefix of the frequency-ranked tuples that covers at
    /// least `fraction` of all recorded accesses — the paper's notion of "the
    /// hot tuples receive X% of all accesses", inverted.
    pub fn covering_set(&self, fraction: f64) -> Vec<TupleId> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        if self.total_accesses == 0 {
            return Vec::new();
        }
        let target = (fraction * self.total_accesses as f64).ceil() as u64;
        let mut covered = 0u64;
        let mut result = Vec::new();
        for tuple in self.top_k(self.counts.len()) {
            if covered >= target {
                break;
            }
            covered += self.count(tuple);
            result.push(tuple);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TraceAccess;
    use p4db_common::TableId;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    #[test]
    fn top_k_orders_by_frequency() {
        let mut d = HotSetDetector::new();
        for _ in 0..10 {
            d.record_access(t(1));
        }
        for _ in 0..5 {
            d.record_access(t(2));
        }
        d.record_access(t(3));
        assert_eq!(d.top_k(2), vec![t(1), t(2)]);
        assert_eq!(d.distinct_tuples(), 3);
        assert_eq!(d.total_accesses(), 16);
        assert_eq!(d.count(t(1)), 10);
        assert_eq!(d.count(t(99)), 0);
    }

    #[test]
    fn top_k_is_deterministic_under_ties() {
        let mut d = HotSetDetector::new();
        d.record_access(t(7));
        d.record_access(t(3));
        d.record_access(t(5));
        assert_eq!(d.top_k(3), vec![t(3), t(5), t(7)]);
    }

    #[test]
    fn covering_set_picks_smallest_prefix() {
        let mut d = HotSetDetector::new();
        // tuple 1: 80 accesses, tuples 2..12: 2 accesses each (20 total).
        for _ in 0..80 {
            d.record_access(t(1));
        }
        for k in 2..12 {
            d.record_access(t(k));
            d.record_access(t(k));
        }
        let hot = d.covering_set(0.75);
        assert_eq!(hot, vec![t(1)], "a single tuple already covers 80% of accesses");
        let hot = d.covering_set(1.0);
        assert_eq!(hot.len(), 11);
    }

    #[test]
    fn record_trace_counts_every_access() {
        let mut d = HotSetDetector::new();
        d.record_trace(&TxnTrace::new(vec![
            TraceAccess::read(t(1)),
            TraceAccess::write(t(1)),
            TraceAccess::read(t(2)),
        ]));
        assert_eq!(d.count(t(1)), 2);
        assert_eq!(d.count(t(2)), 1);
    }

    #[test]
    fn empty_detector_has_empty_covering_set() {
        let d = HotSetDetector::new();
        assert!(d.covering_set(0.9).is_empty());
        assert!(d.top_k(5).is_empty());
    }
}
