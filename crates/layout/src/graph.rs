//! The transaction-access graph of the declustered storage model (§4.2).
//!
//! Tuples are graph nodes. If two tuples are accessed by the same transaction
//! an edge connects them, weighted by how often that co-access occurs. Edges
//! are *directed* when the transaction imposes an access order between the
//! two tuples (a read-dependent write must be placed in a later MAU stage
//! than the tuple it depends on); co-accesses without an ordering dependency
//! contribute weight in both directions ("bidirectional" edges in the paper).

use p4db_common::TupleId;
use std::collections::HashMap;

/// One access of a transaction trace, in execution order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceAccess {
    pub tuple: TupleId,
    /// Whether the access writes the tuple.
    pub write: bool,
    /// Whether this access depends on the values read by *earlier* accesses
    /// of the same transaction (e.g. SmallBank's `SendPayment` writes depend
    /// on the balances read before). Dependencies force a stage ordering.
    pub depends_on_prior: bool,
}

impl TraceAccess {
    pub fn read(tuple: TupleId) -> Self {
        TraceAccess { tuple, write: false, depends_on_prior: false }
    }

    pub fn write(tuple: TupleId) -> Self {
        TraceAccess { tuple, write: true, depends_on_prior: false }
    }

    pub fn dependent_write(tuple: TupleId) -> Self {
        TraceAccess { tuple, write: true, depends_on_prior: true }
    }
}

/// The ordered accesses of one (representative) transaction, used both for
/// building the access graph and for evaluating a layout's single-pass
/// fraction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnTrace {
    pub accesses: Vec<TraceAccess>,
}

impl TxnTrace {
    pub fn new(accesses: Vec<TraceAccess>) -> Self {
        TxnTrace { accesses }
    }

    /// Distinct tuples touched by this trace, in first-access order.
    pub fn tuples(&self) -> Vec<TupleId> {
        let mut seen = Vec::new();
        for a in &self.accesses {
            if !seen.contains(&a.tuple) {
                seen.push(a.tuple);
            }
        }
        seen
    }
}

/// The weighted, directed access graph.
#[derive(Clone, Debug, Default)]
pub struct AccessGraph {
    tuples: Vec<TupleId>,
    index: HashMap<TupleId, usize>,
    /// Directed edge weights `(from, to) -> weight`.
    edges: HashMap<(usize, usize), u64>,
    /// Per-tuple total access frequency.
    freq: Vec<u64>,
    /// Per-tuple sum of access positions (used to derive the average position
    /// of a tuple within transactions — earlier-accessed tuples should end up
    /// in earlier MAU stages).
    position_sum: Vec<u64>,
}

impl AccessGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a TxnTrace>) -> Self {
        let mut g = Self::new();
        for t in traces {
            g.add_trace(t);
        }
        g
    }

    fn intern(&mut self, tuple: TupleId) -> usize {
        if let Some(&i) = self.index.get(&tuple) {
            return i;
        }
        let i = self.tuples.len();
        self.tuples.push(tuple);
        self.index.insert(tuple, i);
        self.freq.push(0);
        self.position_sum.push(0);
        i
    }

    /// Adds one transaction trace to the graph.
    pub fn add_trace(&mut self, trace: &TxnTrace) {
        // Intern and count.
        let mut ids = Vec::with_capacity(trace.accesses.len());
        for (pos, a) in trace.accesses.iter().enumerate() {
            let id = self.intern(a.tuple);
            self.freq[id] += 1;
            self.position_sum[id] += pos as u64;
            ids.push(id);
        }
        // Pairwise edges.
        for j in 1..trace.accesses.len() {
            for i in 0..j {
                let (u, v) = (ids[i], ids[j]);
                if u == v {
                    continue;
                }
                if trace.accesses[j].depends_on_prior {
                    // Ordered dependency: u must come before v.
                    *self.edges.entry((u, v)).or_insert(0) += 1;
                } else {
                    // No ordering constraint: bidirectional edge.
                    *self.edges.entry((u, v)).or_insert(0) += 1;
                    *self.edges.entry((v, u)).or_insert(0) += 1;
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn tuples(&self) -> &[TupleId] {
        &self.tuples
    }

    pub fn tuple_index(&self, tuple: TupleId) -> Option<usize> {
        self.index.get(&tuple).copied()
    }

    /// Access frequency of a tuple (by graph index).
    pub fn frequency(&self, idx: usize) -> u64 {
        self.freq[idx]
    }

    /// Average position of the tuple within the transactions that access it
    /// (0 = always accessed first). Used by the stage-ordering heuristic.
    pub fn mean_position(&self, idx: usize) -> f64 {
        if self.freq[idx] == 0 {
            0.0
        } else {
            self.position_sum[idx] as f64 / self.freq[idx] as f64
        }
    }

    /// Directed edge weight from `u` to `v` (graph indices).
    pub fn weight(&self, u: usize, v: usize) -> u64 {
        self.edges.get(&(u, v)).copied().unwrap_or(0)
    }

    /// Undirected co-access weight between `u` and `v`: the sum of both
    /// directions, which is what the max-cut maximises across partitions.
    pub fn coaccess_weight(&self, u: usize, v: usize) -> u64 {
        self.weight(u, v) + self.weight(v, u)
    }

    /// Iterates all directed edges `(u, v, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.edges.iter().map(|(&(u, v), &w)| (u, v, w))
    }

    /// Total undirected co-access weight of the graph (each unordered pair
    /// counted once).
    pub fn total_coaccess_weight(&self) -> u64 {
        let mut total = 0;
        for (&(u, v), &w) in &self.edges {
            if u < v {
                total += w + self.weight(v, u);
            } else if !self.edges.contains_key(&(v, u)) {
                // Asymmetric edge stored only as (u, v) with u > v.
                total += w;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::TableId;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    #[test]
    fn trace_tuples_deduplicates_in_order() {
        let trace = TxnTrace::new(vec![TraceAccess::read(t(5)), TraceAccess::write(t(3)), TraceAccess::write(t(5))]);
        assert_eq!(trace.tuples(), vec![t(5), t(3)]);
    }

    #[test]
    fn independent_accesses_produce_bidirectional_edges() {
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::read(t(2))]);
        let g = AccessGraph::from_traces([&trace]);
        let a = g.tuple_index(t(1)).unwrap();
        let b = g.tuple_index(t(2)).unwrap();
        assert_eq!(g.weight(a, b), 1);
        assert_eq!(g.weight(b, a), 1);
        assert_eq!(g.coaccess_weight(a, b), 2);
    }

    #[test]
    fn dependent_write_produces_directed_edge() {
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::dependent_write(t(2))]);
        let g = AccessGraph::from_traces([&trace]);
        let a = g.tuple_index(t(1)).unwrap();
        let b = g.tuple_index(t(2)).unwrap();
        assert_eq!(g.weight(a, b), 1);
        assert_eq!(g.weight(b, a), 0);
    }

    #[test]
    fn repeated_traces_accumulate_weight_and_frequency() {
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::read(t(2))]);
        let mut g = AccessGraph::new();
        for _ in 0..10 {
            g.add_trace(&trace);
        }
        let a = g.tuple_index(t(1)).unwrap();
        let b = g.tuple_index(t(2)).unwrap();
        assert_eq!(g.coaccess_weight(a, b), 20);
        assert_eq!(g.frequency(a), 10);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn mean_position_reflects_access_order() {
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::read(t(2)), TraceAccess::read(t(3))]);
        let g = AccessGraph::from_traces([&trace]);
        assert!(g.mean_position(g.tuple_index(t(1)).unwrap()) < g.mean_position(g.tuple_index(t(3)).unwrap()));
    }

    #[test]
    fn same_tuple_twice_in_one_txn_adds_no_self_edge() {
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::write(t(1))]);
        let g = AccessGraph::from_traces([&trace]);
        let a = g.tuple_index(t(1)).unwrap();
        assert_eq!(g.weight(a, a), 0);
        assert_eq!(g.frequency(a), 2);
    }
}
