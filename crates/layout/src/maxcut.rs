//! Capacity-constrained max-cut over the access graph.
//!
//! The paper uses MQLib's heuristics to split the hot set into `N` partitions
//! (one per register array) so that tuples frequently accessed together land
//! in *different* partitions — i.e. it maximises the total weight of edges
//! crossing partitions (max-cut), subject to the register-array capacity.
//! MQLib is an external C++ library, so this crate substitutes a classic
//! greedy construction followed by first-improvement local search (single
//! moves and pairwise swaps). For the hot-set sizes the switch can hold (a
//! few hundred to a few hundred thousand tuples, with dense structure only on
//! the small, contended core) this reaches the same qualitative layouts: the
//! evaluation only consumes the resulting single-pass fraction, not the cut
//! value itself.

use crate::graph::AccessGraph;
use p4db_common::rand_util::FastRng;

/// Result of partitioning the access graph.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// Partition index for every graph node (same indexing as
    /// [`AccessGraph::tuples`]).
    pub partition_of: Vec<usize>,
    pub num_partitions: usize,
    /// Total co-access weight crossing partitions (the objective).
    pub cut_weight: u64,
    /// Total co-access weight inside partitions (what multi-pass transactions
    /// are made of).
    pub intra_weight: u64,
}

impl Partitioning {
    /// Members of each partition.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_partitions];
        for (node, &p) in self.partition_of.iter().enumerate() {
            members[p].push(node);
        }
        members
    }
}

/// Computes a capacity-constrained max-cut of `graph` into `num_partitions`
/// partitions of at most `capacity` nodes each.
///
/// # Panics
/// Panics if the graph cannot fit (`graph.len() > num_partitions * capacity`)
/// or if `num_partitions == 0` / `capacity == 0` while the graph is
/// non-empty.
pub fn max_cut(graph: &AccessGraph, num_partitions: usize, capacity: usize, seed: u64) -> Partitioning {
    let n = graph.len();
    if n == 0 {
        return Partitioning { partition_of: Vec::new(), num_partitions, cut_weight: 0, intra_weight: 0 };
    }
    assert!(num_partitions > 0 && capacity > 0, "need at least one partition with capacity");
    assert!(
        n <= num_partitions * capacity,
        "hot set of {n} tuples does not fit into {num_partitions} partitions of {capacity}"
    );

    // Undirected adjacency lists (each unordered pair appears in both lists
    // with its total co-access weight); the greedy pass and the local search
    // only need neighbourhood sums, so this keeps them O(E) per sweep.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (u, v, w) in graph.edges() {
        if u < v {
            let total = w + graph.weight(v, u);
            adj[u].push((v, total));
            adj[v].push((u, total));
        } else if graph.weight(v, u) == 0 {
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
    }

    // --- Greedy construction -------------------------------------------------
    // Process nodes by descending access frequency (the most contended tuples
    // choose their partition first, when the most freedom is left).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph.frequency(i)));

    let mut partition_of = vec![usize::MAX; n];
    let mut sizes = vec![0usize; num_partitions];
    let mut rng = FastRng::new(seed ^ 0xD1CE_5EED);

    for &node in &order {
        // Gain of placing `node` in partition p = co-access weight to nodes
        // already placed in *other* partitions, i.e. we want to minimise the
        // weight to nodes already in p.
        let mut weight_to = vec![0u64; num_partitions];
        for &(other, w) in &adj[node] {
            let p = partition_of[other];
            if p != usize::MAX {
                weight_to[p] += w;
            }
        }
        let mut best: Option<(usize, u64, usize)> = None;
        for p in 0..num_partitions {
            if sizes[p] >= capacity {
                continue;
            }
            // Prefer minimal intra-partition weight; break ties by smaller
            // size, then randomly, to spread the hot set evenly.
            let key = (weight_to[p], sizes[p]);
            let better = match best {
                None => true,
                Some((_, bw, bs)) => key < (bw, bs) || (key == (bw, bs) && rng.gen_bool(0.5)),
            };
            if better {
                best = Some((p, weight_to[p], sizes[p]));
            }
        }
        let (p, _, _) = best.expect("capacity check guarantees a free partition");
        partition_of[node] = p;
        sizes[p] += 1;
    }

    // --- Local search ---------------------------------------------------------
    // First-improvement single-node moves, bounded number of sweeps so the
    // planner stays fast even for large hot sets.
    let max_sweeps = 8;
    for _ in 0..max_sweeps {
        let mut improved = false;
        for node in 0..n {
            let current = partition_of[node];
            let mut weight_to = vec![0u64; num_partitions];
            for &(other, w) in &adj[node] {
                weight_to[partition_of[other]] += w;
            }
            let mut best_p = current;
            let mut best_w = weight_to[current];
            for p in 0..num_partitions {
                if p != current && sizes[p] < capacity && weight_to[p] < best_w {
                    best_p = p;
                    best_w = weight_to[p];
                }
            }
            if best_p != current {
                sizes[current] -= 1;
                sizes[best_p] += 1;
                partition_of[node] = best_p;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let (cut_weight, intra_weight) = cut_value(graph, &partition_of);
    Partitioning { partition_of, num_partitions, cut_weight, intra_weight }
}

/// Result of assigning graph nodes to the switches of a multi-switch
/// topology (same node indexing as [`AccessGraph::tuples`]).
///
/// This is the *complement* of [`Partitioning`]: where the max-cut spreads
/// co-accessed tuples across the register arrays *within* one pipeline
/// (crossing arrays is free, staying costs a pass), the switch assignment
/// keeps co-accessed tuples *together* on one switch — every edge crossing a
/// switch boundary is a transaction that can no longer run abort-free on a
/// single pipeline and falls back to the host path.
#[derive(Clone, Debug)]
pub struct SwitchAssignment {
    /// Owning switch index for every graph node.
    pub switch_of: Vec<usize>,
    pub num_switches: usize,
    /// Total co-access weight crossing switches (what cross-switch fallbacks
    /// are made of — the objective minimises this).
    pub cross_weight: u64,
    /// Total co-access weight kept within one switch.
    pub intra_weight: u64,
}

impl SwitchAssignment {
    /// Members of each switch.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_switches];
        for (node, &s) in self.switch_of.iter().enumerate() {
            members[s].push(node);
        }
        members
    }
}

/// Assigns the graph's nodes to `num_switches` switches of at most
/// `capacity` nodes each, *minimising* the co-access weight that crosses a
/// switch boundary. Deterministic for a given `(graph, seed)` pair.
///
/// Without a capacity bound the trivial optimum puts everything on one
/// switch; callers that want the load spread (every multi-switch topology
/// does — an idle switch scales nothing) pass a balanced capacity, e.g.
/// `hot_set_size.div_ceil(num_switches)`.
///
/// # Panics
/// Panics like [`max_cut`] if the graph cannot fit.
pub fn assign_switches(graph: &AccessGraph, num_switches: usize, capacity: usize, seed: u64) -> SwitchAssignment {
    let n = graph.len();
    if n == 0 {
        return SwitchAssignment { switch_of: Vec::new(), num_switches, cross_weight: 0, intra_weight: 0 };
    }
    assert!(num_switches > 0 && capacity > 0, "need at least one switch with capacity");
    assert!(
        n <= num_switches * capacity,
        "hot set of {n} tuples does not fit onto {num_switches} switches of {capacity}"
    );

    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (u, v, w) in graph.edges() {
        if u < v {
            let total = w + graph.weight(v, u);
            adj[u].push((v, total));
            adj[v].push((u, total));
        } else if graph.weight(v, u) == 0 {
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
    }

    // Greedy: most-accessed nodes choose first, each taking the switch it has
    // the most co-access affinity with; ties go to the least-loaded switch
    // (then a seeded coin), which spreads affinity-free nodes evenly.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph.frequency(i)));

    let mut switch_of = vec![usize::MAX; n];
    let mut sizes = vec![0usize; num_switches];
    let mut rng = FastRng::new(seed ^ 0x5117_C4A5);

    for &node in &order {
        let mut weight_to = vec![0u64; num_switches];
        for &(other, w) in &adj[node] {
            let s = switch_of[other];
            if s != usize::MAX {
                weight_to[s] += w;
            }
        }
        let mut best: Option<(usize, u64, usize)> = None;
        for s in 0..num_switches {
            if sizes[s] >= capacity {
                continue;
            }
            // Maximise affinity; break ties by smaller size, then randomly.
            let better = match best {
                None => true,
                Some((_, bw, bs)) => {
                    (weight_to[s], std::cmp::Reverse(sizes[s])) > (bw, std::cmp::Reverse(bs))
                        || (weight_to[s] == bw && sizes[s] == bs && rng.gen_bool(0.5))
                }
            };
            if better {
                best = Some((s, weight_to[s], sizes[s]));
            }
        }
        let (s, _, _) = best.expect("capacity check guarantees a free switch");
        switch_of[node] = s;
        sizes[s] += 1;
    }

    // First-improvement local search: move a node to the switch it has more
    // affinity with, when that switch has room.
    let max_sweeps = 8;
    let affinity = |node: usize, switch_of: &[usize]| {
        let mut weight_to = vec![0u64; num_switches];
        for &(other, w) in &adj[node] {
            weight_to[switch_of[other]] += w;
        }
        weight_to
    };
    for _ in 0..max_sweeps {
        let mut improved = false;
        for node in 0..n {
            let current = switch_of[node];
            let weight_to = affinity(node, &switch_of);
            let mut best_s = current;
            let mut best_w = weight_to[current];
            for s in 0..num_switches {
                if s != current && sizes[s] < capacity && weight_to[s] > best_w {
                    best_s = s;
                    best_w = weight_to[s];
                }
            }
            if best_s != current {
                sizes[current] -= 1;
                sizes[best_s] += 1;
                switch_of[node] = best_s;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    // Pairwise swaps repair what single moves cannot under tight capacity
    // (a balanced topology fills every switch exactly, so a full switch
    // blocks a move even when two nodes would both rather trade places).
    // Quadratic in the graph size, so only run where it stays cheap — the
    // greedy result already stands on larger hot sets.
    if n <= 2048 {
        for _ in 0..max_sweeps {
            let mut improved = false;
            for u in 0..n {
                let wu = affinity(u, &switch_of);
                let cu = switch_of[u];
                for v in u + 1..n {
                    let cv = switch_of[v];
                    if cv == cu {
                        continue;
                    }
                    let wv = affinity(v, &switch_of);
                    let w_uv = adj[u].iter().find(|&&(o, _)| o == v).map_or(0, |&(_, w)| w);
                    // Intra-switch weight gained by trading places; the u—v
                    // edge itself stays cross either way, but it is counted
                    // in both nodes' affinity to the other's switch.
                    let gain = (wu[cv] + wv[cu]) as i64 - (wu[cu] + wv[cv]) as i64 - 2 * w_uv as i64;
                    if gain > 0 {
                        switch_of[u] = cv;
                        switch_of[v] = cu;
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    let (cross_weight, intra_weight) = cut_value(graph, &switch_of);
    SwitchAssignment { switch_of, num_switches, cross_weight, intra_weight }
}

/// Returns `(cut_weight, intra_weight)` of an assignment.
pub fn cut_value(graph: &AccessGraph, partition_of: &[usize]) -> (u64, u64) {
    let mut cut = 0u64;
    let mut intra = 0u64;
    for (u, v, w) in graph.edges() {
        if u < v {
            let w_total = w + graph.weight(v, u);
            if partition_of[u] == partition_of[v] {
                intra += w_total;
            } else {
                cut += w_total;
            }
        } else if graph.weight(v, u) == 0 {
            // Directed edge stored only in this orientation.
            if partition_of[u] == partition_of[v] {
                intra += w;
            } else {
                cut += w;
            }
        }
    }
    (cut, intra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TraceAccess, TxnTrace};
    use p4db_common::{TableId, TupleId};

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn pair_trace(a: u64, b: u64) -> TxnTrace {
        TxnTrace::new(vec![TraceAccess::read(t(a)), TraceAccess::read(t(b))])
    }

    #[test]
    fn empty_graph_yields_empty_partitioning() {
        let g = AccessGraph::new();
        let p = max_cut(&g, 4, 10, 1);
        assert!(p.partition_of.is_empty());
        assert_eq!(p.cut_weight, 0);
    }

    #[test]
    fn coaccessed_pairs_are_separated() {
        // Three transactions each touching a distinct pair: the pairs should
        // be split across partitions, giving a full cut.
        let traces = vec![pair_trace(1, 2), pair_trace(3, 4), pair_trace(5, 6)];
        let g = AccessGraph::from_traces(&traces);
        let p = max_cut(&g, 2, 3, 7);
        assert_eq!(p.intra_weight, 0, "every co-accessed pair must be cut");
        for trace in &traces {
            let ids: Vec<_> = trace.tuples().iter().map(|&x| g.tuple_index(x).unwrap()).collect();
            assert_ne!(p.partition_of[ids[0]], p.partition_of[ids[1]]);
        }
    }

    #[test]
    fn capacity_constraint_is_respected() {
        let traces: Vec<_> = (0..12).map(|i| pair_trace(2 * i, 2 * i + 1)).collect();
        let g = AccessGraph::from_traces(&traces);
        let p = max_cut(&g, 4, 6, 3);
        let members = p.members();
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), 24);
        for m in members {
            assert!(m.len() <= 6, "partition over capacity: {}", m.len());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversubscription_panics() {
        let traces: Vec<_> = (0..10).map(|i| pair_trace(2 * i, 2 * i + 1)).collect();
        let g = AccessGraph::from_traces(&traces);
        let _ = max_cut(&g, 2, 5, 1);
    }

    #[test]
    fn clique_is_spread_across_partitions() {
        // One transaction touching 8 tuples: with 8 partitions, all tuples
        // should land in distinct partitions so the transaction can be
        // executed in a single pass.
        let trace = TxnTrace::new((0..8).map(|i| TraceAccess::read(t(i))).collect());
        let g = AccessGraph::from_traces([&trace]);
        let p = max_cut(&g, 8, 1, 11);
        let mut seen: Vec<usize> = p.partition_of.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "all 8 tuples in distinct partitions");
        assert_eq!(p.intra_weight, 0);
    }

    #[test]
    fn cut_value_counts_each_pair_once() {
        let traces = vec![pair_trace(1, 2)];
        let g = AccessGraph::from_traces(&traces);
        let same = vec![0, 0];
        let diff = vec![0, 1];
        assert_eq!(cut_value(&g, &same), (0, 2));
        assert_eq!(cut_value(&g, &diff), (2, 0));
    }

    #[test]
    fn switch_assignment_keeps_coaccessed_pairs_together() {
        // Three heavy pairs: with two switches of capacity 4, every pair can
        // stay whole on one switch (capacity 3 could not — a pair would have
        // to straddle the boundary).
        let mut traces = Vec::new();
        for _ in 0..10 {
            traces.push(pair_trace(1, 2));
            traces.push(pair_trace(3, 4));
            traces.push(pair_trace(5, 6));
        }
        let g = AccessGraph::from_traces(&traces);
        let a = assign_switches(&g, 2, 4, 7);
        assert_eq!(a.cross_weight, 0, "every co-accessed pair fits on one switch");
        for trace in &traces[..3] {
            let ids: Vec<_> = trace.tuples().iter().map(|&x| g.tuple_index(x).unwrap()).collect();
            assert_eq!(a.switch_of[ids[0]], a.switch_of[ids[1]]);
        }
        let members = a.members();
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), 6);
        for m in members {
            assert!(m.len() <= 4, "switch over capacity: {}", m.len());
        }
    }

    #[test]
    fn switch_assignment_is_deterministic_under_seed() {
        let traces: Vec<_> = (0..20).map(|i| pair_trace(i % 13, (i * 7) % 13)).collect();
        let g = AccessGraph::from_traces(&traces);
        let a = assign_switches(&g, 4, 4, 42);
        let b = assign_switches(&g, 4, 4, 42);
        assert_eq!(a.switch_of, b.switch_of);
        assert_eq!(a.cross_weight, b.cross_weight);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn switch_oversubscription_panics() {
        let traces: Vec<_> = (0..10).map(|i| pair_trace(2 * i, 2 * i + 1)).collect();
        let g = AccessGraph::from_traces(&traces);
        let _ = assign_switches(&g, 2, 5, 1);
    }

    #[test]
    fn local_search_improves_over_random_assignment() {
        // Heavier structure: two "communities" that are frequently
        // co-accessed internally; the cut should separate members of the same
        // community.
        let mut traces = Vec::new();
        for _ in 0..50 {
            traces.push(pair_trace(0, 1));
            traces.push(pair_trace(2, 3));
        }
        traces.push(pair_trace(0, 2)); // light cross edge
        let g = AccessGraph::from_traces(&traces);
        let p = max_cut(&g, 2, 2, 5);
        // The heavy pairs (0,1) and (2,3) must both be cut.
        let idx = |k| g.tuple_index(t(k)).unwrap();
        assert_ne!(p.partition_of[idx(0)], p.partition_of[idx(1)]);
        assert_ne!(p.partition_of[idx(2)], p.partition_of[idx(3)]);
        assert!(p.cut_weight >= 200);
    }
}
