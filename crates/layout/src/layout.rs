//! The declustered data layout: assigning hot tuples to register arrays of
//! MAU stages (§4.3).
//!
//! The planner runs the capacity-constrained max-cut, then orders the
//! resulting partitions along the pipeline using the directed edges of the
//! access graph (tuples that are read before other tuples are written must
//! sit in earlier stages), and finally maps partitions onto concrete
//! `(stage, array)` register arrays. The alternative strategies (`Random`,
//! `Worst`, `Hashed`) exist for the Fig 15c / Fig 16 ablations and for hot
//! sets too large to justify graph construction (Fig 17).

use crate::graph::{AccessGraph, TxnTrace};
use crate::maxcut::{assign_switches, max_cut};
use p4db_common::rand_util::FastRng;
use p4db_common::TupleId;
use std::collections::{HashMap, HashSet};

/// Assigns every hot tuple to exactly one switch of a multi-switch topology:
/// the first level of the multi-switch layout, run *before* the per-switch
/// [`LayoutPlanner`] places each switch's share onto its own pipeline.
///
/// Tuples that co-occur in the traces are kept on the same switch where the
/// per-switch `capacity` allows (each crossing pair is a transaction that
/// falls back to the host path); tuples never seen in a trace fill the
/// least-loaded switches. Deterministic for a given `(inputs, seed)` pair,
/// and every hot tuple lands on exactly one switch.
///
/// # Panics
/// Panics if the hot set does not fit (`hot_tuples.len() > num_switches *
/// capacity`) or if `num_switches == 0`.
pub fn assign_tuples_to_switches(
    hot_tuples: &[TupleId],
    traces: &[TxnTrace],
    num_switches: usize,
    capacity: usize,
    seed: u64,
) -> Vec<Vec<TupleId>> {
    assert!(num_switches > 0, "need at least one switch");
    assert!(
        hot_tuples.len() <= num_switches * capacity,
        "hot set of {} tuples does not fit onto {num_switches} switches of {capacity}",
        hot_tuples.len()
    );
    if num_switches == 1 {
        return vec![hot_tuples.to_vec()];
    }

    // Affinity assignment over the hot-projected access graph (cold accesses
    // carry no cross-switch cost, so they are dropped first).
    let sub_traces = project_traces(traces, hot_tuples);
    let graph = AccessGraph::from_traces(&sub_traces);
    let hot_set: HashSet<TupleId> = hot_tuples.iter().copied().collect();
    let mut members: Vec<Vec<TupleId>> = vec![Vec::new(); num_switches];
    let mut assigned: HashSet<TupleId> = HashSet::new();
    if !graph.is_empty() {
        let assignment = assign_switches(&graph, num_switches, capacity, seed);
        for (node, &tuple) in graph.tuples().iter().enumerate() {
            if hot_set.contains(&tuple) {
                members[assignment.switch_of[node]].push(tuple);
                assigned.insert(tuple);
            }
        }
    }

    // Untraced hot tuples: fill the least-loaded switch (first on ties, so
    // the result does not depend on iteration luck).
    for &tuple in hot_tuples {
        if assigned.contains(&tuple) {
            continue;
        }
        let (s, _) = members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.len() < capacity)
            .min_by_key(|(s, m)| (m.len(), *s))
            .expect("capacity checked at entry");
        members[s].push(tuple);
    }
    members
}

/// A register array position on the switch (the cell index within the array
/// is assigned later by the switch control plane during offload).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StageArray {
    pub stage: u8,
    pub array: u8,
}

/// The hot-set data layout: tuple → register array.
#[derive(Clone, Debug, Default)]
pub struct DataLayout {
    placement: HashMap<TupleId, StageArray>,
}

impl DataLayout {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, tuple: TupleId, at: StageArray) {
        self.placement.insert(tuple, at);
    }

    pub fn get(&self, tuple: TupleId) -> Option<StageArray> {
        self.placement.get(&tuple).copied()
    }

    pub fn contains(&self, tuple: TupleId) -> bool {
        self.placement.contains_key(&tuple)
    }

    pub fn len(&self) -> usize {
        self.placement.len()
    }

    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (TupleId, StageArray)> + '_ {
        self.placement.iter().map(|(t, s)| (*t, *s))
    }

    /// Number of tuples per (stage, array), used to check capacity and in
    /// tests.
    pub fn occupancy(&self) -> HashMap<StageArray, usize> {
        let mut occ = HashMap::new();
        for (_, sa) in self.iter() {
            *occ.entry(sa).or_insert(0) += 1;
        }
        occ
    }
}

/// How the planner assigns tuples to register arrays.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LayoutStrategy {
    /// The paper's declustered storage model: max-cut + direction-aware
    /// ordering of partitions onto stages.
    Declustered,
    /// Tuples are assigned to register arrays pseudo-randomly (the
    /// "random / worst-case data layout" baseline of Fig 15c and Fig 16).
    Random { seed: u64 },
    /// Adversarial layout: tuples are placed so that the access order of the
    /// traces is *reversed* along the pipeline, maximising multi-pass
    /// executions. Used to bound the cost of a bad layout.
    Worst,
    /// Key-hash placement without looking at the workload. Used for very
    /// large hot sets (Fig 17) where building the access graph would dominate
    /// and the workload (YCSB) has no ordering dependencies anyway.
    Hashed,
}

/// The data-layout planner. Mirrors the geometry of the switch it plans for.
#[derive(Copy, Clone, Debug)]
pub struct LayoutPlanner {
    pub num_stages: u8,
    pub arrays_per_stage: u8,
    pub slots_per_array: u32,
}

impl LayoutPlanner {
    pub fn new(num_stages: u8, arrays_per_stage: u8, slots_per_array: u32) -> Self {
        assert!(num_stages > 0 && arrays_per_stage > 0 && slots_per_array > 0);
        LayoutPlanner { num_stages, arrays_per_stage, slots_per_array }
    }

    /// Planner matching a switch configuration.
    pub fn for_switch(num_stages: u8, arrays_per_stage: u8, slots_per_array: u32) -> Self {
        Self::new(num_stages, arrays_per_stage, slots_per_array)
    }

    fn num_arrays(&self) -> usize {
        self.num_stages as usize * self.arrays_per_stage as usize
    }

    fn nth_array(&self, n: usize) -> StageArray {
        // Stage-major order: arrays of stage 0 first, then stage 1, ...
        StageArray {
            stage: (n / self.arrays_per_stage as usize) as u8,
            array: (n % self.arrays_per_stage as usize) as u8,
        }
    }

    /// Plans a layout for `hot_tuples` given representative transaction
    /// `traces` over (a subset of) those tuples.
    ///
    /// Tuples never seen in any trace are placed with the hashed strategy —
    /// they carry no ordering information, so any free array is as good as
    /// another.
    ///
    /// # Panics
    /// Panics if the hot set does not fit on the switch.
    pub fn plan(&self, hot_tuples: &[TupleId], traces: &[TxnTrace], strategy: LayoutStrategy) -> DataLayout {
        let capacity_total = self.num_arrays() as u64 * self.slots_per_array as u64;
        assert!(
            hot_tuples.len() as u64 <= capacity_total,
            "hot set of {} tuples exceeds switch capacity of {capacity_total}",
            hot_tuples.len()
        );

        match strategy {
            LayoutStrategy::Hashed => self.plan_hashed(hot_tuples),
            LayoutStrategy::Random { seed } => self.plan_random(hot_tuples, seed),
            LayoutStrategy::Worst => self.plan_worst(hot_tuples, traces),
            LayoutStrategy::Declustered => self.plan_declustered(hot_tuples, traces),
        }
    }

    fn plan_hashed(&self, hot_tuples: &[TupleId]) -> DataLayout {
        let mut layout = DataLayout::new();
        let arrays = self.num_arrays();
        let mut occupancy = vec![0u32; arrays];
        for (i, &t) in hot_tuples.iter().enumerate() {
            // Round-robin over arrays keeps occupancy balanced regardless of
            // key distribution.
            let mut n = i % arrays;
            while occupancy[n] >= self.slots_per_array {
                n = (n + 1) % arrays;
            }
            occupancy[n] += 1;
            layout.insert(t, self.nth_array(n));
        }
        layout
    }

    fn plan_random(&self, hot_tuples: &[TupleId], seed: u64) -> DataLayout {
        let mut layout = DataLayout::new();
        let arrays = self.num_arrays();
        let mut occupancy = vec![0u32; arrays];
        let mut rng = FastRng::new(seed);
        for &t in hot_tuples {
            let mut n = rng.pick(arrays);
            while occupancy[n] >= self.slots_per_array {
                n = (n + 1) % arrays;
            }
            occupancy[n] += 1;
            layout.insert(t, self.nth_array(n));
        }
        layout
    }

    /// Worst-case layout: order tuples by the position at which transactions
    /// access them and then place *later-accessed* tuples into *earlier*
    /// stages, so that single-pass execution is impossible whenever an order
    /// dependency exists.
    fn plan_worst(&self, hot_tuples: &[TupleId], traces: &[TxnTrace]) -> DataLayout {
        let graph = AccessGraph::from_traces(traces);
        let mut ranked: Vec<(TupleId, f64)> = hot_tuples
            .iter()
            .map(|&t| {
                let pos = graph.tuple_index(t).map(|i| graph.mean_position(i)).unwrap_or(0.0);
                (t, pos)
            })
            .collect();
        // Descending mean position: tuples accessed last go to stage 0.
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut layout = DataLayout::new();
        let arrays = self.num_arrays();
        let mut occupancy = vec![0u32; arrays];
        let mut n = 0usize;
        for (t, _) in ranked {
            while occupancy[n] >= self.slots_per_array {
                n = (n + 1) % arrays;
            }
            occupancy[n] += 1;
            layout.insert(t, self.nth_array(n));
            // Advance slowly so consecutive (by reversed order) tuples fill an
            // array before moving on — this concentrates co-accessed tuples in
            // the same array, the other ingredient of a bad layout.
            if occupancy[n] >= self.slots_per_array {
                n = (n + 1) % arrays;
            }
        }
        layout
    }

    /// The declustered storage model proper (§4.3), realised in two levels:
    ///
    /// 1. **Stage ordering** — tuples are ranked by the mean position at
    ///    which transactions access them and split evenly into one group per
    ///    MAU stage, so that tuples accessed earlier (the sources of directed
    ///    access-graph edges) land in earlier stages. This is the
    ///    direction-aware ordering step of the paper: it ensures that
    ///    read-dependent writes can be satisfied downstream of the reads they
    ///    depend on.
    /// 2. **Intra-stage declustering** — within each stage group a
    ///    capacity-constrained max-cut over the induced access graph spreads
    ///    co-accessed tuples across the stage's register arrays, so that a
    ///    transaction never has to touch the same array twice in a pass.
    fn plan_declustered(&self, hot_tuples: &[TupleId], traces: &[TxnTrace]) -> DataLayout {
        let graph = AccessGraph::from_traces(traces);
        let mut layout = DataLayout::new();
        let mut occupancy = vec![0u32; self.num_arrays()];

        // --- Level 1: order traced tuples by mean access position ----------
        let hot_set: HashSet<TupleId> = hot_tuples.iter().copied().collect();
        let mut traced: Vec<(TupleId, f64)> = graph
            .tuples()
            .iter()
            .enumerate()
            .filter(|(_, t)| hot_set.contains(t))
            .map(|(i, &t)| (t, graph.mean_position(i)))
            .collect();
        traced.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.0.table.0, a.0.key).cmp(&(b.0.table.0, b.0.key)))
        });

        if !traced.is_empty() {
            let stage_capacity = self.arrays_per_stage as usize * self.slots_per_array as usize;
            // Spread evenly over all stages (never exceeding a stage's
            // capacity) so the pipeline depth is fully used for ordering.
            let per_stage = traced.len().div_ceil(self.num_stages as usize).min(stage_capacity);
            for (stage_idx, chunk) in traced.chunks(per_stage.max(1)).enumerate() {
                let stage = (stage_idx as u8).min(self.num_stages - 1);
                // --- Level 2: decluster within the stage -------------------
                let chunk_tuples: Vec<TupleId> = chunk.iter().map(|(t, _)| *t).collect();
                let sub_traces = project_traces(traces, &chunk_tuples);
                let sub_graph = AccessGraph::from_traces(&sub_traces);
                let partitioning = if sub_graph.is_empty() {
                    None
                } else {
                    Some(max_cut(
                        &sub_graph,
                        self.arrays_per_stage as usize,
                        self.slots_per_array as usize,
                        0x1A70_5EED ^ stage_idx as u64,
                    ))
                };
                let mut next_rr = 0usize;
                for &tuple in &chunk_tuples {
                    let array = match partitioning
                        .as_ref()
                        .and_then(|p| sub_graph.tuple_index(tuple).map(|i| p.partition_of[i]))
                    {
                        Some(a) => a as u8,
                        None => {
                            let a = (next_rr % self.arrays_per_stage as usize) as u8;
                            next_rr += 1;
                            a
                        }
                    };
                    // Respect per-array capacity; overflow spills to the next
                    // array of the same stage.
                    let mut array = array;
                    let mut attempts = 0;
                    while occupancy[self.flat_index(stage, array)] >= self.slots_per_array
                        && attempts < self.arrays_per_stage
                    {
                        array = (array + 1) % self.arrays_per_stage;
                        attempts += 1;
                    }
                    let sa = StageArray { stage, array };
                    occupancy[self.flat_index(stage, array)] += 1;
                    layout.insert(tuple, sa);
                }
            }
        }

        // Hot tuples never observed in a trace: spread them over the
        // least-loaded arrays.
        for &t in hot_tuples {
            if layout.contains(t) {
                continue;
            }
            let (n, _) = occupancy
                .iter()
                .enumerate()
                .filter(|(_, &o)| o < self.slots_per_array)
                .min_by_key(|(_, &o)| o)
                .expect("capacity checked at entry");
            occupancy[n] += 1;
            layout.insert(t, self.nth_array(n));
        }
        layout
    }

    fn flat_index(&self, stage: u8, array: u8) -> usize {
        stage as usize * self.arrays_per_stage as usize + array as usize
    }
}

/// Restricts traces to the accesses that touch `tuples`, dropping everything
/// else. Used to build the per-stage sub-graphs of the declustered planner.
fn project_traces(traces: &[TxnTrace], tuples: &[TupleId]) -> Vec<TxnTrace> {
    let keep: HashSet<TupleId> = tuples.iter().copied().collect();
    traces
        .iter()
        .filter_map(|t| {
            let accesses: Vec<_> = t.accesses.iter().copied().filter(|a| keep.contains(&a.tuple)).collect();
            if accesses.len() >= 2 {
                Some(TxnTrace::new(accesses))
            } else {
                None
            }
        })
        .collect()
}

/// Evaluates a layout: the fraction of the given traces that can execute in a
/// single pipeline pass under it (the metric Fig 15c / Fig 16 turn on).
///
/// A trace is single-pass iff visiting its accesses in order never goes to a
/// strictly earlier stage and never touches the same register array twice.
/// Tuples missing from the layout are ignored (they are cold and execute on
/// the host).
pub fn single_pass_fraction(layout: &DataLayout, traces: &[TxnTrace]) -> f64 {
    if traces.is_empty() {
        return 1.0;
    }
    let single = traces.iter().filter(|t| trace_is_single_pass(layout, t)).count();
    single as f64 / traces.len() as f64
}

/// Whether one trace is single-pass under the layout.
pub fn trace_is_single_pass(layout: &DataLayout, trace: &TxnTrace) -> bool {
    let mut last_stage: i32 = -1;
    let mut touched: Vec<StageArray> = Vec::new();
    for access in &trace.accesses {
        let Some(sa) = layout.get(access.tuple) else { continue };
        if (sa.stage as i32) < last_stage || touched.contains(&sa) {
            return false;
        }
        last_stage = sa.stage as i32;
        touched.push(sa);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TraceAccess;
    use p4db_common::TableId;

    fn t(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    fn planner() -> LayoutPlanner {
        LayoutPlanner::new(4, 2, 16)
    }

    /// SmallBank-like traces: read A, read B, then dependent writes to both.
    fn dependent_traces() -> Vec<TxnTrace> {
        let mut traces = Vec::new();
        for i in 0..8u64 {
            let a = t(2 * i);
            let b = t(2 * i + 1);
            traces.push(TxnTrace::new(vec![TraceAccess::read(a), TraceAccess::dependent_write(b)]));
        }
        traces
    }

    #[test]
    fn hashed_layout_balances_occupancy() {
        let tuples: Vec<_> = (0..64).map(t).collect();
        let layout = planner().plan(&tuples, &[], LayoutStrategy::Hashed);
        assert_eq!(layout.len(), 64);
        let occ = layout.occupancy();
        assert_eq!(occ.len(), 8);
        for (_, count) in occ {
            assert_eq!(count, 8);
        }
    }

    #[test]
    fn random_layout_respects_capacity() {
        let tuples: Vec<_> = (0..128).map(t).collect(); // exactly full: 8 arrays * 16
        let layout = planner().plan(&tuples, &[], LayoutStrategy::Random { seed: 3 });
        assert_eq!(layout.len(), 128);
        for (_, count) in layout.occupancy() {
            assert!(count <= 16);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds switch capacity")]
    fn oversized_hot_set_is_rejected() {
        let tuples: Vec<_> = (0..129).map(t).collect();
        let _ = planner().plan(&tuples, &[], LayoutStrategy::Hashed);
    }

    #[test]
    fn declustered_layout_makes_dependent_traces_single_pass() {
        let traces = dependent_traces();
        let tuples: Vec<_> = (0..16).map(t).collect();
        let layout = planner().plan(&tuples, &traces, LayoutStrategy::Declustered);
        assert_eq!(layout.len(), 16);
        let frac = single_pass_fraction(&layout, &traces);
        assert!(frac > 0.95, "declustered layout should make (almost) all traces single-pass, got {frac}");
    }

    #[test]
    fn worst_layout_defeats_single_pass_execution() {
        let traces = dependent_traces();
        let tuples: Vec<_> = (0..16).map(t).collect();
        let worst = planner().plan(&tuples, &traces, LayoutStrategy::Worst);
        let declustered = planner().plan(&tuples, &traces, LayoutStrategy::Declustered);
        let worst_frac = single_pass_fraction(&worst, &traces);
        let good_frac = single_pass_fraction(&declustered, &traces);
        assert!(worst_frac < good_frac, "worst={worst_frac} declustered={good_frac}");
    }

    #[test]
    fn single_pass_check_detects_same_array_reuse() {
        let mut layout = DataLayout::new();
        layout.insert(t(1), StageArray { stage: 0, array: 0 });
        layout.insert(t(2), StageArray { stage: 0, array: 0 });
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::read(t(2))]);
        assert!(!trace_is_single_pass(&layout, &trace));
        layout.insert(t(2), StageArray { stage: 0, array: 1 });
        assert!(trace_is_single_pass(&layout, &trace));
    }

    #[test]
    fn single_pass_check_detects_stage_order_violation() {
        let mut layout = DataLayout::new();
        layout.insert(t(1), StageArray { stage: 3, array: 0 });
        layout.insert(t(2), StageArray { stage: 1, array: 1 });
        let trace = TxnTrace::new(vec![TraceAccess::read(t(1)), TraceAccess::dependent_write(t(2))]);
        assert!(!trace_is_single_pass(&layout, &trace));
    }

    #[test]
    fn cold_tuples_are_ignored_by_single_pass_check() {
        let mut layout = DataLayout::new();
        layout.insert(t(1), StageArray { stage: 0, array: 0 });
        let trace = TxnTrace::new(vec![
            TraceAccess::read(t(99)), // not offloaded
            TraceAccess::read(t(1)),
        ]);
        assert!(trace_is_single_pass(&layout, &trace));
    }

    #[test]
    fn untraced_hot_tuples_still_get_placed() {
        let traces = dependent_traces(); // uses tuples 0..16
        let tuples: Vec<_> = (0..32).map(t).collect(); // 16 extra untraced
        let layout = planner().plan(&tuples, &traces, LayoutStrategy::Declustered);
        assert_eq!(layout.len(), 32);
        for tuple in tuples {
            assert!(layout.contains(tuple));
        }
    }

    #[test]
    fn empty_traces_give_full_single_pass_fraction() {
        let layout = DataLayout::new();
        assert_eq!(single_pass_fraction(&layout, &[]), 1.0);
    }

    #[test]
    fn switch_assignment_covers_every_tuple_exactly_once() {
        let traces = dependent_traces(); // uses tuples 0..16
        let tuples: Vec<_> = (0..24).map(t).collect(); // 8 extra untraced
        let members = assign_tuples_to_switches(&tuples, &traces, 3, 8, 9);
        assert_eq!(members.len(), 3);
        let mut seen: Vec<TupleId> = members.iter().flatten().copied().collect();
        assert_eq!(seen.len(), 24, "every hot tuple assigned");
        seen.sort_by_key(|t| t.key);
        seen.dedup();
        assert_eq!(seen.len(), 24, "no tuple assigned twice");
        for m in &members {
            assert!(m.len() <= 8, "switch over capacity: {}", m.len());
        }
    }

    #[test]
    fn switch_assignment_keeps_traced_pairs_on_one_switch() {
        let traces = dependent_traces();
        let tuples: Vec<_> = (0..16).map(t).collect();
        let members = assign_tuples_to_switches(&tuples, &traces, 2, 8, 5);
        let switch_of = |tuple: TupleId| members.iter().position(|m| m.contains(&tuple)).unwrap();
        for i in 0..8u64 {
            assert_eq!(
                switch_of(t(2 * i)),
                switch_of(t(2 * i + 1)),
                "co-accessed pair ({}, {}) split across switches",
                2 * i,
                2 * i + 1
            );
        }
    }

    #[test]
    fn switch_assignment_is_deterministic() {
        let traces = dependent_traces();
        let tuples: Vec<_> = (0..24).map(t).collect();
        let a = assign_tuples_to_switches(&tuples, &traces, 3, 8, 11);
        let b = assign_tuples_to_switches(&tuples, &traces, 3, 8, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn single_switch_assignment_is_the_identity() {
        let tuples: Vec<_> = (0..5).map(t).collect();
        let members = assign_tuples_to_switches(&tuples, &[], 1, 16, 3);
        assert_eq!(members, vec![tuples]);
    }
}
