//! # p4db-layout
//!
//! The *declustered storage model* of P4DB (§4): deciding which register
//! array of which MAU stage each hot tuple is placed in, so that as many hot
//! transactions as possible can execute in a single pipeline pass.
//!
//! * [`graph`] — the weighted, directed transaction-access graph built from
//!   representative transaction traces.
//! * [`maxcut`] — the capacity-constrained max-cut heuristic that spreads
//!   co-accessed tuples across register arrays (substituting for the MQLib
//!   solver used in the paper; see `DESIGN.md`).
//! * [`layout`] — the planner that turns the partitioning into a concrete
//!   `(stage, array)` assignment, the alternative layouts used in the
//!   ablations (random / worst / hashed), and the single-pass-fraction
//!   evaluator.
//! * [`replay`] — offline hot-set detection by statement replay (§3.1).

pub mod graph;
pub mod layout;
pub mod maxcut;
pub mod replay;

pub use graph::{AccessGraph, TraceAccess, TxnTrace};
pub use layout::{
    assign_tuples_to_switches, single_pass_fraction, trace_is_single_pass, DataLayout, LayoutPlanner, LayoutStrategy,
    StageArray,
};
pub use maxcut::{assign_switches, cut_value, max_cut, Partitioning, SwitchAssignment};
pub use replay::HotSetDetector;
