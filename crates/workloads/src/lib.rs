//! # p4db-workloads
//!
//! The three OLTP benchmarks of the paper's evaluation (§7.2) — YCSB,
//! SmallBank and TPC-C (NewOrder + Payment) — behind one [`Workload`]
//! abstraction: loaders, hot-set definitions, representative traces for the
//! declustered layout planner, and runtime transaction generators with the
//! paper's skew and distributed-transaction knobs.

pub mod smallbank;
pub mod spec;
pub mod tpcc;
pub mod ycsb;

pub use smallbank::{SmallBank, SmallBankConfig};
pub use spec::{HotTuple, PartitionMap, Workload, WorkloadCtx};
pub use tpcc::{Tpcc, TpccConfig};
pub use ycsb::{Ycsb, YcsbConfig, YcsbMix};
