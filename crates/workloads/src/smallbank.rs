//! SmallBank (§7.2): a banking workload over savings and checking accounts
//! with a fixed 15% read ratio, simple integrity constraints (no overdrafts)
//! and read-dependent writes — the workload that motivates the declustered
//! data layout.
//!
//! Six transaction types are generated (the five original ones plus the
//! `SendPayment` transfer added by the paper). Skew follows the paper's
//! model: a small per-node hot set of customers (5 / 10 / 15) receives 90% of
//! all transactions.

use crate::spec::{HotTuple, Workload, WorkloadCtx};
use p4db_common::rand_util::FastRng;
use p4db_common::{NodeId, TableId, TupleId, Value};
use p4db_layout::{TraceAccess, TxnTrace};
use p4db_storage::NodeStorage;
use p4db_txn::{Txn, TxnRequest};

/// Savings balances, keyed by customer id.
pub const SAVINGS: TableId = TableId(1);
/// Checking balances, keyed by customer id.
pub const CHECKING: TableId = TableId(2);

/// Initial balance of every account.
pub const INITIAL_BALANCE: u64 = 10_000;

/// SmallBank configuration.
#[derive(Copy, Clone, Debug)]
pub struct SmallBankConfig {
    /// Customers stored per node (the paper uses 1M total over 8 nodes).
    pub customers_per_node: u64,
    /// Hot customers per node (the paper sweeps 5 / 10 / 15).
    pub hot_customers_per_node: u64,
    /// Probability that a transaction targets hot customers (90% in the
    /// paper).
    pub hot_txn_prob: f64,
    /// Maximum amount moved by a single operation. Small relative to the
    /// initial balance so overdraft aborts stay rare, as in the original
    /// benchmark.
    pub max_amount: u64,
}

impl Default for SmallBankConfig {
    fn default() -> Self {
        SmallBankConfig { customers_per_node: 125_000, hot_customers_per_node: 5, hot_txn_prob: 0.9, max_amount: 50 }
    }
}

/// The six transaction types.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SmallBankTxn {
    Balance,
    DepositChecking,
    TransactSavings,
    WriteCheck,
    Amalgamate,
    SendPayment,
}

const TXN_TYPES: [SmallBankTxn; 6] = [
    SmallBankTxn::Balance,
    SmallBankTxn::DepositChecking,
    SmallBankTxn::TransactSavings,
    SmallBankTxn::WriteCheck,
    SmallBankTxn::Amalgamate,
    SmallBankTxn::SendPayment,
];

/// The SmallBank workload generator.
#[derive(Clone, Debug)]
pub struct SmallBank {
    config: SmallBankConfig,
}

impl SmallBank {
    pub fn new(config: SmallBankConfig) -> Self {
        assert!(config.hot_customers_per_node <= config.customers_per_node);
        SmallBank { config }
    }

    pub fn config(&self) -> &SmallBankConfig {
        &self.config
    }

    /// Global customer id of `local` customer on `node`.
    fn customer(&self, node: NodeId, local: u64) -> u64 {
        node.0 as u64 * self.config.customers_per_node + local
    }

    pub fn home_of(&self, customer: u64) -> NodeId {
        NodeId((customer / self.config.customers_per_node) as u16)
    }

    fn savings(&self, customer: u64) -> TupleId {
        TupleId::new(SAVINGS, customer)
    }

    fn checking(&self, customer: u64) -> TupleId {
        TupleId::new(CHECKING, customer)
    }

    /// Picks a customer on `node`, hot or cold.
    fn pick_customer(&self, node: NodeId, rng: &mut FastRng, hot: bool) -> u64 {
        let local = if hot {
            rng.gen_range(self.config.hot_customers_per_node)
        } else {
            self.config.hot_customers_per_node
                + rng.gen_range(self.config.customers_per_node - self.config.hot_customers_per_node)
        };
        self.customer(node, local)
    }

    fn amount(&self, rng: &mut FastRng) -> u64 {
        1 + rng.gen_range(self.config.max_amount)
    }

    /// Builds one transaction over customers `c1` (and `c2` for two-customer
    /// transactions) as an unplaced [`Txn`]; homes are resolved against
    /// [`Workload::tuple_home`] when the request is finalised.
    fn build(&self, txn: SmallBankTxn, c1: u64, c2: u64, rng: &mut FastRng) -> Txn {
        match txn {
            SmallBankTxn::Balance => Txn::new().read(self.savings(c1)).read(self.checking(c1)),
            SmallBankTxn::DepositChecking => Txn::new().add(self.checking(c1), self.amount(rng) as i64),
            SmallBankTxn::TransactSavings => Txn::new().cond_sub(self.savings(c1), self.amount(rng)),
            SmallBankTxn::WriteCheck => Txn::new().read(self.savings(c1)).cond_sub(self.checking(c1), self.amount(rng)),
            SmallBankTxn::Amalgamate => {
                // Drain c1's savings and credit the drained amount to c2's
                // checking account: a read-dependent write (the operand of
                // the credit is the value read from the savings account).
                Txn::new().read(self.savings(c1)).write(self.savings(c1), 0).add(self.checking(c2), 0).operand_from(0)
            }
            SmallBankTxn::SendPayment => {
                let amount = self.amount(rng);
                Txn::new().cond_sub(self.checking(c1), amount).add(self.checking(c2), amount as i64)
            }
        }
    }

    /// Resolves a built transaction's homes for a cluster of `num_nodes`.
    fn place(&self, txn: Txn, num_nodes: u16, coordinator: NodeId) -> TxnRequest {
        txn.resolve(&|t: TupleId| self.tuple_home(t, num_nodes), coordinator)
            .expect("generated SmallBank transactions are well-formed")
    }

    fn pick_type(rng: &mut FastRng) -> SmallBankTxn {
        TXN_TYPES[rng.pick(TXN_TYPES.len())]
    }
}

impl Workload for SmallBank {
    fn name(&self) -> String {
        format!("SmallBank {}hot/node", self.config.hot_customers_per_node)
    }

    fn tables(&self) -> Vec<TableId> {
        vec![SAVINGS, CHECKING]
    }

    fn load_node(&self, storage: &NodeStorage, _num_nodes: u16) {
        let node = storage.node();
        let savings = storage.table(SAVINGS).expect("savings table declared");
        let checking = storage.table(CHECKING).expect("checking table declared");
        savings.bulk_load(
            (0..self.config.customers_per_node).map(|l| (self.customer(node, l), Value::scalar(INITIAL_BALANCE))),
        );
        checking.bulk_load(
            (0..self.config.customers_per_node).map(|l| (self.customer(node, l), Value::scalar(INITIAL_BALANCE))),
        );
    }

    fn hot_tuples(&self, num_nodes: u16) -> Vec<HotTuple> {
        let mut hot = Vec::new();
        for node in 0..num_nodes {
            for local in 0..self.config.hot_customers_per_node {
                let c = self.customer(NodeId(node), local);
                hot.push(HotTuple { tuple: self.savings(c), initial: INITIAL_BALANCE, byte_width: 8 });
                hot.push(HotTuple { tuple: self.checking(c), initial: INITIAL_BALANCE, byte_width: 8 });
            }
        }
        hot
    }

    fn layout_traces(&self, num_nodes: u16, rng: &mut FastRng) -> Vec<TxnTrace> {
        let mut traces = Vec::new();
        for sample in 0..512 {
            let coordinator = NodeId((sample % num_nodes as usize) as u16);
            let node2 = NodeId(((sample / num_nodes as usize) % num_nodes as usize) as u16);
            let c1 = self.pick_customer(coordinator, rng, true);
            let c2 = self.pick_customer(node2, rng, true);
            let txn = Self::pick_type(rng);
            let ops = self.place(self.build(txn, c1, c2, rng), num_nodes, coordinator).ops;
            let mut accesses = Vec::with_capacity(ops.len());
            for op in &ops {
                let access = match (op.kind.is_write(), op.operand_from.is_some()) {
                    (true, true) => TraceAccess::dependent_write(op.tuple),
                    (true, false) => TraceAccess::write(op.tuple),
                    (false, _) => TraceAccess::read(op.tuple),
                };
                accesses.push(access);
            }
            traces.push(TxnTrace::new(accesses));
        }
        traces
    }

    fn generate(&self, ctx: &WorkloadCtx, rng: &mut FastRng) -> TxnRequest {
        let hot = rng.gen_bool(self.config.hot_txn_prob);
        let distributed = rng.gen_bool(ctx.distributed_prob);
        let txn = Self::pick_type(rng);
        let node1 = ctx.coordinator;
        let node2 = if distributed { ctx.remote_node(rng) } else { ctx.coordinator };
        let c1 = self.pick_customer(node1, rng, hot);
        // Two-customer transactions pick the second customer on the (possibly
        // remote) second node; make sure both customers are distinct while
        // staying in the same temperature class.
        let mut c2 = self.pick_customer(node2, rng, hot);
        if c2 == c1 {
            let range = if hot { self.config.hot_customers_per_node } else { self.config.customers_per_node };
            let base = if hot { 0 } else { self.config.hot_customers_per_node };
            let local = (c2 % self.config.customers_per_node - base + 1) % (range - base).max(1) + base;
            c2 = self.customer(node2, local);
            if c2 == c1 {
                // Degenerate single-customer hot set: fall back to a
                // one-customer transaction type.
                return self.place(
                    self.build(SmallBankTxn::DepositChecking, c1, c1, rng),
                    ctx.num_nodes,
                    ctx.coordinator,
                );
            }
        }
        self.place(self.build(txn, c1, c2, rng), ctx.num_nodes, ctx.coordinator)
    }

    fn tuple_home(&self, tuple: TupleId, num_nodes: u16) -> Option<NodeId> {
        if tuple.table != SAVINGS && tuple.table != CHECKING {
            return None;
        }
        let home = self.home_of(tuple.key);
        (home.0 < num_nodes).then_some(home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_layout::{single_pass_fraction, LayoutPlanner, LayoutStrategy};
    use p4db_txn::OpKind;

    fn small() -> SmallBank {
        SmallBank::new(SmallBankConfig { customers_per_node: 1_000, ..SmallBankConfig::default() })
    }

    #[test]
    fn loader_creates_both_accounts_per_customer() {
        let w = small();
        let storage = NodeStorage::new(NodeId(0), w.tables());
        w.load_node(&storage, 2);
        assert_eq!(storage.total_rows(), 2_000);
        assert_eq!(storage.table(SAVINGS).unwrap().read(0).unwrap().switch_word(), INITIAL_BALANCE);
        assert_eq!(storage.table(CHECKING).unwrap().read(0).unwrap().switch_word(), INITIAL_BALANCE);
    }

    #[test]
    fn hot_set_has_two_tuples_per_hot_customer() {
        let w = small();
        assert_eq!(w.hot_tuples(8).len(), 8 * 5 * 2);
    }

    #[test]
    fn amalgamate_is_a_read_dependent_write() {
        let w = small();
        let mut rng = FastRng::new(1);
        let ops = w.place(w.build(SmallBankTxn::Amalgamate, 3, 7, &mut rng), 2, NodeId(0)).ops;
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[2].operand_from, Some(0));
        assert!(ops[2].kind.is_write());
    }

    #[test]
    fn send_payment_moves_a_bounded_amount() {
        let w = small();
        let mut rng = FastRng::new(2);
        let ops = w.place(w.build(SmallBankTxn::SendPayment, 1, 2, &mut rng), 2, NodeId(0)).ops;
        match (ops[0].kind, ops[1].kind) {
            (OpKind::CondSub(a), OpKind::Add(b)) => {
                assert_eq!(a as i64, b);
                assert!(a >= 1 && a <= w.config().max_amount);
            }
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn hot_transactions_hit_the_hot_customers() {
        let w = SmallBank::new(SmallBankConfig {
            customers_per_node: 1_000,
            hot_txn_prob: 1.0,
            ..SmallBankConfig::default()
        });
        let ctx = WorkloadCtx::new(4, NodeId(1), 0.0);
        let mut rng = FastRng::new(3);
        for _ in 0..200 {
            let req = w.generate(&ctx, &mut rng);
            for op in &req.ops {
                let local = op.tuple.key % w.config().customers_per_node;
                assert!(local < w.config().hot_customers_per_node, "local customer {local} is not hot");
            }
        }
    }

    #[test]
    fn tuple_home_resolves_both_account_tables() {
        let w = small();
        assert_eq!(w.tuple_home(TupleId::new(SAVINGS, 0), 4), Some(NodeId(0)));
        assert_eq!(w.tuple_home(TupleId::new(CHECKING, 1_500), 4), Some(NodeId(1)));
        assert_eq!(w.tuple_home(TupleId::new(SAVINGS, 999_999), 4), None, "beyond the loaded partitions");
        assert_eq!(w.tuple_home(TupleId::new(TableId(9), 0), 4), None, "foreign table");
    }

    #[test]
    fn two_customer_transactions_never_use_the_same_account_twice() {
        let w = small();
        let ctx = WorkloadCtx::new(2, NodeId(0), 1.0);
        let mut rng = FastRng::new(5);
        for _ in 0..500 {
            let req = w.generate(&ctx, &mut rng);
            if req.ops.len() == 2 && req.ops[0].tuple.table == CHECKING && req.ops[1].tuple.table == CHECKING {
                assert_ne!(req.ops[0].tuple.key, req.ops[1].tuple.key, "SendPayment with identical accounts");
            }
        }
    }

    #[test]
    fn declustered_layout_keeps_smallbank_hot_txns_single_pass() {
        let w = small();
        let mut rng = FastRng::new(11);
        let traces = w.layout_traces(4, &mut rng);
        let hot: Vec<_> = w.hot_tuples(4).iter().map(|h| h.tuple).collect();
        let planner = LayoutPlanner::new(10, 4, 2048);
        let declustered = planner.plan(&hot, &traces, LayoutStrategy::Declustered);
        let worst = planner.plan(&hot, &traces, LayoutStrategy::Worst);
        let good = single_pass_fraction(&declustered, &traces);
        let bad = single_pass_fraction(&worst, &traces);
        assert!(good > bad, "declustered {good} must beat worst {bad}");
        assert!(good > 0.6, "declustered single-pass fraction too low: {good}");
    }
}
