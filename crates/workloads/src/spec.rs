//! The workload abstraction shared by YCSB, SmallBank and TPC-C.
//!
//! A workload knows how to (1) populate every node's partition, (2) name the
//! hot tuples that should be offloaded to the switch together with their
//! initial switch-column values, (3) provide representative transaction
//! traces for the declustered layout planner (§3.1's offline replay),
//! (4) generate transaction requests for the worker threads at runtime, and
//! (5) resolve any tuple's home node ([`Workload::tuple_home`]), which the
//! [`PartitionMap`] exposes to ad-hoc clients so they never hand-place
//! operations.

use p4db_common::rand_util::FastRng;
use p4db_common::{NodeId, TableId, TupleId};
use p4db_layout::TxnTrace;
use p4db_storage::NodeStorage;
use p4db_txn::{Placement, TxnRequest};
use std::sync::Arc;

/// A tuple to offload to the switch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HotTuple {
    pub tuple: TupleId,
    /// Initial value of the switch column at offload time.
    pub initial: u64,
    /// Row width in bytes — wider rows consume more register cells (Fig 17).
    pub byte_width: usize,
}

/// Per-worker generation context.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadCtx {
    /// Number of database nodes in the cluster.
    pub num_nodes: u16,
    /// The node the generating worker runs on (the transaction coordinator).
    pub coordinator: NodeId,
    /// Probability that a generated transaction is distributed (accesses at
    /// least one remote partition).
    pub distributed_prob: f64,
}

impl WorkloadCtx {
    pub fn new(num_nodes: u16, coordinator: NodeId, distributed_prob: f64) -> Self {
        assert!(num_nodes > 0 && coordinator.0 < num_nodes, "coordinator must be a cluster node");
        assert!((0.0..=1.0).contains(&distributed_prob));
        WorkloadCtx { num_nodes, coordinator, distributed_prob }
    }

    /// A uniformly random node other than the coordinator (or the coordinator
    /// itself in a single-node cluster).
    pub fn remote_node(&self, rng: &mut FastRng) -> NodeId {
        if self.num_nodes == 1 {
            return self.coordinator;
        }
        loop {
            let n = NodeId(rng.gen_range(self.num_nodes as u64) as u16);
            if n != self.coordinator {
                return n;
            }
        }
    }
}

/// A benchmark workload.
pub trait Workload: Send + Sync {
    /// Human-readable name ("YCSB-A", "SmallBank 8x5", ...).
    fn name(&self) -> String;

    /// The table ids every node must declare.
    fn tables(&self) -> Vec<TableId>;

    /// Populates one node's partition.
    fn load_node(&self, storage: &NodeStorage, num_nodes: u16);

    /// The hot set to offload, in descending access-frequency order.
    fn hot_tuples(&self, num_nodes: u16) -> Vec<HotTuple>;

    /// Representative hot-transaction traces for the layout planner.
    fn layout_traces(&self, num_nodes: u16, rng: &mut FastRng) -> Vec<TxnTrace>;

    /// Generates the next transaction request for a worker.
    fn generate(&self, ctx: &WorkloadCtx, rng: &mut FastRng) -> TxnRequest;

    /// The node owning `tuple` under this workload's static partitioning
    /// scheme, or `None` when the tuple has no fixed owner (replicated
    /// read-only data, rows created at runtime): such operations execute on
    /// whichever node coordinates the transaction.
    fn tuple_home(&self, tuple: TupleId, num_nodes: u16) -> Option<NodeId>;
}

/// The workload's partitioning scheme, bound to a concrete cluster size — the
/// [`Placement`] that ad-hoc clients resolve [`p4db_txn::Txn`] builders
/// against instead of hand-constructing `TxnOp`s with explicit homes.
#[derive(Clone)]
pub struct PartitionMap {
    workload: Arc<dyn Workload>,
    num_nodes: u16,
}

impl PartitionMap {
    pub fn new(workload: Arc<dyn Workload>, num_nodes: u16) -> Self {
        assert!(num_nodes > 0, "a partition map needs at least one node");
        PartitionMap { workload, num_nodes }
    }

    /// Number of nodes the map resolves against.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// The node owning `tuple`, or `None` for coordinator-local data.
    pub fn home(&self, tuple: TupleId) -> Option<NodeId> {
        self.workload.tuple_home(tuple, self.num_nodes)
    }
}

impl Placement for PartitionMap {
    fn home_of(&self, tuple: TupleId) -> Option<NodeId> {
        self.home(tuple)
    }
}

impl std::fmt::Debug for PartitionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionMap")
            .field("workload", &self.workload.name())
            .field("num_nodes", &self.num_nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_node_never_returns_coordinator_in_multi_node_clusters() {
        let ctx = WorkloadCtx::new(4, NodeId(2), 0.5);
        let mut rng = FastRng::new(1);
        for _ in 0..200 {
            assert_ne!(ctx.remote_node(&mut rng), NodeId(2));
        }
    }

    #[test]
    fn remote_node_degenerates_gracefully_for_single_node() {
        let ctx = WorkloadCtx::new(1, NodeId(0), 1.0);
        let mut rng = FastRng::new(1);
        assert_eq!(ctx.remote_node(&mut rng), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "coordinator must be a cluster node")]
    fn invalid_coordinator_is_rejected() {
        let _ = WorkloadCtx::new(2, NodeId(2), 0.0);
    }
}
