//! YCSB (§7.2): a single table, transactions of 8 read/write operations,
//! workloads A (50/50), B (95/5) and C (read-only), and the paper's explicit
//! hot-set skew model (50 hot keys per node receiving 75% of all accesses).
//!
//! Scale note: the paper populates 1 billion 16-byte rows; this reproduction
//! defaults to a smaller cold key space per node (configurable). The cold key
//! space only has to be large enough that cold-cold conflicts are negligible,
//! which already holds at the default size — the hot set, which drives every
//! result, is identical to the paper's.

use crate::spec::{HotTuple, Workload, WorkloadCtx};
use p4db_common::rand_util::FastRng;
use p4db_common::{NodeId, TableId, TupleId, Value};
use p4db_layout::{TraceAccess, TxnTrace};
use p4db_storage::NodeStorage;
use p4db_txn::{Txn, TxnRequest};

/// The YCSB table.
pub const YCSB_TABLE: TableId = TableId(0);

/// YCSB workload mix (read ratio of the 8 operations).
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum YcsbMix {
    /// Update heavy: 50% reads / 50% writes.
    A,
    /// Read heavy: 95% reads.
    B,
    /// Read only.
    C,
}

impl YcsbMix {
    pub fn read_ratio(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.95,
            YcsbMix::C => 1.0,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "A",
            YcsbMix::B => "B",
            YcsbMix::C => "C",
        }
    }
}

/// YCSB configuration.
#[derive(Copy, Clone, Debug)]
pub struct YcsbConfig {
    pub mix: YcsbMix,
    /// Cold + hot keys stored per node.
    pub keys_per_node: u64,
    /// Hot keys per node (the paper uses 50).
    pub hot_keys_per_node: u64,
    /// Probability that a transaction operates on the hot set (the paper's
    /// 75% of accesses; Fig 15a/b sweeps this).
    pub hot_txn_prob: f64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Row width in bytes (8 = the paper's 8-byte values; Fig 17 uses wider
    /// rows to shrink the switch's row capacity).
    pub value_bytes: usize,
}

impl YcsbConfig {
    pub fn new(mix: YcsbMix) -> Self {
        YcsbConfig {
            mix,
            keys_per_node: 100_000,
            hot_keys_per_node: 50,
            hot_txn_prob: 0.75,
            ops_per_txn: 8,
            value_bytes: 8,
        }
    }
}

/// The YCSB workload generator.
#[derive(Clone, Debug)]
pub struct Ycsb {
    config: YcsbConfig,
}

impl Ycsb {
    pub fn new(config: YcsbConfig) -> Self {
        assert!(config.hot_keys_per_node <= config.keys_per_node);
        assert!(config.ops_per_txn >= 1);
        Ycsb { config }
    }

    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Global key of `local` key on `node`.
    fn key(&self, node: NodeId, local: u64) -> u64 {
        node.0 as u64 * self.config.keys_per_node + local
    }

    /// The node owning a global key.
    pub fn home_of(&self, key: u64) -> NodeId {
        NodeId((key / self.config.keys_per_node) as u16)
    }

    fn tuple(&self, key: u64) -> TupleId {
        TupleId::new(YCSB_TABLE, key)
    }

    /// Picks the node targeted by operation `op_idx`.
    fn pick_node(&self, ctx: &WorkloadCtx, rng: &mut FastRng, distributed: bool, op_idx: usize) -> NodeId {
        if distributed && ctx.num_nodes > 1 {
            // Spread the 8 operations over the cluster: operation i leans on
            // node (coordinator + i); this mirrors the round-robin partitioned
            // table of the paper and keeps hot transactions single-pass under
            // the declustered layout.
            NodeId((ctx.coordinator.0 as usize + op_idx + 1) as u16 % ctx.num_nodes)
        } else {
            let _ = rng;
            ctx.coordinator
        }
    }

    /// Picks a hot local key for operation `op_idx`: one key out of the key
    /// group `op_idx % groups`, so that the operations of one transaction
    /// always touch distinct groups (and therefore distinct register arrays
    /// under the declustered layout).
    fn pick_hot_local(&self, rng: &mut FastRng, op_idx: usize) -> u64 {
        let groups = self.config.ops_per_txn as u64;
        let group = op_idx as u64 % groups;
        let per_group = (self.config.hot_keys_per_node / groups).max(1);
        let offset = rng.gen_range(per_group);
        (group * per_group + offset).min(self.config.hot_keys_per_node - 1)
    }

    fn pick_cold_local(&self, rng: &mut FastRng) -> u64 {
        let cold_range = self.config.keys_per_node - self.config.hot_keys_per_node;
        self.config.hot_keys_per_node + rng.gen_range(cold_range.max(1))
    }
}

impl Workload for Ycsb {
    fn name(&self) -> String {
        format!("YCSB-{}", self.config.mix.label())
    }

    fn tables(&self) -> Vec<TableId> {
        vec![YCSB_TABLE]
    }

    fn load_node(&self, storage: &NodeStorage, _num_nodes: u16) {
        let table = storage.table(YCSB_TABLE).expect("YCSB table declared");
        let node = storage.node();
        let width_fields = (self.config.value_bytes / 8).max(1);
        table.bulk_load(
            (0..self.config.keys_per_node).map(|local| (self.key(node, local), Value::zeroed(width_fields))),
        );
    }

    fn hot_tuples(&self, num_nodes: u16) -> Vec<HotTuple> {
        let mut hot = Vec::new();
        for node in 0..num_nodes {
            for local in 0..self.config.hot_keys_per_node {
                hot.push(HotTuple {
                    tuple: self.tuple(self.key(NodeId(node), local)),
                    initial: 0,
                    byte_width: self.config.value_bytes,
                });
            }
        }
        hot
    }

    fn layout_traces(&self, num_nodes: u16, rng: &mut FastRng) -> Vec<TxnTrace> {
        // Representative hot transactions (the only ones the layout matters
        // for), both local and distributed.
        let mut traces = Vec::new();
        for sample in 0..512 {
            let coordinator = NodeId((sample % num_nodes as usize) as u16);
            let ctx = WorkloadCtx::new(num_nodes, coordinator, if sample % 2 == 0 { 1.0 } else { 0.0 });
            let distributed = sample % 2 == 0;
            let mut accesses = Vec::with_capacity(self.config.ops_per_txn);
            for op_idx in 0..self.config.ops_per_txn {
                let node = self.pick_node(&ctx, rng, distributed, op_idx);
                let local = self.pick_hot_local(rng, op_idx);
                let tuple = self.tuple(self.key(node, local));
                let write = rng.gen_f64() >= self.config.mix.read_ratio();
                accesses.push(if write { TraceAccess::write(tuple) } else { TraceAccess::read(tuple) });
            }
            traces.push(TxnTrace::new(accesses));
        }
        traces
    }

    fn generate(&self, ctx: &WorkloadCtx, rng: &mut FastRng) -> TxnRequest {
        let hot = rng.gen_bool(self.config.hot_txn_prob);
        let distributed = rng.gen_bool(ctx.distributed_prob);
        let mut txn = Txn::new();
        for op_idx in 0..self.config.ops_per_txn {
            let node = self.pick_node(ctx, rng, distributed, op_idx);
            let local = if hot { self.pick_hot_local(rng, op_idx) } else { self.pick_cold_local(rng) };
            let tuple = self.tuple(self.key(node, local));
            txn = if rng.gen_f64() < self.config.mix.read_ratio() {
                txn.read(tuple)
            } else {
                txn.write(tuple, rng.next_u64())
            };
        }
        txn.resolve(&|t: TupleId| self.tuple_home(t, ctx.num_nodes), ctx.coordinator)
            .expect("generated YCSB transactions are well-formed")
    }

    fn tuple_home(&self, tuple: TupleId, num_nodes: u16) -> Option<NodeId> {
        if tuple.table != YCSB_TABLE {
            return None;
        }
        let home = self.home_of(tuple.key);
        (home.0 < num_nodes).then_some(home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_layout::{single_pass_fraction, LayoutPlanner, LayoutStrategy};
    use p4db_txn::OpKind;

    fn ycsb() -> Ycsb {
        let mut config = YcsbConfig::new(YcsbMix::A);
        config.keys_per_node = 1_000;
        Ycsb::new(config)
    }

    #[test]
    fn loader_populates_each_node_partition() {
        let w = ycsb();
        let storage = NodeStorage::new(NodeId(1), w.tables());
        w.load_node(&storage, 2);
        assert_eq!(storage.total_rows(), 1_000);
        // Keys of node 1 start at keys_per_node.
        assert!(storage.table(YCSB_TABLE).unwrap().get(1_000).is_some());
        assert!(storage.table(YCSB_TABLE).unwrap().get(0).is_none());
    }

    #[test]
    fn hot_set_size_matches_paper_config() {
        let w = ycsb();
        let hot = w.hot_tuples(8);
        assert_eq!(hot.len(), 8 * 50);
        for h in &hot {
            assert_eq!(h.byte_width, 8);
        }
    }

    #[test]
    fn hot_txns_touch_only_hot_keys_and_respect_distribution_flag() {
        let w = Ycsb::new(YcsbConfig { hot_txn_prob: 1.0, ..YcsbConfig::new(YcsbMix::A) });
        let mut rng = FastRng::new(3);
        let ctx = WorkloadCtx::new(4, NodeId(0), 0.0);
        for _ in 0..100 {
            let req = w.generate(&ctx, &mut rng);
            assert_eq!(req.ops.len(), 8);
            assert!(!req.is_distributed(NodeId(0)));
            for op in &req.ops {
                let local = op.tuple.key % w.config().keys_per_node;
                assert!(local < w.config().hot_keys_per_node);
                assert_eq!(op.home, w.home_of(op.tuple.key));
            }
        }
    }

    #[test]
    fn distributed_fraction_tracks_probability() {
        let w = ycsb();
        let mut rng = FastRng::new(9);
        let ctx = WorkloadCtx::new(4, NodeId(1), 0.5);
        let distributed = (0..2_000).filter(|_| w.generate(&ctx, &mut rng).is_distributed(NodeId(1))).count();
        let frac = distributed as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "distributed fraction {frac}");
    }

    #[test]
    fn mix_c_is_read_only() {
        let w = Ycsb::new(YcsbConfig::new(YcsbMix::C));
        let mut rng = FastRng::new(5);
        let ctx = WorkloadCtx::new(2, NodeId(0), 0.2);
        for _ in 0..50 {
            let req = w.generate(&ctx, &mut rng);
            assert!(req.ops.iter().all(|op| op.kind == OpKind::Read));
        }
    }

    #[test]
    fn tuple_home_matches_the_key_partitioning() {
        let w = ycsb();
        assert_eq!(w.tuple_home(TupleId::new(YCSB_TABLE, 0), 4), Some(NodeId(0)));
        assert_eq!(w.tuple_home(TupleId::new(YCSB_TABLE, 2_500), 4), Some(NodeId(2)));
        // Keys beyond the cluster's partitions and foreign tables have no home.
        assert_eq!(w.tuple_home(TupleId::new(YCSB_TABLE, 999_999), 4), None);
        assert_eq!(w.tuple_home(TupleId::new(TableId(9), 0), 4), None);
    }

    #[test]
    fn declustered_layout_makes_hot_ycsb_txns_single_pass() {
        let w = ycsb();
        let mut rng = FastRng::new(7);
        let traces = w.layout_traces(4, &mut rng);
        let hot: Vec<_> = w.hot_tuples(4).iter().map(|h| h.tuple).collect();
        let planner = LayoutPlanner::new(10, 4, 2048);
        let layout = planner.plan(&hot, &traces, LayoutStrategy::Declustered);
        let frac = single_pass_fraction(&layout, &traces);
        assert!(frac > 0.9, "single-pass fraction {frac}");
    }
}
