//! TPC-C (§7.2, §7.5): the NewOrder + Payment mix used by the paper.
//!
//! TPC-C transactions mix contended tuples (the district's `next_o_id`, the
//! warehouse / district year-to-date totals, the stock rows of the most
//! ordered items) with per-transaction cold work (customer rows, order /
//! order-line / history inserts), so in P4DB they execute as *warm*
//! transactions: the cold part under 2PL on the nodes, the hot part on the
//! switch.
//!
//! Simplifications vs. the full specification (documented in DESIGN.md):
//! only the two transaction types the paper evaluates are generated, rows
//! carry a single 64-bit payload column (the offloaded column), order ids for
//! inserts are drawn from a random key space instead of `d_next_o_id` (the
//! insert key value does not affect contention), and the item table is
//! treated as replicated read-only data.

use crate::spec::{HotTuple, Workload, WorkloadCtx};
use p4db_common::rand_util::FastRng;
use p4db_common::{NodeId, TableId, TupleId, Value};
use p4db_layout::{TraceAccess, TxnTrace};
use p4db_storage::NodeStorage;
use p4db_txn::{Txn, TxnRequest};

pub const WAREHOUSE: TableId = TableId(10); // switch column: w_ytd
pub const DISTRICT: TableId = TableId(11); // switch column: d_next_o_id
pub const DISTRICT_YTD: TableId = TableId(12); // switch column: d_ytd
pub const CUSTOMER: TableId = TableId(13);
pub const HISTORY: TableId = TableId(14);
pub const NEW_ORDER: TableId = TableId(15);
pub const ORDER: TableId = TableId(16);
pub const ORDER_LINE: TableId = TableId(17);
pub const ITEM: TableId = TableId(18);
pub const STOCK: TableId = TableId(19);

pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
pub const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
pub const ITEMS: u64 = 100_000;
pub const INITIAL_NEXT_O_ID: u64 = 3_001;
pub const INITIAL_STOCK: u64 = 10_000;

/// TPC-C configuration.
#[derive(Copy, Clone, Debug)]
pub struct TpccConfig {
    /// Total number of warehouses in the cluster (the paper uses 8/16/32).
    pub warehouses: u64,
    /// Number of items whose stock is offloaded to the switch ("most ordered
    /// items").
    pub hot_items: u64,
    /// Probability that an ordered item is one of the hot items.
    pub hot_item_prob: f64,
    /// Order lines per NewOrder transaction.
    pub order_lines: usize,
    /// Items loaded per node (scaled-down item catalogue; item reads are
    /// local and read-only so the size only affects load time).
    pub items_loaded: u64,
}

impl TpccConfig {
    pub fn new(warehouses: u64) -> Self {
        TpccConfig { warehouses, hot_items: 100, hot_item_prob: 0.5, order_lines: 8, items_loaded: 10_000 }
    }
}

/// Key encoding helpers (composite TPC-C keys packed into 64 bits).
pub mod keys {
    use super::*;

    pub fn warehouse(w: u64) -> u64 {
        w
    }

    pub fn district(w: u64, d: u64) -> u64 {
        w * DISTRICTS_PER_WAREHOUSE + d
    }

    pub fn customer(w: u64, d: u64, c: u64) -> u64 {
        (district(w, d)) * CUSTOMERS_PER_DISTRICT + c
    }

    pub fn stock(w: u64, i: u64) -> u64 {
        w * ITEMS + i
    }
}

/// The TPC-C workload generator (NewOrder + Payment mix).
#[derive(Clone, Debug)]
pub struct Tpcc {
    config: TpccConfig,
}

impl Tpcc {
    pub fn new(config: TpccConfig) -> Self {
        assert!(config.warehouses >= 1);
        Tpcc { config }
    }

    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Warehouses are range-partitioned over the nodes.
    pub fn warehouses_per_node(&self, num_nodes: u16) -> u64 {
        self.config.warehouses.div_ceil(num_nodes as u64)
    }

    pub fn home_of_warehouse(&self, w: u64, num_nodes: u16) -> NodeId {
        NodeId((w / self.warehouses_per_node(num_nodes)).min(num_nodes as u64 - 1) as u16)
    }

    fn local_warehouse(&self, node: NodeId, num_nodes: u16, rng: &mut FastRng) -> u64 {
        let per_node = self.warehouses_per_node(num_nodes);
        let first = node.0 as u64 * per_node;
        let count = per_node.min(self.config.warehouses.saturating_sub(first)).max(1);
        first + rng.gen_range(count)
    }

    fn pick_item(&self, rng: &mut FastRng) -> u64 {
        if rng.gen_bool(self.config.hot_item_prob) {
            rng.gen_range(self.config.hot_items.max(1))
        } else {
            rng.gen_range(ITEMS)
        }
    }

    fn is_hot_item(&self, item: u64) -> bool {
        item < self.config.hot_items
    }

    /// Resolves a built transaction's homes for the generating context.
    /// Replicated item reads and the synthetic-key inserts have no fixed home
    /// ([`Workload::tuple_home`] returns `None`) and land on the coordinator.
    fn place(&self, txn: Txn, ctx: &WorkloadCtx) -> TxnRequest {
        txn.resolve(&|t: TupleId| self.tuple_home(t, ctx.num_nodes), ctx.coordinator)
            .expect("generated TPC-C transactions are well-formed")
    }

    fn new_order(&self, ctx: &WorkloadCtx, rng: &mut FastRng) -> TxnRequest {
        let num_nodes = ctx.num_nodes;
        let w = self.local_warehouse(ctx.coordinator, num_nodes, rng);
        let d = rng.gen_range(DISTRICTS_PER_WAREHOUSE);
        let c = rng.gen_range(CUSTOMERS_PER_DISTRICT);

        let mut txn = Txn::new()
            // d_next_o_id++ on the home district (contended → offloaded).
            .fetch_add(TupleId::new(DISTRICT, keys::district(w, d)), 1)
            // Customer read (cold, local).
            .read(TupleId::new(CUSTOMER, keys::customer(w, d, c)))
            // Order + NewOrder inserts (cold, local; synthetic unique keys).
            .insert(TupleId::new(ORDER, rng.next_u64()), c)
            .insert(TupleId::new(NEW_ORDER, rng.next_u64()), 0);
        for _ in 0..self.config.order_lines {
            let item = self.pick_item(rng);
            // "Varying distributed transactions": the probability that an
            // ordered item comes from a remote warehouse (§7.5).
            let supply_w = if rng.gen_bool(ctx.distributed_prob) && num_nodes > 1 {
                self.local_warehouse(ctx.remote_node(rng), num_nodes, rng)
            } else {
                w
            };
            let qty = 1 + rng.gen_range(10) as i64;
            txn = txn
                // Item lookup: replicated read-only catalogue, read locally.
                .read(TupleId::new(ITEM, item % self.config.items_loaded))
                // Stock decrement at the supplying warehouse (hot items are
                // offloaded, the rest is a cold — possibly remote — update).
                .add(TupleId::new(STOCK, keys::stock(supply_w, item)), -qty)
                // Order line insert (cold, local).
                .insert(TupleId::new(ORDER_LINE, rng.next_u64()), item);
        }
        self.place(txn, ctx)
    }

    fn payment(&self, ctx: &WorkloadCtx, rng: &mut FastRng) -> TxnRequest {
        let num_nodes = ctx.num_nodes;
        let w = self.local_warehouse(ctx.coordinator, num_nodes, rng);
        let d = rng.gen_range(DISTRICTS_PER_WAREHOUSE);
        let amount = 1 + rng.gen_range(5_000) as i64;

        // The paying customer may belong to a remote warehouse (§7.5).
        let (cw, cd, cc) = if rng.gen_bool(ctx.distributed_prob) && num_nodes > 1 {
            let remote_w = self.local_warehouse(ctx.remote_node(rng), num_nodes, rng);
            (remote_w, rng.gen_range(DISTRICTS_PER_WAREHOUSE), rng.gen_range(CUSTOMERS_PER_DISTRICT))
        } else {
            (w, d, rng.gen_range(CUSTOMERS_PER_DISTRICT))
        };

        let txn = Txn::new()
            // Contended year-to-date counters (offloaded).
            .add(TupleId::new(WAREHOUSE, keys::warehouse(w)), amount)
            .add(TupleId::new(DISTRICT_YTD, keys::district(w, d)), amount)
            // Customer balance update (cold, possibly remote).
            .add(TupleId::new(CUSTOMER, keys::customer(cw, cd, cc)), -amount)
            // History insert (cold, local).
            .insert(TupleId::new(HISTORY, rng.next_u64()), amount as u64);
        self.place(txn, ctx)
    }
}

impl Workload for Tpcc {
    fn name(&self) -> String {
        format!("TPC-C {}WH", self.config.warehouses)
    }

    fn tables(&self) -> Vec<TableId> {
        vec![WAREHOUSE, DISTRICT, DISTRICT_YTD, CUSTOMER, HISTORY, NEW_ORDER, ORDER, ORDER_LINE, ITEM, STOCK]
    }

    fn load_node(&self, storage: &NodeStorage, num_nodes: u16) {
        let node = storage.node();
        let per_node = self.warehouses_per_node(num_nodes);
        let first = node.0 as u64 * per_node;
        let last = (first + per_node).min(self.config.warehouses);

        // Replicated read-only item catalogue.
        storage
            .table(ITEM)
            .expect("item table declared")
            .bulk_load((0..self.config.items_loaded).map(|i| (i, Value::scalar(100 + i))));

        for w in first..last {
            storage.table(WAREHOUSE).expect("warehouse table declared").insert(keys::warehouse(w), Value::scalar(0));
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                storage
                    .table(DISTRICT)
                    .expect("district table declared")
                    .insert(keys::district(w, d), Value::scalar(INITIAL_NEXT_O_ID));
                storage
                    .table(DISTRICT_YTD)
                    .expect("district-ytd table declared")
                    .insert(keys::district(w, d), Value::scalar(0));
                let customers = (0..CUSTOMERS_PER_DISTRICT).map(|c| (keys::customer(w, d, c), Value::scalar(1_000)));
                storage.table(CUSTOMER).expect("customer table declared").bulk_load(customers);
            }
            storage
                .table(STOCK)
                .expect("stock table declared")
                .bulk_load((0..ITEMS).map(|i| (keys::stock(w, i), Value::scalar(INITIAL_STOCK))));
        }
    }

    fn hot_tuples(&self, _num_nodes: u16) -> Vec<HotTuple> {
        let mut hot = Vec::new();
        for w in 0..self.config.warehouses {
            hot.push(HotTuple { tuple: TupleId::new(WAREHOUSE, keys::warehouse(w)), initial: 0, byte_width: 8 });
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                hot.push(HotTuple {
                    tuple: TupleId::new(DISTRICT, keys::district(w, d)),
                    initial: INITIAL_NEXT_O_ID,
                    byte_width: 8,
                });
                hot.push(HotTuple {
                    tuple: TupleId::new(DISTRICT_YTD, keys::district(w, d)),
                    initial: 0,
                    byte_width: 8,
                });
            }
            for i in 0..self.config.hot_items {
                hot.push(HotTuple {
                    tuple: TupleId::new(STOCK, keys::stock(w, i)),
                    initial: INITIAL_STOCK,
                    byte_width: 8,
                });
            }
        }
        hot
    }

    fn layout_traces(&self, num_nodes: u16, rng: &mut FastRng) -> Vec<TxnTrace> {
        let mut traces = Vec::new();
        for sample in 0..512 {
            let coordinator = NodeId((sample % num_nodes as usize) as u16);
            let ctx = WorkloadCtx::new(num_nodes, coordinator, 0.2);
            let req = if sample % 2 == 0 { self.new_order(&ctx, rng) } else { self.payment(&ctx, rng) };
            // Only the hot accesses matter for the switch layout.
            let accesses: Vec<TraceAccess> = req
                .ops
                .iter()
                .filter(|op| {
                    matches!(op.tuple.table, WAREHOUSE | DISTRICT | DISTRICT_YTD)
                        || (op.tuple.table == STOCK && self.is_hot_item(op.tuple.key % ITEMS))
                })
                .map(|op| if op.kind.is_write() { TraceAccess::write(op.tuple) } else { TraceAccess::read(op.tuple) })
                .collect();
            if accesses.len() >= 2 {
                traces.push(TxnTrace::new(accesses));
            }
        }
        traces
    }

    fn generate(&self, ctx: &WorkloadCtx, rng: &mut FastRng) -> TxnRequest {
        // The paper uses the NewOrder + Payment mix (~50/50 of the standard
        // transaction mix once the other types are dropped).
        if rng.gen_bool(0.5) {
            self.new_order(ctx, rng)
        } else {
            self.payment(ctx, rng)
        }
    }

    fn tuple_home(&self, tuple: TupleId, num_nodes: u16) -> Option<NodeId> {
        let warehouse = match tuple.table {
            WAREHOUSE => tuple.key,
            DISTRICT | DISTRICT_YTD => tuple.key / DISTRICTS_PER_WAREHOUSE,
            CUSTOMER => tuple.key / (DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT),
            STOCK => tuple.key / ITEMS,
            // The item catalogue is replicated read-only data; order /
            // order-line / new-order / history rows use synthetic keys
            // created by the inserting transaction. Both execute on the
            // coordinator.
            _ => return None,
        };
        (warehouse < self.config.warehouses).then(|| self.home_of_warehouse(warehouse, num_nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_txn::OpKind;

    fn tpcc() -> Tpcc {
        Tpcc::new(TpccConfig { items_loaded: 1_000, ..TpccConfig::new(8) })
    }

    #[test]
    fn warehouses_are_partitioned_over_nodes() {
        let w = tpcc();
        assert_eq!(w.warehouses_per_node(4), 2);
        assert_eq!(w.home_of_warehouse(0, 4), NodeId(0));
        assert_eq!(w.home_of_warehouse(3, 4), NodeId(1));
        assert_eq!(w.home_of_warehouse(7, 4), NodeId(3));
    }

    #[test]
    fn loader_populates_only_local_warehouses() {
        let w = tpcc();
        let storage = NodeStorage::new(NodeId(0), w.tables());
        w.load_node(&storage, 4);
        // 2 warehouses: rows exist for warehouse 0/1 but not 2.
        assert!(storage.table(WAREHOUSE).unwrap().get(keys::warehouse(0)).is_some());
        assert!(storage.table(WAREHOUSE).unwrap().get(keys::warehouse(1)).is_some());
        assert!(storage.table(WAREHOUSE).unwrap().get(keys::warehouse(2)).is_none());
        assert_eq!(
            storage.table(DISTRICT).unwrap().read(keys::district(0, 3)).unwrap().switch_word(),
            INITIAL_NEXT_O_ID
        );
        assert!(storage.table(STOCK).unwrap().get(keys::stock(1, ITEMS - 1)).is_some());
    }

    #[test]
    fn hot_set_contains_warehouse_district_and_hot_stock() {
        let w = tpcc();
        let hot = w.hot_tuples(4);
        let expected = 8 * (1 + 2 * DISTRICTS_PER_WAREHOUSE + w.config().hot_items);
        assert_eq!(hot.len() as u64, expected);
    }

    #[test]
    fn new_order_touches_district_counter_and_stock() {
        let w = tpcc();
        let ctx = WorkloadCtx::new(4, NodeId(1), 0.0);
        let mut rng = FastRng::new(2);
        let req = w.new_order(&ctx, &mut rng);
        assert!(matches!(req.ops[0].kind, OpKind::FetchAdd(1)));
        assert_eq!(req.ops[0].tuple.table, DISTRICT);
        let stock_updates = req.ops.iter().filter(|op| op.tuple.table == STOCK).count();
        assert_eq!(stock_updates, w.config().order_lines);
        let inserts = req.ops.iter().filter(|op| matches!(op.kind, OpKind::Insert(_))).count();
        assert_eq!(inserts, 2 + w.config().order_lines);
        // A non-distributed NewOrder stays on the coordinator.
        assert!(!req.is_distributed(NodeId(1)));
    }

    #[test]
    fn payment_updates_both_ytd_counters_and_customer() {
        let w = tpcc();
        let ctx = WorkloadCtx::new(4, NodeId(0), 0.0);
        let mut rng = FastRng::new(3);
        let req = w.payment(&ctx, &mut rng);
        assert_eq!(req.ops.len(), 4);
        assert_eq!(req.ops[0].tuple.table, WAREHOUSE);
        assert_eq!(req.ops[1].tuple.table, DISTRICT_YTD);
        assert_eq!(req.ops[2].tuple.table, CUSTOMER);
        assert_eq!(req.ops[3].tuple.table, HISTORY);
    }

    #[test]
    fn tuple_home_follows_the_warehouse_partitioning() {
        let w = tpcc();
        assert_eq!(w.tuple_home(TupleId::new(WAREHOUSE, 3), 4), Some(NodeId(1)));
        assert_eq!(w.tuple_home(TupleId::new(DISTRICT, keys::district(7, 9)), 4), Some(NodeId(3)));
        assert_eq!(w.tuple_home(TupleId::new(DISTRICT_YTD, keys::district(0, 0)), 4), Some(NodeId(0)));
        assert_eq!(w.tuple_home(TupleId::new(CUSTOMER, keys::customer(5, 2, 17)), 4), Some(NodeId(2)));
        assert_eq!(w.tuple_home(TupleId::new(STOCK, keys::stock(6, 42)), 4), Some(NodeId(3)));
        // Replicated / synthetic-key tables are coordinator-local.
        assert_eq!(w.tuple_home(TupleId::new(ITEM, 5), 4), None);
        assert_eq!(w.tuple_home(TupleId::new(ORDER, 12345), 4), None);
        // Warehouses beyond the configured count have no home.
        assert_eq!(w.tuple_home(TupleId::new(WAREHOUSE, 99), 4), None);
    }

    #[test]
    fn distributed_probability_creates_remote_participants() {
        let w = tpcc();
        let ctx = WorkloadCtx::new(4, NodeId(0), 1.0);
        let mut rng = FastRng::new(4);
        let distributed = (0..200).filter(|_| w.generate(&ctx, &mut rng).is_distributed(NodeId(0))).count();
        assert!(distributed > 150, "expected mostly distributed transactions, got {distributed}/200");
    }
}
