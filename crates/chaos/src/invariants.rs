//! Cluster-wide invariant checking: replay the committed history against a
//! shadow single-threaded store and compare it with the live cluster.
//!
//! The checker treats the cluster as a white box and uses three sources of
//! ground truth that the real system also relies on (plus one that only the
//! simulator can provide):
//!
//! 1. **The node WALs** — every switch intent, switch result, cold
//!    before/after image and commit/abort decision (§6.1).
//! 2. **The switch data-plane audit log** — the `(TxnId, GID)` sequence in
//!    true serial execution order (simulator-only oracle, enabled by
//!    [`p4db_switch::SwitchConfig::audit_data_plane`]).
//! 3. **The live state** — register memory and host tables.
//!
//! From these it asserts, per [`check`]:
//!
//! * **serializability equivalence** — replaying the audited execution order
//!   on a shadow store reproduces every logged result *and* the live
//!   register state exactly;
//! * **exactly-once application** — no intent executed twice, nothing
//!   executed without a logged intent, every completed intent executed
//!   exactly once under its logged GID;
//! * **cold durability** — redo/undo replay of every coordinator log matches
//!   the live host tables;
//! * **workload semantics** — SmallBank balance conservation and
//!   non-negativity, TPC-C warehouse-YTD vs. customer-deduction
//!   conservation (with in-doubt, not-yet-applied intents accounted for).

use p4db_common::{GlobalTxnId, NodeId, SwitchId, TupleId, TxnId};
use p4db_core::Cluster;
use p4db_storage::{recover_cold_records, recover_cold_state, replay_logged_op, LogRecord, LoggedSwitchOp};
use p4db_workloads::smallbank::{CHECKING, SAVINGS};
use p4db_workloads::tpcc::{keys, CUSTOMER, CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, WAREHOUSE};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One invariant violation. Every variant names enough state to reproduce
/// the investigation; the chaos harness attaches the seed and fault trace.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A live switch register disagrees with the shadow replay.
    SwitchDivergence { tuple: TupleId, live: u64, shadow: u64 },
    /// The switch executed the same intent more than once.
    DoubleExecution { txn: TxnId, times: usize },
    /// The switch executed a transaction no node ever logged an intent for
    /// (the durability protocol logs the intent *before* sending, §6.1).
    ExecutedWithoutIntent { txn: TxnId },
    /// A transaction with a logged result never shows up in the audit log.
    MissingExecution { txn: TxnId },
    /// The GID a node logged differs from the GID the switch assigned.
    GidMismatch { txn: TxnId, logged: GlobalTxnId, executed: GlobalTxnId },
    /// Replaying a transaction does not reproduce its logged result values.
    ResultMismatch { txn: TxnId },
    /// Redo/undo replay of the coordinator logs disagrees with a live host
    /// row.
    ColdDivergence { node: NodeId, tuple: TupleId, live: u64, recovered: u64 },
    /// Loading a node's latest complete checkpoint and replaying only the
    /// WAL suffixes past its start fences disagrees with a live host row —
    /// the fuzzy checkpoint + tail-replay contract is broken.
    CheckpointDivergence { node: NodeId, generation: u64, tuple: TupleId, live: u64, recovered: u64 },
    /// An account balance went negative.
    NegativeBalance { tuple: TupleId, value: u64 },
    /// Total money in the system differs from what the committed history
    /// injected or removed.
    ConservationViolation { expected: i128, actual: i128, context: &'static str },
    /// A committed host transaction moved money in a shape no SmallBank
    /// transaction type can produce.
    IllegalMoneyMovement { txn: TxnId, delta: i128 },
    /// A switch epoch's baseline holds a money tuple the build-time offload
    /// snapshot never captured: its pre-epoch delta has no reference value,
    /// so the conservation equation cannot be formed soundly. (Silently
    /// treating the delta as zero — the old behaviour — would absorb real
    /// pre-epoch money movement.)
    MissingOffloadBaseline { switch: SwitchId, tuple: TupleId },
    /// A row's version chain is out of timestamp order at entry `at`.
    VersionOrder { tuple: TupleId, at: usize },
    /// A version-chain transition (`before` → `after` at commit timestamp
    /// `ts`) that no committed transaction's logged cold writes explain.
    PhantomVersion { tuple: TupleId, ts: u64, before: u64, after: u64 },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SwitchDivergence { tuple, live, shadow } => {
                write!(f, "switch register {tuple} holds {live}, replay says {shadow}")
            }
            Violation::DoubleExecution { txn, times } => write!(f, "{txn} executed {times} times on the switch"),
            Violation::ExecutedWithoutIntent { txn } => write!(f, "{txn} executed without a logged intent"),
            Violation::MissingExecution { txn } => write!(f, "{txn} has a logged result but never executed"),
            Violation::GidMismatch { txn, logged, executed } => {
                write!(f, "{txn} logged {logged} but executed as {executed}")
            }
            Violation::ResultMismatch { txn } => write!(f, "replaying {txn} does not reproduce its logged results"),
            Violation::ColdDivergence { node, tuple, live, recovered } => {
                write!(f, "{node} row {tuple} holds {live}, log replay says {recovered}")
            }
            Violation::CheckpointDivergence { node, generation, tuple, live, recovered } => {
                write!(f, "{node} row {tuple} holds {live}, checkpoint {generation} + tail replay says {recovered}")
            }
            Violation::NegativeBalance { tuple, value } => {
                write!(f, "balance {tuple} is negative ({value} as i64 = {})", *value as i64)
            }
            Violation::ConservationViolation { expected, actual, context } => {
                write!(f, "{context}: expected total {expected}, found {actual}")
            }
            Violation::IllegalMoneyMovement { txn, delta } => {
                write!(f, "committed {txn} moved a net of {delta} across accounts")
            }
            Violation::MissingOffloadBaseline { switch, tuple } => {
                write!(f, "{switch} epoch baseline holds {tuple}, which the offload snapshot never captured")
            }
            Violation::VersionOrder { tuple, at } => {
                write!(f, "version chain of {tuple} is out of timestamp order at entry {at}")
            }
            Violation::PhantomVersion { tuple, ts, before, after } => {
                write!(f, "version chain of {tuple} holds a transition {before} -> {after} at ts {ts} that no committed transaction explains")
            }
        }
    }
}

/// Workload-specific semantic invariants to check on top of the generic
/// replay and exactly-once checks.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SemanticChecks {
    /// Generic checks only (YCSB has no cross-tuple semantics).
    None,
    /// Balance conservation + non-negativity over savings/checking.
    SmallBank { initial_balance: u64, max_amount: u64 },
    /// Warehouse YTD must equal the total deducted from customers.
    Tpcc { warehouses: u64, initial_customer_balance: u64 },
}

/// The checker's findings plus the bookkeeping that explains them.
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    pub violations: Vec<Violation>,
    /// Switch transactions replayed from the audit log (this epoch).
    pub replayed: usize,
    /// In-doubt intents that did execute (reply lost).
    pub in_doubt_executed: usize,
    /// In-doubt intents that never executed (request lost) — recovery is
    /// responsible for them.
    pub in_doubt_lost: usize,
    /// Constrained switch writes whose predicate failed during replay.
    pub partial_applies: usize,
    /// Cold tuples compared against log replay.
    pub cold_compared: usize,
    /// Nodes holding at least one complete checkpoint generation.
    pub checkpointed_nodes: usize,
    /// Rows compared against checkpoint + tail-replay reconstruction.
    pub checkpoint_compared: usize,
    /// Version-chain entries verified against the committed write history.
    pub version_entries_checked: usize,
    /// In-doubt intents the resolver settled as already durable (below the
    /// recovery fence, or confirmed executed by the switch audit). Filled by
    /// the harness from [`p4db_core::ResolverReport`].
    pub resolved_committed: u64,
    /// In-doubt intents the switch confirmed never executed, re-run as host
    /// transactions by the resolver.
    pub resolved_retried: u64,
    /// In-doubt intents still unsettled after resolution — a clean run must
    /// end with zero.
    pub unresolved: u64,
}

impl InvariantReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unresolved == 0
    }
}

/// Switch transactions the nodes logged during one switch's current epoch.
struct EpochLog {
    intents: HashMap<TxnId, Vec<LoggedSwitchOp>>,
    results: HashMap<TxnId, (GlobalTxnId, Vec<(TupleId, u64)>)>,
}

/// Materializes one switch's epoch-relative log view: records sliced from
/// *that switch's* epoch start and filtered to the tuples it owns. The
/// ownership filter is what keeps the per-`TxnId` maps collision-free — a
/// cross-switch transaction logs one intent/result pair per owning switch
/// under the same `TxnId`, but within one switch's view each `TxnId` appears
/// at most once (the executor sends at most one sub-transaction per switch).
fn epoch_log(cluster: &Cluster, switch: SwitchId) -> EpochLog {
    let epoch = cluster.switch_epoch_at(switch);
    let owned: HashSet<TupleId> = cluster.control_plane_at(switch).placements().map(|(t, _)| t).collect();
    let mut intents = HashMap::new();
    let mut results = HashMap::new();
    for (n, storage) in cluster.shared().nodes.iter().enumerate() {
        let records = storage.wal().records();
        let start = epoch.wal_start.get(n).copied().unwrap_or(0).min(records.len());
        for record in &records[start..] {
            match record {
                LogRecord::SwitchIntent { txn, ops } if ops.first().is_some_and(|op| owned.contains(&op.tuple)) => {
                    intents.insert(*txn, ops.clone());
                }
                LogRecord::SwitchResult { txn, gid, results: r }
                    if r.first().is_some_and(|(t, _)| owned.contains(t)) =>
                {
                    results.insert(*txn, (*gid, r.clone()));
                }
                _ => {}
            }
        }
    }
    EpochLog { intents, results }
}

/// Replays one logged transaction on the shadow store through the storage
/// crate's ALU-exact replayer (operand forwarding included). Returns the
/// per-op values and accumulates the money delta over `money_tables`.
fn replay_txn(
    shadow: &mut HashMap<TupleId, u64>,
    ops: &[LoggedSwitchOp],
    money_tables: &[p4db_common::TableId],
    money_delta: &mut i128,
    partial_applies: &mut usize,
) -> Vec<u64> {
    let mut values = Vec::with_capacity(ops.len());
    for op in ops {
        let effect = replay_logged_op(shadow, &values, op);
        if !effect.applied {
            *partial_applies += 1;
        }
        if money_tables.contains(&op.tuple.table) {
            *money_delta += effect.new as i64 as i128 - effect.previous as i64 as i128;
        }
        values.push(effect.value);
    }
    values
}

/// Runs every applicable invariant against the cluster. The caller must have
/// quiesced traffic first ([`Cluster::quiesce_switch`]) — the checker reads
/// logs, audit and live state non-atomically.
pub fn check(cluster: &Cluster, semantics: SemanticChecks) -> InvariantReport {
    let mut report = InvariantReport::default();
    let money_tables: Vec<p4db_common::TableId> = match semantics {
        SemanticChecks::SmallBank { .. } => vec![SAVINGS, CHECKING],
        SemanticChecks::Tpcc { .. } => vec![WAREHOUSE],
        SemanticChecks::None => Vec::new(),
    };

    // The committed history is materialized once per switch: every sub-check
    // reads the same epoch-relative log and audit snapshots. Epochs are
    // per-switch (crashing one switch moves only its baseline), so each
    // switch's history is sliced by its own epoch and replayed against its
    // own registers; the money deltas are then summed across the topology.
    let audit_enabled = cluster.config().switch.audit_data_plane;
    let mut logs = Vec::with_capacity(cluster.num_switches());
    let mut audits: Vec<Vec<(TxnId, GlobalTxnId)>> = Vec::with_capacity(cluster.num_switches());
    let mut switch_money_delta: i128 = 0;
    for s in 0..cluster.num_switches() {
        let switch = SwitchId(s as u16);
        let log = epoch_log(cluster, switch);
        let audit: Vec<(TxnId, GlobalTxnId)> = {
            let full = cluster.switch_audit_at(switch);
            let start = cluster.switch_epoch_at(switch).audit_start.min(full.len());
            full[start..].to_vec()
        };
        if audit_enabled {
            check_switch(cluster, switch, &log, &audit, &mut report, &money_tables, &mut switch_money_delta);
        }
        logs.push(log);
        audits.push(audit);
    }
    let cold_money_delta = check_cold(cluster, &mut report, &money_tables);
    check_checkpoints(cluster, &mut report);
    check_version_chains(cluster, &mut report);

    match semantics {
        SemanticChecks::None => {}
        SemanticChecks::SmallBank { initial_balance, max_amount } => {
            check_smallbank(
                cluster,
                audit_enabled,
                &mut report,
                initial_balance,
                max_amount,
                switch_money_delta,
                cold_money_delta,
            );
        }
        SemanticChecks::Tpcc { warehouses, initial_customer_balance } => {
            check_tpcc(cluster, &logs, &audits, audit_enabled, &mut report, warehouses, initial_customer_balance);
        }
    }
    report
}

/// Commit status of every transaction in one coordinator's log, under the
/// rules recovery applies (§A.3): an explicit `Commit`/`Abort` decides, and
/// a logged switch intent pre-commits the transaction.
fn commit_status(records: &[LogRecord]) -> HashMap<TxnId, bool> {
    let mut committed: HashMap<TxnId, bool> = HashMap::new();
    for r in records {
        match r {
            LogRecord::Commit { txn } => {
                committed.insert(*txn, true);
            }
            LogRecord::Abort { txn } => {
                committed.insert(*txn, false);
            }
            LogRecord::SwitchIntent { txn, .. } => {
                committed.entry(*txn).or_insert(true);
            }
            _ => {}
        }
    }
    committed
}

/// Serializability replay + exactly-once accounting for one switch.
#[allow(clippy::too_many_arguments)]
fn check_switch(
    cluster: &Cluster,
    switch: SwitchId,
    log: &EpochLog,
    audit: &[(TxnId, GlobalTxnId)],
    report: &mut InvariantReport,
    money_tables: &[p4db_common::TableId],
    money_delta: &mut i128,
) {
    let epoch = cluster.switch_epoch_at(switch);

    // --- Exactly-once accounting ---------------------------------------
    let mut executed_times: HashMap<TxnId, usize> = HashMap::new();
    let mut executed_gid: HashMap<TxnId, GlobalTxnId> = HashMap::new();
    for (txn, gid) in audit {
        *executed_times.entry(*txn).or_insert(0) += 1;
        executed_gid.insert(*txn, *gid);
    }
    for (&txn, &times) in &executed_times {
        if txn == TxnId(0) {
            continue; // raw clients outside the durability protocol
        }
        if times > 1 {
            report.violations.push(Violation::DoubleExecution { txn, times });
        }
        if !log.intents.contains_key(&txn) {
            report.violations.push(Violation::ExecutedWithoutIntent { txn });
        }
    }
    for (&txn, &(logged_gid, _)) in &log.results {
        match executed_gid.get(&txn) {
            None => report.violations.push(Violation::MissingExecution { txn }),
            Some(&gid) if gid != logged_gid => {
                report.violations.push(Violation::GidMismatch { txn, logged: logged_gid, executed: gid });
            }
            Some(_) => {}
        }
    }
    for &txn in log.intents.keys() {
        if !log.results.contains_key(&txn) {
            if executed_times.contains_key(&txn) {
                report.in_doubt_executed += 1;
            } else {
                report.in_doubt_lost += 1;
            }
        }
    }

    // --- Shadow replay in audited serial order -------------------------
    // Each committed intent is replayed exactly once, at its first audited
    // position: a duplicate execution (retransmission bug) is excluded from
    // the shadow, so its effect on the live registers surfaces as a
    // divergence on top of the DoubleExecution violation.
    let mut shadow = epoch.baseline.clone();
    let mut replayed_txns: HashSet<TxnId> = HashSet::new();
    for (txn, _) in audit {
        if !replayed_txns.insert(*txn) {
            continue;
        }
        let Some(ops) = log.intents.get(txn) else { continue };
        let values = replay_txn(&mut shadow, ops, money_tables, money_delta, &mut report.partial_applies);
        report.replayed += 1;
        if let Some((_, logged)) = log.results.get(txn) {
            let matches = logged.len() == values.len()
                && logged.iter().zip(ops.iter()).all(|((t, _), op)| *t == op.tuple)
                && logged.iter().zip(values.iter()).all(|((_, want), got)| want == got);
            if !matches {
                report.violations.push(Violation::ResultMismatch { txn: *txn });
            }
        }
    }
    for (tuple, live) in cluster.control_plane_at(switch).snapshot() {
        let expected = shadow.get(&tuple).copied().unwrap_or_else(|| epoch.baseline.get(&tuple).copied().unwrap_or(0));
        if live != expected {
            report.violations.push(Violation::SwitchDivergence { tuple, live, shadow: expected });
        }
    }
}

/// Which switch currently owns each offloaded tuple (placement maps are
/// disjoint across switches).
fn switch_owned(cluster: &Cluster) -> HashMap<TupleId, SwitchId> {
    let mut owned = HashMap::new();
    for s in 0..cluster.num_switches() {
        let switch = SwitchId(s as u16);
        for (tuple, _) in cluster.control_plane_at(switch).placements() {
            owned.insert(tuple, switch);
        }
    }
    owned
}

/// Cold durability: redo/undo replay of every coordinator log must match the
/// live host tables. Returns the committed money delta over `money_tables`.
///
/// Tuples a switch currently owns get special treatment, because degraded
/// mode makes their host rows temporarily authoritative: cold writes they
/// accumulated while the switch was out are folded into the re-admission
/// baseline (the registers were re-seeded from the host rows), so counting
/// them again here would double their money movement — records before the
/// owning switch's epoch start are excluded. And post-re-admission the
/// registers are authoritative again while the host row stays a stale
/// degraded-era artifact, so owned tuples are exempt from the host-row
/// divergence comparison (their live state is proven by the switch replay).
fn check_cold(cluster: &Cluster, report: &mut InvariantReport, money_tables: &[p4db_common::TableId]) -> i128 {
    let map = cluster.partition_map();
    let owned = switch_owned(cluster);
    // (home, tuple) -> recovered final images from each coordinator's log.
    let mut candidates: HashMap<(NodeId, TupleId), Vec<u64>> = HashMap::new();
    let mut money_delta: i128 = 0;

    for (n, storage) in cluster.shared().nodes.iter().enumerate() {
        let wal = storage.wal();
        let records = wal.records();

        let committed = commit_status(&records);
        for (i, r) in records.iter().enumerate() {
            if let LogRecord::ColdWrite { txn, tuple, before, after } = r {
                if committed.get(txn).copied().unwrap_or(false) && money_tables.contains(&tuple.table) {
                    if let Some(&s) = owned.get(tuple) {
                        let fence = cluster.switch_epoch_at(s).wal_start.get(n).copied().unwrap_or(0);
                        if i < fence {
                            continue; // baked into the re-admission baseline
                        }
                    }
                    money_delta += after.switch_word() as i64 as i128 - before.switch_word() as i64 as i128;
                }
            }
        }

        let recovered = recover_cold_state(wal);
        for (tuple, value) in recovered {
            let home = map.home(tuple).unwrap_or(storage.node());
            candidates.entry((home, tuple)).or_default().push(value.switch_word());
        }
    }

    for ((home, tuple), images) in candidates {
        if owned.contains_key(&tuple) {
            continue; // switch-resident: the register replay is authoritative
        }
        let Ok(table) = cluster.shared().node(home).table(tuple.table) else { continue };
        let Ok(live) = table.read(tuple.key) else {
            // A logged row absent from the live table is an undone insert.
            continue;
        };
        let live = live.switch_word();
        report.cold_compared += 1;
        // With several coordinators the cross-log order is unknown: the live
        // value must match at least one final image. With one log it must
        // match exactly.
        if !images.contains(&live) {
            report.violations.push(Violation::ColdDivergence { node: home, tuple, live, recovered: images[0] });
        }
    }
    money_delta
}

/// Fuzzy-checkpoint durability: for every node holding a complete
/// checkpoint, loading it and overlaying the per-coordinator WAL suffixes
/// past its start fences must reproduce the live host tables — the same
/// contract `check_cold` proves for full genesis replay, but over the
/// checkpoint + tail-replay restart path. Sound even for checkpoints taken
/// mid-traffic: the scans are fuzzy, but a transaction's cold writes land in
/// the log atomically with its verdict, so whatever in-progress value a scan
/// captured is rewritten by the tail.
fn check_checkpoints(cluster: &Cluster, report: &mut InvariantReport) {
    let map = cluster.partition_map();
    let shared = cluster.shared();
    for storage in shared.nodes.iter() {
        let Some(checkpoint) = storage.checkpoints().latest_complete() else { continue };
        report.checkpointed_nodes += 1;
        let node = storage.node();

        // Tail images of the crashed-node partition, per coordinator. With
        // several coordinators the cross-log order is unknown, so (like
        // check_cold) the live value must match at least one image.
        let mut tails: HashMap<TupleId, Vec<u64>> = HashMap::new();
        for (n, coordinator) in shared.nodes.iter().enumerate() {
            let fence = checkpoint.start_fence.get(n).copied().unwrap_or(0);
            for (tuple, value) in recover_cold_records(&coordinator.wal().records_from(fence)) {
                if map.home(tuple) == Some(node) {
                    tails.entry(tuple).or_default().push(value.switch_word());
                }
            }
        }

        // Checkpoint rows first, tail images on top (the tail is
        // authoritative for everything written after the fences).
        let mut expected: HashMap<TupleId, Vec<u64>> = HashMap::new();
        for shard in &checkpoint.shards {
            for &(key, value) in &shard.rows {
                expected.insert(TupleId::new(shard.table, key), vec![value.switch_word()]);
            }
        }
        for (tuple, images) in tails {
            expected.insert(tuple, images);
        }

        for (tuple, images) in expected {
            let Ok(table) = storage.table(tuple.table) else { continue };
            let Ok(live) = table.read(tuple.key) else {
                // Checkpointed or logged but absent live: an undone insert.
                continue;
            };
            let live = live.switch_word();
            report.checkpoint_compared += 1;
            if !images.contains(&live) {
                report.violations.push(Violation::CheckpointDivergence {
                    node,
                    generation: checkpoint.generation,
                    tuple,
                    live,
                    recovered: images[0],
                });
            }
        }
    }
}

/// Pre-epoch switch money delta of every epoch baseline tuple over
/// `money_tables`, relative to the build-time offload snapshot. A baseline
/// tuple the offload snapshot never captured has no reference value and is
/// reported as [`Violation::MissingOffloadBaseline`] instead of being
/// silently counted as a zero delta — the old behaviour, which would absorb
/// real pre-epoch money movement into the conservation equation.
fn pre_epoch_money_delta(
    baselines: &[(SwitchId, &HashMap<TupleId, u64>)],
    offload_snapshot: &HashMap<TupleId, u64>,
    money_tables: &[p4db_common::TableId],
    violations: &mut Vec<Violation>,
) -> i128 {
    let mut delta: i128 = 0;
    for &(switch, baseline) in baselines {
        for (tuple, &value) in baseline {
            if !money_tables.contains(&tuple.table) {
                continue;
            }
            match offload_snapshot.get(tuple) {
                Some(&initial) => delta += value as i64 as i128 - initial as i64 as i128,
                None => violations.push(Violation::MissingOffloadBaseline { switch, tuple: *tuple }),
            }
        }
    }
    delta
}

/// Snapshot-read ground truth: every retained version-chain entry must be
/// explained by exactly one committed transaction's *net* cold-write
/// transition on that tuple (first before-image → last after-image), chain
/// timestamps must be strictly increasing, and an untrimmed chain must
/// ground its first entry in the row's base value. A chain GC trimmed keeps
/// an unknown predecessor for its first retained entry only; everything
/// after it is still fully checked. The `single_latch` seed arm installs no
/// versions by design and is skipped.
fn check_version_chains(cluster: &Cluster, report: &mut InvariantReport) {
    if cluster.config().single_latch {
        return;
    }
    let owned = switch_owned(cluster);
    // Net committed transition per (txn, tuple): versions install at commit
    // time, so a transaction's several writes to one tuple collapse into a
    // single chain entry carrying its final image.
    let mut nets: HashMap<(TxnId, TupleId), (u64, u64)> = HashMap::new();
    for storage in cluster.shared().nodes.iter() {
        let records = storage.wal().records();
        let committed = commit_status(&records);
        for r in &records {
            if let LogRecord::ColdWrite { txn, tuple, before, after } = r {
                if committed.get(txn).copied().unwrap_or(false) {
                    nets.entry((*txn, *tuple))
                        .and_modify(|(_, a)| *a = after.switch_word())
                        .or_insert((before.switch_word(), after.switch_word()));
                }
            }
        }
    }
    let mut transitions: HashMap<TupleId, HashMap<(u64, u64), usize>> = HashMap::new();
    for ((_, tuple), net) in nets {
        *transitions.entry(tuple).or_default().entry(net).or_insert(0) += 1;
    }

    for storage in cluster.shared().nodes.iter() {
        for table in storage.tables() {
            table.for_each(|key, row| {
                let (entries, trimmed) = row.version_chain();
                if entries.is_empty() {
                    return;
                }
                let tuple = TupleId::new(table.id(), key);
                let mut avail = transitions.get(&tuple).cloned().unwrap_or_default();
                let mut prev_ts = 0u64;
                for (i, &(ts, word)) in entries.iter().enumerate() {
                    if i > 0 && ts <= prev_ts {
                        report.violations.push(Violation::VersionOrder { tuple, at: i });
                    }
                    prev_ts = ts;
                    // A switch-owned tuple's host-row pre-history is not
                    // `base`: degraded-mode reconstruction raw-writes the
                    // live word without installing a version, so its first
                    // chain entry grounds in that reconstructed word — an
                    // unknown predecessor, exactly like a GC-trimmed chain.
                    let before = match i {
                        0 if trimmed > 0 || owned.contains_key(&tuple) => None,
                        0 => Some(row.base_word().unwrap_or(0)),
                        _ => Some(entries[i - 1].1),
                    };
                    report.version_entries_checked += 1;
                    if let Some(b) = before {
                        match avail.get_mut(&(b, word)) {
                            Some(n) if *n > 0 => *n -= 1,
                            _ => {
                                report.violations.push(Violation::PhantomVersion { tuple, ts, before: b, after: word })
                            }
                        }
                    }
                }
            });
        }
    }
}

/// SmallBank: every balance non-negative; total money == initial money plus
/// what the committed history injected; committed host transactions move
/// money only in legal shapes.
#[allow(clippy::too_many_arguments)]
fn check_smallbank(
    cluster: &Cluster,
    audit_enabled: bool,
    report: &mut InvariantReport,
    initial_balance: u64,
    max_amount: u64,
    switch_money_delta: i128,
    cold_money_delta: i128,
) {
    let shared = cluster.shared();
    let mut live_total: i128 = 0;
    let mut accounts: i128 = 0;
    for storage in shared.nodes.iter() {
        for table in [SAVINGS, CHECKING] {
            let Ok(table) = storage.table(table) else { continue };
            // Per-shard iteration: no whole-table key vector, and the row is
            // already in hand — no second lookup per account.
            table.for_each(|key, row| {
                let tuple = TupleId::new(table.id(), key);
                // The switch is authoritative for offloaded accounts.
                let value = cluster.switch_value(tuple).unwrap_or_else(|| row.read().switch_word());
                if (value as i64) < 0 {
                    report.violations.push(Violation::NegativeBalance { tuple, value });
                }
                live_total += value as i64 as i128;
                accounts += 1;
            });
        }
    }

    // The epoch baselines already contain pre-epoch switch deltas; account
    // for them relative to the offload-time values, switch by switch (each
    // switch's epoch moves independently under per-switch crash/recovery).
    let baselines: Vec<(SwitchId, &HashMap<TupleId, u64>)> = (0..cluster.num_switches())
        .map(|s| (SwitchId(s as u16), &cluster.switch_epoch_at(SwitchId(s as u16)).baseline))
        .collect();
    let pre_epoch_delta =
        pre_epoch_money_delta(&baselines, cluster.offload_snapshot(), &[SAVINGS, CHECKING], &mut report.violations);

    // Without the audit log there is no switch delta to account against, so
    // the conservation equation would flag healthy hot traffic; only the
    // per-balance and per-transaction checks apply then (check_tpcc guards
    // its pending-YTD term the same way).
    let expected = accounts * initial_balance as i128 + cold_money_delta + switch_money_delta + pre_epoch_delta;
    if audit_enabled && expected != live_total {
        report.violations.push(Violation::ConservationViolation {
            expected,
            actual: live_total,
            context: "SmallBank total balance",
        });
    }

    // Per-transaction shape check on the host path: net delta of a committed
    // transaction's cold money writes is 0 (transfer) or ±amount.
    for storage in shared.nodes.iter() {
        let records = storage.wal().records();
        let committed = commit_status(&records);
        let mut per_txn: HashMap<TxnId, i128> = HashMap::new();
        let mut touched_money: HashSet<TxnId> = HashSet::new();
        for r in &records {
            if let LogRecord::ColdWrite { txn, tuple, before, after } = r {
                if (tuple.table == SAVINGS || tuple.table == CHECKING) && committed.get(txn).copied().unwrap_or(false) {
                    *per_txn.entry(*txn).or_insert(0) +=
                        after.switch_word() as i64 as i128 - before.switch_word() as i64 as i128;
                    touched_money.insert(*txn);
                }
            }
        }
        for txn in touched_money {
            let delta = per_txn[&txn];
            // Amalgamate drains a whole balance (net 0); every other type
            // moves at most max_amount in one direction.
            if delta != 0 && delta.unsigned_abs() > max_amount as u128 {
                report.violations.push(Violation::IllegalMoneyMovement { txn, delta });
            }
        }
    }
}

/// TPC-C: the warehouse YTD counters must account for every committed
/// customer deduction — including Payments whose switch part is still
/// in-doubt and unexecuted (recovery will apply them; until then their YTD
/// contribution is pending).
#[allow(clippy::too_many_arguments)]
fn check_tpcc(
    cluster: &Cluster,
    logs: &[EpochLog],
    audits: &[Vec<(TxnId, GlobalTxnId)>],
    audit_enabled: bool,
    report: &mut InvariantReport,
    warehouses: u64,
    initial_customer_balance: u64,
) {
    let shared = cluster.shared();
    let mut live_ytd: i128 = 0;
    for w in 0..warehouses {
        let tuple = TupleId::new(WAREHOUSE, keys::warehouse(w));
        let value = cluster.switch_value(tuple).unwrap_or_else(|| {
            let home = cluster.partition_map().home(tuple).unwrap_or(NodeId(0));
            shared.node(home).table(WAREHOUSE).and_then(|t| t.read(tuple.key)).map(|v| v.switch_word()).unwrap_or(0)
        });
        live_ytd += value as i64 as i128;
    }

    let mut customer_delta: i128 = 0;
    for storage in shared.nodes.iter() {
        let Ok(table) = storage.table(CUSTOMER) else { continue };
        table.for_each(|_, row| {
            let balance = row.read().switch_word();
            customer_delta += initial_customer_balance as i128 - balance as i64 as i128;
        });
    }

    // Unexecuted in-doubt intents of each switch's epoch still owe their YTD
    // adds — accounted per switch against that switch's own audit.
    let mut pending_ytd: i128 = 0;
    if audit_enabled {
        for (log, audit) in logs.iter().zip(audits.iter()) {
            let executed: HashSet<TxnId> = audit.iter().map(|(t, _)| *t).collect();
            for (txn, ops) in &log.intents {
                if log.results.contains_key(txn) || executed.contains(txn) {
                    continue;
                }
                for op in ops {
                    if op.tuple.table == WAREHOUSE {
                        pending_ytd += op.operand as i64 as i128;
                    }
                }
            }
        }
    }

    if live_ytd + pending_ytd != customer_delta {
        report.violations.push(Violation::ConservationViolation {
            expected: customer_delta,
            actual: live_ytd + pending_ytd,
            context: "TPC-C warehouse YTD vs customer deductions",
        });
    }
    let _ = (DISTRICTS_PER_WAREHOUSE, CUSTOMERS_PER_DISTRICT);
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::TableId;

    fn t(key: u64) -> TupleId {
        TupleId::new(CHECKING, key)
    }

    #[test]
    fn pre_epoch_delta_counts_known_baseline_tuples() {
        let offload: HashMap<TupleId, u64> = [(t(1), 100), (t(2), 100)].into_iter().collect();
        let baseline: HashMap<TupleId, u64> = [(t(1), 130), (t(2), 90)].into_iter().collect();
        let mut violations = Vec::new();
        let delta = pre_epoch_money_delta(&[(SwitchId(0), &baseline)], &offload, &[CHECKING, SAVINGS], &mut violations);
        assert_eq!(delta, 30 - 10);
        assert!(violations.is_empty(), "got {violations:?}");
    }

    /// Doctored negative case: a baseline tuple the offload snapshot never
    /// captured must surface as a violation, not silently contribute a zero
    /// delta (the pre-fix behaviour, which made the conservation equation
    /// absorb real pre-epoch money movement).
    #[test]
    fn pre_epoch_delta_flags_baseline_tuples_missing_from_the_offload_snapshot() {
        let offload: HashMap<TupleId, u64> = [(t(1), 100)].into_iter().collect();
        // t(9) carries real money but has no offload-time reference value.
        let baseline: HashMap<TupleId, u64> = [(t(1), 100), (t(9), 5_000)].into_iter().collect();
        let mut violations = Vec::new();
        let delta = pre_epoch_money_delta(&[(SwitchId(0), &baseline)], &offload, &[CHECKING, SAVINGS], &mut violations);
        assert_eq!(delta, 0, "the unknown tuple must not contribute a made-up delta");
        assert_eq!(violations, vec![Violation::MissingOffloadBaseline { switch: SwitchId(0), tuple: t(9) }]);
        // Tuples outside the money tables are not the checker's business.
        let other: HashMap<TupleId, u64> = [(TupleId::new(TableId(40), 0), 7)].into_iter().collect();
        let mut none = Vec::new();
        assert_eq!(pre_epoch_money_delta(&[(SwitchId(0), &other)], &offload, &[CHECKING, SAVINGS], &mut none), 0);
        assert!(none.is_empty());
    }
}
