//! # p4db-chaos
//!
//! Deterministic fault-injection harness and cluster-wide invariant checker.
//!
//! The paper's strongest claims are about what happens *off* the happy path:
//! switch transactions never abort, in-flight intents are recovered from the
//! WALs by data-dependency ordering (§6, Fig 9), warm transactions commit
//! even when half of them lives on the switch. This crate turns those claims
//! from "tested by example" into "tested by search":
//!
//! * [`harness::run_chaos`] sweeps a seeded scenario — message drops, delays
//!   and reorders on the fabric, a mid-run node crash with WAL-driven
//!   restart, a mid-run switch crash with recovery and optional re-offload
//!   into fresh register slots — over any of the three workloads;
//! * [`invariants::check`] then replays the committed history (node WALs +
//!   the switch's data-plane audit log) against a shadow single-threaded
//!   store and asserts serializability equivalence, exactly-once application
//!   of switch intents, cold durability, SmallBank balance conservation and
//!   TPC-C money conservation;
//! * failures report the seed, a one-command repro line and a minimized
//!   fault-class trace ([`harness::ChaosReport::failure_summary`]).

pub mod harness;
pub mod invariants;

pub use harness::{resend_logged_intent, run_chaos, ChaosOptions, ChaosReport, ChaosWorkload};
pub use invariants::{check, InvariantReport, SemanticChecks, Violation};
